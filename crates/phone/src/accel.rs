//! Accelerometer model: sampling, noise floor, quantization.
//!
//! Smartphone IMUs deliver 400–500 Hz by default; Android 12 caps
//! zero-permission apps at 200 Hz (§VI-A, modeled in [`crate::android`]).
//! The sensor subsamples the continuous chassis vibration *without* an
//! anti-alias filter — the resulting fold-in of out-of-band energy is part
//! of the physical channel.

use emoleak_dsp::noise::Gaussian;
use emoleak_dsp::resample::resample_linear;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A z-axis accelerometer recording.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelTrace {
    /// Sampled acceleration in m/s² (gravity-compensated z axis).
    pub samples: Vec<f64>,
    /// Sampling rate in Hz.
    pub fs: f64,
}

impl AccelTrace {
    /// Trace duration in seconds.
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.fs
    }
}

/// The sensor model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accelerometer {
    rate_hz: f64,
    noise_std: f64,
    lsb: f64,
}

impl Accelerometer {
    /// Creates a sensor with output rate `rate_hz`, Gaussian noise floor
    /// `noise_std` (m/s²) and quantization step `lsb` (m/s²).
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not positive or `lsb`/`noise_std` are
    /// negative.
    pub fn new(rate_hz: f64, noise_std: f64, lsb: f64) -> Self {
        assert!(rate_hz > 0.0, "sensor rate must be positive");
        assert!(noise_std >= 0.0 && lsb >= 0.0, "noise parameters must be non-negative");
        Accelerometer { rate_hz, noise_std, lsb }
    }

    /// The output sampling rate in Hz.
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }

    /// The noise floor standard deviation in m/s².
    pub fn noise_std(&self) -> f64 {
        self.noise_std
    }

    /// Samples a continuous vibration signal (given at `fs_in`) at the
    /// sensor rate, adding the noise floor and quantizing.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        vibration: &[f64],
        fs_in: f64,
        rng: &mut R,
    ) -> AccelTrace {
        let mut samples = if vibration.is_empty() {
            Vec::new()
        } else {
            resample_linear(vibration, fs_in, self.rate_hz)
                .expect("valid rates and non-empty input")
        };
        let mut gauss = Gaussian::new();
        for v in samples.iter_mut() {
            *v += gauss.sample(rng, 0.0, self.noise_std);
            if self.lsb > 0.0 {
                *v = (*v / self.lsb).round() * self.lsb;
            }
        }
        AccelTrace { samples, fs: self.rate_hz }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_dsp::stats;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn output_rate_and_length() {
        let acc = Accelerometer::new(420.0, 0.0, 0.0);
        let vib = vec![0.5; 8000]; // 1 s at 8 kHz
        let t = acc.sample(&vib, 8000.0, &mut rng(1));
        assert_eq!(t.fs, 420.0);
        assert!((t.samples.len() as f64 - 420.0).abs() <= 2.0);
        assert!((t.duration() - 1.0).abs() < 0.01);
    }

    #[test]
    fn noiseless_sensor_reproduces_constant() {
        let acc = Accelerometer::new(400.0, 0.0, 0.0);
        let t = acc.sample(&vec![0.25; 4000], 8000.0, &mut rng(2));
        assert!(t.samples.iter().all(|&v| (v - 0.25).abs() < 1e-12));
    }

    #[test]
    fn quantization_snaps_to_lsb() {
        let acc = Accelerometer::new(400.0, 0.0, 0.01);
        let t = acc.sample(&vec![0.123; 4000], 8000.0, &mut rng(3));
        assert!(t.samples.iter().all(|&v| (v - 0.12).abs() < 1e-12));
    }

    #[test]
    fn noise_floor_has_configured_std() {
        let acc = Accelerometer::new(500.0, 0.002, 0.0);
        let t = acc.sample(&vec![0.0; 800_000], 8000.0, &mut rng(4));
        let sd = stats::std_dev(&t.samples);
        assert!((sd - 0.002).abs() < 2e-4, "noise std {sd}");
    }

    #[test]
    fn empty_vibration_gives_empty_trace() {
        let acc = Accelerometer::new(400.0, 0.001, 0.001);
        let t = acc.sample(&[], 8000.0, &mut rng(5));
        assert!(t.samples.is_empty());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let acc = Accelerometer::new(420.0, 0.002, 0.001);
        let vib: Vec<f64> = (0..8000).map(|i| (i as f64 * 0.05).sin() * 0.01).collect();
        let a = acc.sample(&vib, 8000.0, &mut rng(6));
        let b = acc.sample(&vib, 8000.0, &mut rng(6));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn zero_rate_is_rejected() {
        Accelerometer::new(0.0, 0.001, 0.001);
    }
}
