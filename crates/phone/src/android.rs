//! Android sensor sampling policy (§VI-A) and OS-level delivery faults.
//!
//! Apps targeting Android 12+ without the `HIGH_SAMPLING_RATE_SENSORS`
//! permission receive motion-sensor data capped at 200 Hz. The paper
//! evaluates the attack under this cap and still finds 80.1 % accuracy on
//! TESS/loudspeaker (vs 95.3 % uncapped).
//!
//! Beyond the cap, a real background recorder also suffers OS scheduling
//! faults that the ideal model omits: **doze/batching suspensions** (the
//! sensor HAL buffers or suspends delivery when the device naps, leaving
//! multi-second blackouts in the log) and **thermal throttling** (sustained
//! recording heats the SoC and the delivered rate is downshifted). Both are
//! modeled here as [`BatchingSpec`] and [`ThermalThrottle`], consumed by
//! [`crate::faults::FaultProfile`].

use crate::accel::AccelTrace;
use crate::faults::TimedTrace;
use emoleak_dsp::resample::resample_linear;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The sampling policy the recording app operates under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[derive(Default)]
pub enum SamplingPolicy {
    /// Pre-Android-12 behaviour: full sensor rate delivered to the app.
    #[default]
    Default,
    /// Android 12+ zero-permission cap: at most 200 Hz delivered.
    Capped200Hz,
}

impl SamplingPolicy {
    /// The delivered rate for a sensor running at `sensor_rate_hz`.
    pub fn delivered_rate(self, sensor_rate_hz: f64) -> f64 {
        match self {
            SamplingPolicy::Default => sensor_rate_hz,
            SamplingPolicy::Capped200Hz => sensor_rate_hz.min(200.0),
        }
    }

    /// Applies the policy to a recorded trace, resampling if capped.
    pub fn apply(self, trace: AccelTrace) -> AccelTrace {
        let target = self.delivered_rate(trace.fs);
        if (target - trace.fs).abs() < 1e-9 || trace.samples.is_empty() {
            return trace;
        }
        // Rates are positive by construction and the trace is non-empty
        // (checked above); fall back to passing the trace through untouched
        // rather than panicking if resampling ever rejects the input.
        match resample_linear(&trace.samples, trace.fs, target) {
            Ok(samples) => AccelTrace { samples, fs: target },
            Err(_) => trace,
        }
    }
}

/// Doze/batching suspensions of sensor delivery (background recorders).
///
/// Android's sensor batching FIFO and app-standby doze windows suspend
/// event delivery for whole stretches; the recording app's log then shows
/// multi-second blackouts. Suspensions occur at an expected rate of
/// [`BatchingSpec::suspensions_per_min`] per minute, each lasting
/// [`BatchingSpec::suspension_s`] seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchingSpec {
    /// Expected suspensions per minute of recording.
    pub suspensions_per_min: f64,
    /// Length of one suspension blackout, seconds.
    pub suspension_s: f64,
}

impl BatchingSpec {
    /// The default doze model: one ~1.5 s blackout every ~20 s of
    /// background recording.
    pub fn doze_default() -> Self {
        BatchingSpec { suspensions_per_min: 3.0, suspension_s: 1.5 }
    }

    /// Scales blackout frequency and length by `severity`.
    #[must_use]
    pub fn scaled(mut self, severity: f64) -> Self {
        let s = severity.max(0.0);
        self.suspensions_per_min *= s;
        self.suspension_s *= s;
        self
    }

    /// Removes doze blackouts from `trace` in place, returning
    /// `(suspensions, samples dropped)`.
    pub fn apply<R: Rng + ?Sized>(&self, trace: &mut TimedTrace, rng: &mut R) -> (usize, usize) {
        if self.suspensions_per_min <= 0.0 || self.suspension_s <= 0.0
            || trace.samples.is_empty()
        {
            return (0, 0);
        }
        let duration = trace.duration();
        let expected = self.suspensions_per_min * duration / 60.0;
        let trials = (expected.ceil() as usize) * 4 + 4;
        let p = (expected / trials as f64).min(1.0);
        let mut windows: Vec<(f64, f64)> = Vec::new();
        for _ in 0..trials {
            if rng.gen::<f64>() < p {
                let start = rng.gen_range(0.0..duration.max(f64::MIN_POSITIVE));
                windows.push((start, start + self.suspension_s));
            }
        }
        if windows.is_empty() {
            return (0, 0);
        }
        let suspensions = windows.len();
        let before = trace.samples.len();
        let t0 = trace.timestamps_s.first().copied().unwrap_or(0.0);
        let mut keep_samples = Vec::with_capacity(before);
        let mut keep_stamps = Vec::with_capacity(before);
        for (&v, &t) in trace.samples.iter().zip(&trace.timestamps_s) {
            let rel = t - t0;
            if windows.iter().any(|&(a, b)| rel >= a && rel < b) {
                continue;
            }
            keep_samples.push(v);
            keep_stamps.push(t);
        }
        trace.samples = keep_samples;
        trace.timestamps_s = keep_stamps;
        (suspensions, before - trace.samples.len())
    }
}

/// Thermal sensor-rate throttling: after [`ThermalThrottle::onset_s`]
/// seconds of sustained recording, the delivered rate drops to
/// `rate_factor ×` nominal (the OS decimates delivery to cool the SoC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalThrottle {
    /// Seconds of recording before throttling kicks in.
    pub onset_s: f64,
    /// Delivered-rate multiplier after onset, in `(0, 1]`; 1 disables.
    pub rate_factor: f64,
}

impl ThermalThrottle {
    /// No throttling.
    pub fn off() -> Self {
        ThermalThrottle { onset_s: 0.0, rate_factor: 1.0 }
    }

    /// Whether this throttle never removes a sample.
    pub fn is_off(&self) -> bool {
        self.rate_factor >= 1.0
    }

    /// Scales throttle aggressiveness by `severity`: severity 0 turns it
    /// off; higher severities push the delivered rate further down (but
    /// never below 5 % of nominal) and shorten the onset.
    #[must_use]
    pub fn scaled(self, severity: f64) -> Self {
        let s = severity.max(0.0);
        if s == 0.0 || self.is_off() {
            return ThermalThrottle::off();
        }
        let reduction = (1.0 - self.rate_factor) * s;
        ThermalThrottle {
            onset_s: if s > 0.0 { self.onset_s / s } else { self.onset_s },
            rate_factor: (1.0 - reduction).clamp(0.05, 1.0),
        }
    }

    /// Decimates delivery after onset in place, returning the number of
    /// samples removed.
    pub fn apply(&self, trace: &mut TimedTrace) -> usize {
        if self.is_off() || self.rate_factor <= 0.0 || trace.samples.is_empty() {
            return 0;
        }
        let keep_every = (1.0 / self.rate_factor).max(1.0);
        let t0 = trace.timestamps_s.first().copied().unwrap_or(0.0);
        let before = trace.samples.len();
        let mut keep_samples = Vec::with_capacity(before);
        let mut keep_stamps = Vec::with_capacity(before);
        let mut kept_after_onset = 0usize;
        let mut seen_after_onset = 0usize;
        for (&v, &t) in trace.samples.iter().zip(&trace.timestamps_s) {
            if t - t0 < self.onset_s {
                keep_samples.push(v);
                keep_stamps.push(t);
                continue;
            }
            // Keep samples at the throttled cadence: the k-th post-onset
            // sample survives when it crosses the next keep_every boundary.
            seen_after_onset += 1;
            if (seen_after_onset as f64 / keep_every) as usize > kept_after_onset {
                kept_after_onset += 1;
                keep_samples.push(v);
                keep_stamps.push(t);
            }
        }
        trace.samples = keep_samples;
        trace.timestamps_s = keep_stamps;
        before - trace.samples.len()
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_identity() {
        let t = AccelTrace { samples: vec![1.0; 420], fs: 420.0 };
        let out = SamplingPolicy::Default.apply(t.clone());
        assert_eq!(out, t);
    }

    #[test]
    fn cap_reduces_rate_to_200() {
        let t = AccelTrace { samples: vec![0.5; 4200], fs: 420.0 };
        let out = SamplingPolicy::Capped200Hz.apply(t);
        assert_eq!(out.fs, 200.0);
        // 10 s of data stays 10 s.
        assert!((out.duration() - 10.0).abs() < 0.05);
    }

    #[test]
    fn cap_leaves_slow_sensors_alone() {
        let t = AccelTrace { samples: vec![0.5; 100], fs: 100.0 };
        let out = SamplingPolicy::Capped200Hz.apply(t.clone());
        assert_eq!(out, t);
    }

    #[test]
    fn delivered_rates() {
        assert_eq!(SamplingPolicy::Default.delivered_rate(420.0), 420.0);
        assert_eq!(SamplingPolicy::Capped200Hz.delivered_rate(420.0), 200.0);
        assert_eq!(SamplingPolicy::Capped200Hz.delivered_rate(150.0), 150.0);
    }

    #[test]
    fn empty_trace_is_preserved() {
        let t = AccelTrace { samples: vec![], fs: 420.0 };
        let out = SamplingPolicy::Capped200Hz.apply(t);
        assert!(out.samples.is_empty());
    }

    fn timed(n: usize, fs: f64) -> TimedTrace {
        TimedTrace::from_regular(&AccelTrace { samples: vec![0.1; n], fs })
    }

    fn rng(seed: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn doze_blackouts_drop_contiguous_windows() {
        // 60 s at 420 Hz with the default doze model: expect ~3 blackouts.
        let mut t = timed(25_200, 420.0);
        let (suspensions, dropped) = BatchingSpec::doze_default().apply(&mut t, &mut rng(1));
        assert!(suspensions > 0, "no suspension in 60 s");
        assert!(dropped > 0);
        assert_eq!(t.samples.len(), 25_200 - dropped);
        // Timestamps stay sorted after window removal.
        assert!(t.timestamps_s.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn zero_rate_batching_is_noop() {
        let mut t = timed(4200, 420.0);
        let spec = BatchingSpec { suspensions_per_min: 0.0, suspension_s: 1.0 };
        assert_eq!(spec.apply(&mut t, &mut rng(2)), (0, 0));
        assert_eq!(t.samples.len(), 4200);
    }

    #[test]
    fn throttle_halves_post_onset_rate() {
        let mut t = timed(8400, 420.0); // 20 s
        let throttle = ThermalThrottle { onset_s: 10.0, rate_factor: 0.5 };
        let removed = throttle.apply(&mut t);
        // First 10 s untouched (4200 samples), second 10 s halved (~2100).
        assert!((removed as f64 - 2100.0).abs() < 10.0, "removed {removed}");
        assert!(t.timestamps_s.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn throttle_off_is_noop() {
        let mut t = timed(1000, 420.0);
        assert_eq!(ThermalThrottle::off().apply(&mut t), 0);
        assert_eq!(t.samples.len(), 1000);
    }

    #[test]
    fn throttle_scaling_clamps_sanely() {
        let base = ThermalThrottle { onset_s: 60.0, rate_factor: 0.75 };
        assert!(base.scaled(0.0).is_off());
        let heavy = base.scaled(4.0);
        assert!(heavy.rate_factor >= 0.05 && heavy.rate_factor < 0.75);
        assert!(heavy.onset_s < 60.0);
    }
}
