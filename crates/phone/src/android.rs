//! Android sensor sampling policy (§VI-A).
//!
//! Apps targeting Android 12+ without the `HIGH_SAMPLING_RATE_SENSORS`
//! permission receive motion-sensor data capped at 200 Hz. The paper
//! evaluates the attack under this cap and still finds 80.1 % accuracy on
//! TESS/loudspeaker (vs 95.3 % uncapped).

use crate::accel::AccelTrace;
use emoleak_dsp::resample::resample_linear;
use serde::{Deserialize, Serialize};

/// The sampling policy the recording app operates under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[derive(Default)]
pub enum SamplingPolicy {
    /// Pre-Android-12 behaviour: full sensor rate delivered to the app.
    #[default]
    Default,
    /// Android 12+ zero-permission cap: at most 200 Hz delivered.
    Capped200Hz,
}

impl SamplingPolicy {
    /// The delivered rate for a sensor running at `sensor_rate_hz`.
    pub fn delivered_rate(self, sensor_rate_hz: f64) -> f64 {
        match self {
            SamplingPolicy::Default => sensor_rate_hz,
            SamplingPolicy::Capped200Hz => sensor_rate_hz.min(200.0),
        }
    }

    /// Applies the policy to a recorded trace, resampling if capped.
    pub fn apply(self, trace: AccelTrace) -> AccelTrace {
        let target = self.delivered_rate(trace.fs);
        if (target - trace.fs).abs() < 1e-9 || trace.samples.is_empty() {
            return trace;
        }
        let samples = resample_linear(&trace.samples, trace.fs, target)
            .expect("valid rates for non-empty trace");
        AccelTrace { samples, fs: target }
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_identity() {
        let t = AccelTrace { samples: vec![1.0; 420], fs: 420.0 };
        let out = SamplingPolicy::Default.apply(t.clone());
        assert_eq!(out, t);
    }

    #[test]
    fn cap_reduces_rate_to_200() {
        let t = AccelTrace { samples: vec![0.5; 4200], fs: 420.0 };
        let out = SamplingPolicy::Capped200Hz.apply(t);
        assert_eq!(out.fs, 200.0);
        // 10 s of data stays 10 s.
        assert!((out.duration() - 10.0).abs() < 0.05);
    }

    #[test]
    fn cap_leaves_slow_sensors_alone() {
        let t = AccelTrace { samples: vec![0.5; 100], fs: 100.0 };
        let out = SamplingPolicy::Capped200Hz.apply(t.clone());
        assert_eq!(out, t);
    }

    #[test]
    fn delivered_rates() {
        assert_eq!(SamplingPolicy::Default.delivered_rate(420.0), 420.0);
        assert_eq!(SamplingPolicy::Capped200Hz.delivered_rate(420.0), 200.0);
        assert_eq!(SamplingPolicy::Capped200Hz.delivered_rate(150.0), 150.0);
    }

    #[test]
    fn empty_trace_is_preserved() {
        let t = AccelTrace { samples: vec![], fs: 420.0 };
        let out = SamplingPolicy::Capped200Hz.apply(t);
        assert!(out.samples.is_empty());
    }
}
