//! Continuous recording sessions.
//!
//! The paper's data collection (§IV-A) plays clips of the same emotion
//! grouped together while the "Physics Toolbox Sensor Suite" records one
//! continuous accelerometer trace; labels are assigned by playback time.
//! [`RecordingSession`] reproduces that workflow: it concatenates clip
//! playbacks (with inter-clip gaps where only noise is recorded) and
//! returns the trace plus time-window labels.

use crate::accel::AccelTrace;
use crate::android::SamplingPolicy;
use crate::device::{DeviceProfile, SpeakerKind};
use crate::faults::{FaultLog, FaultProfile};
use crate::{Placement, VibrationChannel};
use emoleak_dsp::noise::Gaussian;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A labeled time window within a session trace, in samples of the trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledSpan<L> {
    /// First sample of the window.
    pub start: usize,
    /// One past the last sample.
    pub end: usize,
    /// The label (the paper uses the acted emotion of the playback).
    pub label: L,
}

/// A continuous accelerometer recording with playback-time labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionTrace<L> {
    /// The recorded trace.
    pub trace: AccelTrace,
    /// One labeled window per played clip, in playback order.
    pub labels: Vec<LabeledSpan<L>>,
}

impl<L> SessionTrace<L> {
    /// The samples of the window for label entry `i`.
    ///
    /// Never panics: spans are clamped to the recorded trace, so a window
    /// that falls partly or wholly past the end of the recording (possible
    /// when fault injection shortened the trace) yields the surviving
    /// overlap — or an empty slice, as does an out-of-range `i`.
    pub fn window(&self, i: usize) -> &[f64] {
        let Some(span) = self.labels.get(i) else {
            return &[];
        };
        let end = span.end.min(self.trace.samples.len());
        let start = span.start.min(end);
        &self.trace.samples[start..end]
    }
}

/// A recording campaign for one (device, speaker, placement, policy) tuple.
#[derive(Debug, Clone)]
pub struct RecordingSession {
    channel: VibrationChannel,
    policy: SamplingPolicy,
    gap_s: f64,
    device_name: String,
    faults: FaultProfile,
}

impl RecordingSession {
    /// Creates a session on `device` playing through `kind` in `placement`.
    pub fn new(device: &DeviceProfile, kind: SpeakerKind, placement: Placement) -> Self {
        RecordingSession {
            channel: VibrationChannel::new(device, kind, placement),
            policy: SamplingPolicy::Default,
            gap_s: 0.25,
            device_name: device.name().to_string(),
            faults: FaultProfile::clean(),
        }
    }

    /// Applies an Android sampling policy to the recording app.
    #[must_use]
    pub fn with_policy(mut self, policy: SamplingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Injects channel imperfections ([`FaultProfile`]) into every recording
    /// made by this session. The faulted irregular trace is regularized back
    /// onto the nominal grid before being returned, so downstream consumers
    /// keep seeing a uniform [`AccelTrace`]; fault accounting is available
    /// through [`RecordingSession::record_clip_logged`] and
    /// [`RecordingSession::record_session_logged`].
    #[must_use]
    pub fn with_faults(mut self, faults: FaultProfile) -> Self {
        self.faults = faults;
        self
    }

    /// The fault profile recordings are subjected to.
    pub fn fault_profile(&self) -> &FaultProfile {
        &self.faults
    }

    /// Sets the silent gap between consecutive clip playbacks (seconds).
    #[must_use]
    pub fn with_gap_s(mut self, gap_s: f64) -> Self {
        self.gap_s = gap_s.max(0.0);
        self
    }

    /// The device this session records on.
    pub fn device_name(&self) -> &str {
        &self.device_name
    }

    /// The delivered accelerometer rate under the session's policy.
    pub fn delivered_rate(&self) -> f64 {
        self.policy.delivered_rate(self.channel.accel_rate_hz())
    }

    /// Records one clip in isolation (no session concatenation).
    pub fn record_clip<R: Rng + ?Sized>(
        &self,
        audio: &[f64],
        fs_audio: f64,
        rng: &mut R,
    ) -> AccelTrace {
        self.record_clip_logged(audio, fs_audio, rng).0
    }

    /// Records one clip and reports the faults injected into it.
    ///
    /// With a [`FaultProfile::clean`] profile (the default) the log is
    /// always clean and the trace matches [`RecordingSession::record_clip`].
    pub fn record_clip_logged<R: Rng + ?Sized>(
        &self,
        audio: &[f64],
        fs_audio: f64,
        rng: &mut R,
    ) -> (AccelTrace, FaultLog) {
        let clean = self.record_clip_clean(audio, fs_audio, rng);
        self.fault_and_regularize(clean, rng)
    }

    /// The ideal-channel recording: simulation + sampling policy, no faults.
    fn record_clip_clean<R: Rng + ?Sized>(
        &self,
        audio: &[f64],
        fs_audio: f64,
        rng: &mut R,
    ) -> AccelTrace {
        let raw = self.channel.simulate(audio, fs_audio, rng);
        self.policy.apply(raw)
    }

    /// Runs `trace` through the session's fault profile and regularizes the
    /// resulting irregular delivery back onto the nominal uniform grid.
    /// Degenerate outcomes (every sample dropped) yield an empty trace, not
    /// an error — downstream guards handle empty input.
    fn fault_and_regularize<R: Rng + ?Sized>(
        &self,
        trace: AccelTrace,
        rng: &mut R,
    ) -> (AccelTrace, FaultLog) {
        if self.faults.is_noop() {
            return (trace, FaultLog::default());
        }
        let fs = trace.fs;
        let (timed, log) = self.faults.apply(&trace, rng);
        // Interpolate across ordinary delivery hiccups (a handful of nominal
        // periods, wider when thermal throttling legitimately slows the
        // cadence) but rest-fill longer blackouts such as doze suspensions.
        let period = 1.0 / fs;
        let mut max_gap = 8.0 * period;
        if !self.faults.throttle.is_off() && self.faults.throttle.rate_factor > 0.0 {
            max_gap = max_gap.max(3.0 * period / self.faults.throttle.rate_factor);
        }
        match timed.regularize(max_gap) {
            Ok(regular) => (regular, log),
            Err(_) => (AccelTrace { samples: Vec::new(), fs }, log),
        }
    }

    /// Plays `clips` back-to-back (with gaps) into one continuous recording,
    /// labeling each playback window.
    ///
    /// Clips should be pre-grouped by emotion by the caller if the paper's
    /// grouped-playback protocol is wanted; the session does not reorder.
    pub fn record_session<L: Clone, R: Rng + ?Sized>(
        &self,
        clips: impl IntoIterator<Item = (Vec<f64>, f64, L)>,
        rng: &mut R,
    ) -> SessionTrace<L> {
        self.record_session_logged(clips, rng).0
    }

    /// Like [`RecordingSession::record_session`], also returning the
    /// campaign-wide fault accounting.
    ///
    /// Faults are injected into the *continuous* recording (after
    /// concatenation), as a real background recorder would experience them:
    /// doze blackouts and thermal throttling act on wall-clock recording
    /// time, not per clip. Label spans keep their nominal sample indices —
    /// timestamps survive regularization, so windows stay aligned to within
    /// a few samples — and [`SessionTrace::window`] clamps spans that
    /// outlive a fault-shortened trace.
    ///
    /// One seed is drawn from `rng` and the rest of the recording runs on
    /// per-clip derived streams (see
    /// [`RecordingSession::record_session_seeded`]), so the channel noise
    /// is identical however many workers record the session.
    pub fn record_session_logged<L: Clone, R: Rng + ?Sized>(
        &self,
        clips: impl IntoIterator<Item = (Vec<f64>, f64, L)>,
        rng: &mut R,
    ) -> (SessionTrace<L>, FaultLog) {
        let session_seed = rng.next_u64();
        self.record_session_seeded(clips.into_iter().collect(), session_seed)
    }

    /// Records one continuous session from an explicit seed, with each
    /// clip's channel noise drawn from its own RNG stream derived from
    /// `(seed, clip_index)` — the determinism contract that lets the clips
    /// be simulated **in parallel** (worker count cannot affect the trace,
    /// because no clip shares a random stream with any other, and the
    /// posture-drift and fault-injection stages run on dedicated streams
    /// over the concatenated trace in playback order).
    pub fn record_session_seeded<L: Clone>(
        &self,
        clips: Vec<(Vec<f64>, f64, L)>,
        seed: u64,
    ) -> (SessionTrace<L>, FaultLog) {
        use rand::SeedableRng;
        // Dedicated streams: clip i uses stream i; whole-trace stages use
        // high-bit streams that no clip index can reach.
        const DRIFT_STREAM: u64 = 1 << 63;
        const FAULT_STREAM: u64 = (1 << 63) | 1;
        let fs_out = self.delivered_rate();
        let gap_len = (self.gap_s * fs_out) as usize;
        let (payloads, label_payloads): (Vec<(Vec<f64>, f64)>, Vec<L>) = clips
            .into_iter()
            .map(|(audio, fs_audio, label)| ((audio, fs_audio), label))
            .unzip();
        // Per-clip recording (gap first, then the playback) on stream i.
        let recorded: Vec<(Vec<f64>, Vec<f64>)> =
            emoleak_exec::par_map_indexed(&payloads, |i, (audio, fs_audio)| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    emoleak_exec::derive_seed(seed, i as u64),
                );
                let silent = vec![0.0; (self.gap_s * fs_audio) as usize];
                let gap_trace = self.record_clip_clean(&silent, *fs_audio, &mut rng);
                let clip_trace = self.record_clip_clean(audio, *fs_audio, &mut rng);
                (gap_trace.samples, clip_trace.samples)
            });
        // Concatenation in playback order — index-ordered, never
        // completion-ordered.
        let mut samples: Vec<f64> = Vec::new();
        let mut labels = Vec::new();
        for ((gap, clip), label) in recorded.into_iter().zip(label_payloads) {
            samples.extend(gap.into_iter().take(gap_len));
            let start = samples.len();
            samples.extend(clip);
            labels.push(LabeledSpan { start, end: samples.len(), label });
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            emoleak_exec::derive_seed(seed, DRIFT_STREAM),
        );
        // Handheld sessions additionally carry a continuous posture drift:
        // the holder's arm slowly settles and shifts over tens of seconds,
        // moving the gravity projection on the z axis. This is the slow
        // component that the paper's 1 Hz high-pass ablation (Table I)
        // removes.
        if self.channel.placement() == Placement::Handheld {
            add_posture_drift(
                &mut samples,
                fs_out,
                6.0 * self.channel.motion_noise_std(),
                &mut rng,
            );
        }
        let mut fault_rng = rand::rngs::StdRng::seed_from_u64(
            emoleak_exec::derive_seed(seed, FAULT_STREAM),
        );
        let (trace, log) =
            self.fault_and_regularize(AccelTrace { samples, fs: fs_out }, &mut fault_rng);
        (SessionTrace { trace, labels }, log)
    }
}

/// Adds a leaky-random-walk posture drift (correlation time ~12 s,
/// stationary standard deviation `std`) to a session trace in place.
fn add_posture_drift<R: Rng + ?Sized>(samples: &mut [f64], fs: f64, std: f64, rng: &mut R) {
    let tau_s = 25.0;
    let a = (-1.0 / (tau_s * fs)).exp();
    let sigma_w = std * (1.0 - a * a).sqrt();
    let mut gauss = Gaussian::new();
    let mut drift = gauss.sample(rng, 0.0, std);
    for v in samples.iter_mut() {
        drift = a * drift + gauss.sample(rng, 0.0, sigma_w);
        *v += drift;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn session() -> RecordingSession {
        RecordingSession::new(
            &DeviceProfile::oneplus_7t(),
            SpeakerKind::Loudspeaker,
            Placement::TableTop,
        )
    }

    fn tone_clip(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.4 * (i as f64 * 0.5).sin()).collect()
    }

    #[test]
    fn record_clip_outputs_device_rate() {
        let t = session().record_clip(&tone_clip(8000), 8000.0, &mut rng(1));
        assert_eq!(t.fs, 420.0);
    }

    #[test]
    fn capped_session_outputs_200hz() {
        let s = session().with_policy(SamplingPolicy::Capped200Hz);
        assert_eq!(s.delivered_rate(), 200.0);
        let t = s.record_clip(&tone_clip(8000), 8000.0, &mut rng(2));
        assert_eq!(t.fs, 200.0);
    }

    #[test]
    fn session_labels_cover_each_clip() {
        let clips = vec![
            (tone_clip(4000), 8000.0, "anger"),
            (tone_clip(4000), 8000.0, "sad"),
        ];
        let st = session().record_session(clips, &mut rng(3));
        assert_eq!(st.labels.len(), 2);
        assert_eq!(st.labels[0].label, "anger");
        assert!(st.labels[0].start > 0, "gap precedes first clip");
        assert!(st.labels[0].end <= st.labels[1].start);
        assert_eq!(st.labels[1].end, st.trace.samples.len());
        // Each ~0.5 s clip occupies ~210 samples at 420 Hz.
        let w = st.window(0);
        assert!((w.len() as f64 - 210.0).abs() < 10.0, "window len {}", w.len());
    }

    #[test]
    fn clip_windows_carry_signal_gaps_carry_noise() {
        let clips = vec![(tone_clip(8000), 8000.0, ())];
        let st = session().record_session(clips, &mut rng(4));
        let span = &st.labels[0];
        let rms = |x: &[f64]| (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt();
        let gap_rms = rms(&st.trace.samples[..span.start]);
        let clip_rms = rms(st.window(0));
        assert!(clip_rms > 4.0 * gap_rms, "clip {clip_rms} vs gap {gap_rms}");
    }

    #[test]
    fn handheld_session_carries_slow_posture_drift() {
        // The drift should dominate low frequencies and correlate over
        // seconds: the windowed means of a silent handheld session vary far
        // more than a table-top one's.
        let d = DeviceProfile::oneplus_7t();
        let silent: Vec<(Vec<f64>, f64, ())> =
            (0..20).map(|_| (vec![0.0; 8000], 8000.0, ())).collect();
        let hand = RecordingSession::new(&d, SpeakerKind::EarSpeaker, Placement::Handheld)
            .record_session(silent.clone(), &mut rng(21));
        let table = RecordingSession::new(&d, SpeakerKind::Loudspeaker, Placement::TableTop)
            .record_session(silent, &mut rng(21));
        let window_mean_spread = |x: &[f64]| {
            let w = 420; // ~1 s windows
            let means: Vec<f64> = x.chunks(w).map(|c| c.iter().sum::<f64>() / c.len() as f64).collect();
            let m = means.iter().sum::<f64>() / means.len() as f64;
            (means.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / means.len() as f64).sqrt()
        };
        let hs = window_mean_spread(&hand.trace.samples);
        let ts = window_mean_spread(&table.trace.samples);
        assert!(hs > 10.0 * ts, "handheld drift {hs:.4} vs table-top {ts:.6}");
        // And consecutive windows are correlated (slow process, ~25 s).
        let w = 420;
        let means: Vec<f64> = hand.trace.samples.chunks(w)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        let r = emoleak_dsp::stats::pearson(&means[..means.len() - 1], &means[1..]);
        assert!(r > 0.5, "adjacent-second drift correlation {r:.2}");
    }

    #[test]
    fn coupling_scale_zero_silences_the_channel() {
        let d = DeviceProfile::oneplus_7t().with_coupling_scale(0.0);
        let s = RecordingSession::new(&d, SpeakerKind::Loudspeaker, Placement::TableTop);
        let t = s.record_clip(&tone_clip(8000), 8000.0, &mut rng(22));
        // Only sensor noise remains.
        let rms = (t.samples.iter().map(|v| v * v).sum::<f64>() / t.samples.len() as f64).sqrt();
        assert!(rms < 0.005, "silenced channel rms {rms}");
    }

    #[test]
    fn window_clamps_out_of_range_spans() {
        let st = SessionTrace {
            trace: AccelTrace { samples: vec![1.0, 2.0, 3.0], fs: 420.0 },
            labels: vec![
                LabeledSpan { start: 1, end: 3, label: () },
                LabeledSpan { start: 2, end: 10, label: () },
                LabeledSpan { start: 7, end: 10, label: () },
            ],
        };
        assert_eq!(st.window(0), &[2.0, 3.0]);
        assert_eq!(st.window(1), &[3.0]); // end clamped
        assert!(st.window(2).is_empty()); // start past trace
        assert!(st.window(99).is_empty()); // index out of range
    }

    #[test]
    fn faulted_clip_keeps_nominal_rate_and_logs_faults() {
        let s = session().with_faults(FaultProfile::handheld_walking());
        let (t, log) = s.record_clip_logged(&tone_clip(16000), 8000.0, &mut rng(31));
        assert_eq!(t.fs, 420.0);
        assert!(!log.is_clean(), "expected injected faults, log: {log}");
        assert!(log.dropped > 0);
        assert!(t.samples.iter().all(|v| v.is_finite()));
        // ~2 s of audio still ~2 s of trace after regularization.
        assert!((t.duration() - 2.0).abs() < 0.1, "duration {}", t.duration());
    }

    #[test]
    fn clean_profile_logged_matches_unlogged() {
        let audio = tone_clip(8000);
        let a = session().record_clip(&audio, 8000.0, &mut rng(32));
        let (b, log) = session().record_clip_logged(&audio, 8000.0, &mut rng(32));
        assert!(log.is_clean());
        assert_eq!(a, b);
    }

    #[test]
    fn faulted_session_keeps_label_alignment() {
        let clips = vec![
            (tone_clip(8000), 8000.0, "anger"),
            (tone_clip(8000), 8000.0, "sad"),
        ];
        // Delivery faults only (drops/dups/jitter): motion bursts would add
        // energy to the gaps and confound the alignment check below.
        let s = session().with_faults(FaultProfile {
            drop_rate: 0.05,
            dup_rate: 0.02,
            jitter_std_s: 0.5e-3,
            ..FaultProfile::clean()
        });
        let (st, log) = s.record_session_logged(clips, &mut rng(33));
        assert!(!log.is_clean());
        assert_eq!(st.labels.len(), 2);
        // Windows still carry the clip energy: signal ≫ the preceding gap.
        let rms = |x: &[f64]| {
            if x.is_empty() {
                return 0.0;
            }
            (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
        };
        let gap_rms = rms(&st.trace.samples[..st.labels[0].start.min(st.trace.samples.len())]);
        let clip_rms = rms(st.window(0));
        assert!(
            clip_rms > 2.0 * gap_rms,
            "alignment lost: clip {clip_rms} vs gap {gap_rms}"
        );
    }

    #[test]
    fn seeded_session_is_identical_across_worker_counts() {
        let clips: Vec<(Vec<f64>, f64, usize)> =
            (0..6).map(|r| (tone_clip(4000), 8000.0, r)).collect();
        let s = RecordingSession::new(
            &DeviceProfile::oneplus_7t(),
            SpeakerKind::EarSpeaker,
            Placement::Handheld,
        )
        .with_faults(FaultProfile::handheld_walking());
        let run = |n: usize| {
            emoleak_exec::with_threads(n, || s.record_session_seeded(clips.clone(), 0xD5))
        };
        let (a, log_a) = run(1);
        for n in [2, 8] {
            let (b, log_b) = run(n);
            let bits = |x: &[f64]| x.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.trace.samples), bits(&b.trace.samples), "{n} workers");
            assert_eq!(a.labels, b.labels);
            assert_eq!(log_a, log_b);
        }
    }

    #[test]
    fn logged_session_draws_one_seed_then_delegates() {
        // record_session_logged must equal record_session_seeded with the
        // seed the caller's RNG would produce next.
        let clips = vec![(tone_clip(4000), 8000.0, "anger")];
        let mut r = rng(40);
        let expected_seed = r.next_u64();
        let (a, _) = session().record_session_logged(clips.clone(), &mut rng(40));
        let (b, _) = session().record_session_seeded(clips, expected_seed);
        assert_eq!(a, b);
    }

    #[test]
    fn total_drop_profile_yields_empty_trace_not_panic() {
        let p = FaultProfile { drop_rate: 1.0, ..FaultProfile::clean() }
            .with_severity(10.0); // clamps at 0.95 — still nearly everything
        let s = session().with_faults(p);
        let (t, log) = s.record_clip_logged(&tone_clip(4000), 8000.0, &mut rng(34));
        assert!(log.dropped > 0);
        assert!(t.samples.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn handheld_ear_speaker_is_noisier_relative_to_signal() {
        let d = DeviceProfile::oneplus_7t();
        let loud = RecordingSession::new(&d, SpeakerKind::Loudspeaker, Placement::TableTop);
        let ear = RecordingSession::new(&d, SpeakerKind::EarSpeaker, Placement::Handheld);
        let audio = tone_clip(16000);
        let rms = |x: &[f64]| (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt();
        // Compare silent-gap noise to in-clip signal for both settings.
        let silent = vec![0.0; 16000];
        let loud_sig = rms(&loud.record_clip(&audio, 8000.0, &mut rng(5)).samples);
        let loud_noise = rms(&loud.record_clip(&silent, 8000.0, &mut rng(6)).samples);
        let ear_sig = rms(&ear.record_clip(&audio, 8000.0, &mut rng(7)).samples);
        let ear_noise = rms(&ear.record_clip(&silent, 8000.0, &mut rng(8)).samples);
        let loud_snr = loud_sig / loud_noise;
        let ear_snr = ear_sig / ear_noise;
        assert!(
            loud_snr > 1.5 * ear_snr,
            "loudspeaker SNR {loud_snr:.1} should exceed ear SNR {ear_snr:.2}"
        );
    }
}
