//! Chunked replay of recorded sessions — the sample feed for online
//! inference.
//!
//! A live attacker does not get a whole campaign at once: the sensor HAL
//! hands the zero-permission app small batches of accelerometer samples,
//! and reads occasionally fail transiently (binder hiccups, listener
//! re-registration after a foreground change). [`ChunkedReplay`] turns a
//! recorded [`SessionTrace`] into exactly that shape — fixed-size chunks in
//! playback order, tagged with their labeled window — and [`FlakyReplay`]
//! layers seeded transient read failures on top with *at-least-once*
//! delivery: a failed read retains its chunk, so a retried call returns the
//! same samples and the replayed stream loses nothing.

use crate::session::SessionTrace;

/// A fixed-size batch of samples from one labeled window of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayChunk<L> {
    /// Index of the labeled window (= clip playback) this chunk belongs to.
    pub window: usize,
    /// Offset of the first sample within its window, samples.
    pub offset: usize,
    /// The samples: `chunk_len` of them, fewer at a window's tail.
    pub samples: Vec<f64>,
    /// The window's playback-time label.
    pub label: L,
    /// Whether this is the final chunk of its window.
    pub last_in_window: bool,
}

/// Cuts a [`SessionTrace`] into per-window fixed-size chunks, in playback
/// order.
///
/// Every labeled window appears, in order, as one or more chunks whose
/// concatenated samples equal [`SessionTrace::window`] exactly; the last
/// chunk of each window is flagged. A window emptied by fault injection
/// still yields one empty flagged chunk, so downstream consumers see every
/// window index exactly once — the property that keeps streaming output
/// aligned with the batch pipeline's per-window iteration.
#[derive(Debug, Clone)]
pub struct ChunkedReplay<'a, L> {
    session: &'a SessionTrace<L>,
    chunk_len: usize,
    window: usize,
    offset: usize,
}

impl<L: Clone> SessionTrace<L> {
    /// Replays this session as fixed-size chunks of at most `chunk_len`
    /// samples (clamped to at least 1).
    pub fn chunks(&self, chunk_len: usize) -> ChunkedReplay<'_, L> {
        ChunkedReplay { session: self, chunk_len: chunk_len.max(1), window: 0, offset: 0 }
    }
}

impl<L: Clone> Iterator for ChunkedReplay<'_, L> {
    type Item = ReplayChunk<L>;

    fn next(&mut self) -> Option<ReplayChunk<L>> {
        let span = self.session.labels.get(self.window)?;
        let window = self.session.window(self.window);
        let start = self.offset;
        let end = (start + self.chunk_len).min(window.len());
        let last_in_window = end == window.len();
        let chunk = ReplayChunk {
            window: self.window,
            offset: start,
            samples: window[start..end].to_vec(),
            label: span.label.clone(),
            last_in_window,
        };
        if last_in_window {
            self.window += 1;
            self.offset = 0;
        } else {
            self.offset = end;
        }
        Some(chunk)
    }
}

/// A transient sensor-read failure. The read can simply be retried: the
/// source retained the chunk and will deliver it on the next successful
/// call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceDropout {
    /// How many consecutive reads have failed at this stream position
    /// (1 on the first failure).
    pub attempt: u32,
}

impl core::fmt::Display for SourceDropout {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "transient sensor read failure (attempt {})", self.attempt)
    }
}

impl std::error::Error for SourceDropout {}

/// A hostile or corrupt condition in an incoming sample stream, detected
/// *before* the data reaches DSP.
///
/// A zero-permission listener ingests sensor data it does not control; a
/// malicious or broken HAL can feed it NaN/Inf samples (which poison every
/// downstream statistic) or replayed / reordered timestamps (which
/// misalign labels and double-count windows). Validation rejects those
/// with a typed defect instead of propagating garbage; legitimate *gaps*
/// (missing data) are not defects — fault injection produces those on the
/// honest path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputDefect {
    /// A sample is NaN or ±Inf.
    NonFiniteSample {
        /// Window the sample belongs to (the span count when it falls in
        /// an unlabeled gap of a session trace).
        window: usize,
        /// Sample offset — within the window for chunk streams, absolute
        /// within the trace for session validation.
        offset: usize,
    },
    /// A chunk's window index went backwards — a replayed or reordered
    /// stream.
    NonMonotonicWindow {
        /// The last window index seen.
        previous: usize,
        /// The regressing index observed.
        observed: usize,
    },
    /// A window delivered more chunks after its flagged final chunk — a
    /// duplicate-delivery attack on window accounting.
    ReopenedWindow {
        /// The reopened window.
        window: usize,
    },
    /// Two chunks of one window carried the same sample offset — a
    /// duplicated timestamp.
    DuplicateTimestamp {
        /// The affected window.
        window: usize,
        /// The repeated offset.
        offset: usize,
    },
    /// A chunk's sample offset within its window went backwards.
    NonMonotonicTimestamp {
        /// The affected window.
        window: usize,
        /// The last offset seen in this window.
        previous: usize,
        /// The regressing offset observed.
        observed: usize,
    },
    /// A labeled span of a session trace ends before it starts or overlaps
    /// its predecessor.
    DisorderedSpan {
        /// Index of the offending span.
        window: usize,
    },
}

impl core::fmt::Display for InputDefect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InputDefect::NonFiniteSample { window, offset } => {
                write!(f, "non-finite sample at window {window} offset {offset}")
            }
            InputDefect::NonMonotonicWindow { previous, observed } => {
                write!(f, "window index regressed from {previous} to {observed}")
            }
            InputDefect::ReopenedWindow { window } => {
                write!(f, "window {window} delivered chunks after its final chunk")
            }
            InputDefect::DuplicateTimestamp { window, offset } => {
                write!(f, "duplicate timestamp in window {window} at offset {offset}")
            }
            InputDefect::NonMonotonicTimestamp { window, previous, observed } => write!(
                f,
                "timestamp in window {window} regressed from offset {previous} to {observed}"
            ),
            InputDefect::DisorderedSpan { window } => {
                write!(f, "labeled span {window} is disordered (reversed or overlapping)")
            }
        }
    }
}

impl std::error::Error for InputDefect {}

/// Stateful validator for a chunk stream: feed every chunk through
/// [`ChunkValidator::check`] in delivery order.
///
/// Accepts exactly what an honest (possibly faulted) source can produce —
/// finite samples, non-decreasing window indices, strictly increasing
/// offsets within a window, no chunks after a window's flagged final chunk
/// — and rejects everything else. Gaps (skipped offsets or whole skipped
/// windows) are allowed: missing data is a fault, not an attack.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkValidator {
    last: Option<LastChunk>,
}

#[derive(Debug, Clone, Copy)]
struct LastChunk {
    window: usize,
    offset: usize,
    closed: bool,
}

impl ChunkValidator {
    /// A fresh validator (no chunks seen yet).
    pub fn new() -> Self {
        ChunkValidator::default()
    }

    /// Validates the next chunk of the stream.
    ///
    /// # Errors
    ///
    /// The [`InputDefect`] the chunk exhibits, if any. A rejected chunk
    /// does not advance the validator: the stream is already condemned.
    pub fn check<L>(&mut self, chunk: &ReplayChunk<L>) -> Result<(), InputDefect> {
        if let Some(i) = chunk.samples.iter().position(|v| !v.is_finite()) {
            return Err(InputDefect::NonFiniteSample {
                window: chunk.window,
                offset: chunk.offset + i,
            });
        }
        if let Some(last) = self.last {
            if chunk.window < last.window {
                return Err(InputDefect::NonMonotonicWindow {
                    previous: last.window,
                    observed: chunk.window,
                });
            }
            if chunk.window == last.window {
                if last.closed {
                    return Err(InputDefect::ReopenedWindow { window: chunk.window });
                }
                if chunk.offset == last.offset {
                    return Err(InputDefect::DuplicateTimestamp {
                        window: chunk.window,
                        offset: chunk.offset,
                    });
                }
                if chunk.offset < last.offset {
                    return Err(InputDefect::NonMonotonicTimestamp {
                        window: chunk.window,
                        previous: last.offset,
                        observed: chunk.offset,
                    });
                }
            }
        }
        self.last = Some(LastChunk {
            window: chunk.window,
            offset: chunk.offset,
            closed: chunk.last_in_window,
        });
        Ok(())
    }
}

impl<L> SessionTrace<L> {
    /// Validates a whole recorded session against the same hostile-input
    /// rules the chunk stream enforces: every sample finite, labeled spans
    /// ordered and non-overlapping (spans running past a fault-shortened
    /// trace are legitimate — [`SessionTrace::window`] clamps them).
    ///
    /// # Errors
    ///
    /// The first [`InputDefect`] found, scanning samples then spans.
    pub fn validate(&self) -> Result<(), InputDefect> {
        if let Some(i) = self.trace.samples.iter().position(|v| !v.is_finite()) {
            let window = self
                .labels
                .iter()
                .position(|s| s.start <= i && i < s.end)
                .unwrap_or(self.labels.len());
            return Err(InputDefect::NonFiniteSample { window, offset: i });
        }
        let mut prev_end = 0usize;
        for (w, span) in self.labels.iter().enumerate() {
            if span.end < span.start || span.start < prev_end {
                return Err(InputDefect::DisorderedSpan { window: w });
            }
            prev_end = span.end;
        }
        Ok(())
    }
}

/// A [`ChunkedReplay`] whose reads transiently fail with a seeded
/// probability — the HAL-flakiness counterpart to the channel-level
/// [`FaultProfile`](crate::FaultProfile).
///
/// Failures are *transient and lossless*: a failing [`FlakyReplay::read`]
/// keeps the chunk it would have delivered, and the retried read returns
/// exactly that chunk. Draining the source therefore yields the same chunk
/// sequence as the clean replay regardless of where failures land, and the
/// failure pattern is a pure function of `seed` (one `splitmix64` draw per
/// read attempt), so every run is reproducible.
#[derive(Debug, Clone)]
pub struct FlakyReplay<'a, L> {
    inner: ChunkedReplay<'a, L>,
    fail_rate: f64,
    seed: u64,
    draws: u64,
    pending: Option<ReplayChunk<L>>,
    attempt: u32,
}

impl<'a, L: Clone> FlakyReplay<'a, L> {
    /// Wraps `inner` so each read fails with probability `fail_rate`
    /// (clamped to `[0, 0.95]` — a source that never succeeds would make
    /// liveness unfalsifiable), deterministically in `seed`.
    pub fn new(inner: ChunkedReplay<'a, L>, fail_rate: f64, seed: u64) -> Self {
        FlakyReplay {
            inner,
            fail_rate: fail_rate.clamp(0.0, 0.95),
            seed,
            draws: 0,
            pending: None,
            attempt: 0,
        }
    }

    /// Reads the next chunk: `Ok(None)` at end of stream, or a retryable
    /// [`SourceDropout`].
    ///
    /// # Errors
    ///
    /// Fails transiently with probability `fail_rate` per call; the chunk
    /// is retained and returned by the next successful call.
    pub fn read(&mut self) -> Result<Option<ReplayChunk<L>>, SourceDropout> {
        if self.pending.is_none() {
            self.pending = self.inner.next();
            if self.pending.is_none() {
                // End of stream is delivered reliably: a dropout here
                // would be indistinguishable from a wedged source.
                return Ok(None);
            }
        }
        let mut stream = emoleak_exec::derive_seed(self.seed, self.draws);
        let roll = emoleak_exec::splitmix64(&mut stream);
        self.draws += 1;
        // 53-bit mantissa → uniform in [0, 1).
        let uniform = (roll >> 11) as f64 / (1u64 << 53) as f64;
        if uniform < self.fail_rate {
            self.attempt += 1;
            return Err(SourceDropout { attempt: self.attempt });
        }
        self.attempt = 0;
        Ok(self.pending.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AccelTrace;
    use crate::session::LabeledSpan;

    fn session() -> SessionTrace<&'static str> {
        let samples: Vec<f64> = (0..25).map(f64::from).collect();
        SessionTrace {
            trace: AccelTrace { samples, fs: 420.0 },
            labels: vec![
                LabeledSpan { start: 0, end: 10, label: "anger" },
                LabeledSpan { start: 10, end: 10, label: "empty" },
                LabeledSpan { start: 10, end: 25, label: "sad" },
                LabeledSpan { start: 30, end: 40, label: "gone" }, // clamped away
            ],
        }
    }

    #[test]
    fn chunks_reassemble_every_window_in_order() {
        let st = session();
        let chunks: Vec<_> = st.chunks(4).collect();
        // Window 0: 10 samples → 3 chunks; window 1: empty → 1 chunk;
        // window 2: 15 samples → 4 chunks; window 3: clamped empty → 1.
        assert_eq!(chunks.len(), 3 + 1 + 4 + 1);
        for w in 0..st.labels.len() {
            let of_w: Vec<_> = chunks.iter().filter(|c| c.window == w).collect();
            let rebuilt: Vec<f64> =
                of_w.iter().flat_map(|c| c.samples.iter().copied()).collect();
            assert_eq!(rebuilt, st.window(w), "window {w}");
            let (last, rest) = of_w.split_last().unwrap();
            assert!(last.last_in_window);
            assert!(rest.iter().all(|c| !c.last_in_window));
            assert!(of_w.iter().all(|c| c.label == st.labels[w].label));
        }
        // Offsets advance within a window.
        assert_eq!(
            chunks.iter().filter(|c| c.window == 0).map(|c| c.offset).collect::<Vec<_>>(),
            vec![0, 4, 8]
        );
    }

    #[test]
    fn zero_chunk_len_is_clamped_not_an_infinite_loop() {
        let st = session();
        let n = st.chunks(0).take(1000).count();
        assert!(n < 1000, "chunking must terminate");
    }

    #[test]
    fn flaky_replay_is_lossless_and_deterministic() {
        let st = session();
        let clean: Vec<_> = st.chunks(4).collect();
        let drain = |seed: u64| {
            let mut flaky = FlakyReplay::new(st.chunks(4), 0.5, seed);
            let mut out = Vec::new();
            let mut dropouts = 0u32;
            loop {
                match flaky.read() {
                    Ok(Some(c)) => out.push(c),
                    Ok(None) => break,
                    Err(e) => {
                        assert!(e.attempt >= 1);
                        dropouts += 1;
                        assert!(dropouts < 10_000, "no livelock");
                    }
                }
            }
            (out, dropouts)
        };
        let (a, drops_a) = drain(0xF1);
        assert_eq!(a, clean, "retries must not lose or duplicate chunks");
        assert!(drops_a > 0, "rate 0.5 over {} reads must fail sometimes", clean.len());
        let (b, drops_b) = drain(0xF1);
        assert_eq!(a, b);
        assert_eq!(drops_a, drops_b, "failure pattern is seed-deterministic");
    }

    #[test]
    fn fail_rate_zero_matches_plain_iteration() {
        let st = session();
        let mut flaky = FlakyReplay::new(st.chunks(7), 0.0, 9);
        let mut out = Vec::new();
        while let Some(c) = flaky.read().expect("rate 0 never fails") {
            out.push(c);
        }
        assert_eq!(out, st.chunks(7).collect::<Vec<_>>());
    }

    #[test]
    fn honest_streams_pass_validation_even_with_gaps() {
        let st = session();
        let mut v = ChunkValidator::new();
        for chunk in st.chunks(4) {
            v.check(&chunk).unwrap();
        }
        assert!(st.validate().is_ok());
        // Gaps are faults, not attacks: skipping a chunk or a whole window
        // must not condemn the stream.
        let chunks: Vec<_> = session().chunks(4).collect();
        let mut v = ChunkValidator::new();
        for (i, chunk) in chunks.iter().enumerate() {
            if i % 3 == 1 {
                continue; // dropped delivery
            }
            v.check(chunk).unwrap();
        }
    }

    fn chunk(window: usize, offset: usize, samples: &[f64], last: bool) -> ReplayChunk<()> {
        ReplayChunk { window, offset, samples: samples.to_vec(), label: (), last_in_window: last }
    }

    #[test]
    fn validator_rejects_each_hostile_shape() {
        let mut v = ChunkValidator::new();
        assert_eq!(
            v.check(&chunk(0, 0, &[1.0, f64::NAN], false)),
            Err(InputDefect::NonFiniteSample { window: 0, offset: 1 })
        );
        // The rejected chunk did not advance the validator.
        v.check(&chunk(2, 0, &[1.0], true)).unwrap();
        assert_eq!(
            v.check(&chunk(1, 0, &[1.0], true)),
            Err(InputDefect::NonMonotonicWindow { previous: 2, observed: 1 })
        );
        assert_eq!(
            v.check(&chunk(2, 4, &[1.0], true)),
            Err(InputDefect::ReopenedWindow { window: 2 })
        );
        let mut v = ChunkValidator::new();
        v.check(&chunk(0, 0, &[1.0], false)).unwrap();
        assert_eq!(
            v.check(&chunk(0, 0, &[2.0], false)),
            Err(InputDefect::DuplicateTimestamp { window: 0, offset: 0 })
        );
        v.check(&chunk(0, 8, &[2.0], false)).unwrap();
        assert_eq!(
            v.check(&chunk(0, 3, &[2.0], true)),
            Err(InputDefect::NonMonotonicTimestamp { window: 0, previous: 8, observed: 3 })
        );
        assert!(v.check(&chunk(0, 3, &[f64::INFINITY], true)).is_err());
    }

    #[test]
    fn session_validate_finds_poisoned_samples_and_disordered_spans() {
        let mut st = session();
        st.trace.samples[12] = f64::NAN; // inside window 2 (spans 10..25)
        assert_eq!(
            st.validate(),
            Err(InputDefect::NonFiniteSample { window: 2, offset: 12 })
        );
        let st = SessionTrace {
            trace: AccelTrace { samples: vec![0.0; 20], fs: 420.0 },
            labels: vec![
                LabeledSpan { start: 0, end: 10, label: () },
                LabeledSpan { start: 8, end: 12, label: () }, // overlaps
            ],
        };
        assert_eq!(st.validate(), Err(InputDefect::DisorderedSpan { window: 1 }));
        let st = SessionTrace {
            trace: AccelTrace { samples: vec![0.0; 20], fs: 420.0 },
            labels: vec![LabeledSpan { start: 9, end: 3, label: () }], // reversed
        };
        assert_eq!(st.validate(), Err(InputDefect::DisorderedSpan { window: 0 }));
        // Spans past a fault-shortened trace are legitimate.
        let st = SessionTrace {
            trace: AccelTrace { samples: vec![0.0; 5], fs: 420.0 },
            labels: vec![LabeledSpan { start: 0, end: 40, label: () }],
        };
        assert!(st.validate().is_ok());
    }

    #[test]
    fn defects_render_their_coordinates() {
        let d = InputDefect::NonMonotonicTimestamp { window: 3, previous: 64, observed: 8 };
        let msg = d.to_string();
        assert!(msg.contains('3') && msg.contains("64") && msg.contains('8'), "{msg}");
    }

    #[test]
    fn consecutive_failures_count_attempts() {
        let st = session();
        // Rate clamps at 0.95, so a long run still terminates; attempts
        // must count up through a failure burst and reset on success.
        let mut flaky = FlakyReplay::new(st.chunks(4), 1.0, 3);
        let mut max_attempt = 0;
        let mut reads = 0usize;
        loop {
            match flaky.read() {
                Ok(Some(_)) => reads += 1,
                Ok(None) => break,
                Err(e) => max_attempt = max_attempt.max(e.attempt),
            }
        }
        assert_eq!(reads, st.chunks(4).count());
        assert!(max_attempt >= 2, "bursts of consecutive dropouts occur");
    }
}
