//! Chunked replay of recorded sessions — the sample feed for online
//! inference.
//!
//! A live attacker does not get a whole campaign at once: the sensor HAL
//! hands the zero-permission app small batches of accelerometer samples,
//! and reads occasionally fail transiently (binder hiccups, listener
//! re-registration after a foreground change). [`ChunkedReplay`] turns a
//! recorded [`SessionTrace`] into exactly that shape — fixed-size chunks in
//! playback order, tagged with their labeled window — and [`FlakyReplay`]
//! layers seeded transient read failures on top with *at-least-once*
//! delivery: a failed read retains its chunk, so a retried call returns the
//! same samples and the replayed stream loses nothing.

use crate::session::SessionTrace;

/// A fixed-size batch of samples from one labeled window of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayChunk<L> {
    /// Index of the labeled window (= clip playback) this chunk belongs to.
    pub window: usize,
    /// Offset of the first sample within its window, samples.
    pub offset: usize,
    /// The samples: `chunk_len` of them, fewer at a window's tail.
    pub samples: Vec<f64>,
    /// The window's playback-time label.
    pub label: L,
    /// Whether this is the final chunk of its window.
    pub last_in_window: bool,
}

/// Cuts a [`SessionTrace`] into per-window fixed-size chunks, in playback
/// order.
///
/// Every labeled window appears, in order, as one or more chunks whose
/// concatenated samples equal [`SessionTrace::window`] exactly; the last
/// chunk of each window is flagged. A window emptied by fault injection
/// still yields one empty flagged chunk, so downstream consumers see every
/// window index exactly once — the property that keeps streaming output
/// aligned with the batch pipeline's per-window iteration.
#[derive(Debug, Clone)]
pub struct ChunkedReplay<'a, L> {
    session: &'a SessionTrace<L>,
    chunk_len: usize,
    window: usize,
    offset: usize,
}

impl<L: Clone> SessionTrace<L> {
    /// Replays this session as fixed-size chunks of at most `chunk_len`
    /// samples (clamped to at least 1).
    pub fn chunks(&self, chunk_len: usize) -> ChunkedReplay<'_, L> {
        ChunkedReplay { session: self, chunk_len: chunk_len.max(1), window: 0, offset: 0 }
    }
}

impl<L: Clone> Iterator for ChunkedReplay<'_, L> {
    type Item = ReplayChunk<L>;

    fn next(&mut self) -> Option<ReplayChunk<L>> {
        let span = self.session.labels.get(self.window)?;
        let window = self.session.window(self.window);
        let start = self.offset;
        let end = (start + self.chunk_len).min(window.len());
        let last_in_window = end == window.len();
        let chunk = ReplayChunk {
            window: self.window,
            offset: start,
            samples: window[start..end].to_vec(),
            label: span.label.clone(),
            last_in_window,
        };
        if last_in_window {
            self.window += 1;
            self.offset = 0;
        } else {
            self.offset = end;
        }
        Some(chunk)
    }
}

/// A transient sensor-read failure. The read can simply be retried: the
/// source retained the chunk and will deliver it on the next successful
/// call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceDropout {
    /// How many consecutive reads have failed at this stream position
    /// (1 on the first failure).
    pub attempt: u32,
}

impl core::fmt::Display for SourceDropout {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "transient sensor read failure (attempt {})", self.attempt)
    }
}

impl std::error::Error for SourceDropout {}

/// A [`ChunkedReplay`] whose reads transiently fail with a seeded
/// probability — the HAL-flakiness counterpart to the channel-level
/// [`FaultProfile`](crate::FaultProfile).
///
/// Failures are *transient and lossless*: a failing [`FlakyReplay::read`]
/// keeps the chunk it would have delivered, and the retried read returns
/// exactly that chunk. Draining the source therefore yields the same chunk
/// sequence as the clean replay regardless of where failures land, and the
/// failure pattern is a pure function of `seed` (one `splitmix64` draw per
/// read attempt), so every run is reproducible.
#[derive(Debug, Clone)]
pub struct FlakyReplay<'a, L> {
    inner: ChunkedReplay<'a, L>,
    fail_rate: f64,
    seed: u64,
    draws: u64,
    pending: Option<ReplayChunk<L>>,
    attempt: u32,
}

impl<'a, L: Clone> FlakyReplay<'a, L> {
    /// Wraps `inner` so each read fails with probability `fail_rate`
    /// (clamped to `[0, 0.95]` — a source that never succeeds would make
    /// liveness unfalsifiable), deterministically in `seed`.
    pub fn new(inner: ChunkedReplay<'a, L>, fail_rate: f64, seed: u64) -> Self {
        FlakyReplay {
            inner,
            fail_rate: fail_rate.clamp(0.0, 0.95),
            seed,
            draws: 0,
            pending: None,
            attempt: 0,
        }
    }

    /// Reads the next chunk: `Ok(None)` at end of stream, or a retryable
    /// [`SourceDropout`].
    ///
    /// # Errors
    ///
    /// Fails transiently with probability `fail_rate` per call; the chunk
    /// is retained and returned by the next successful call.
    pub fn read(&mut self) -> Result<Option<ReplayChunk<L>>, SourceDropout> {
        if self.pending.is_none() {
            self.pending = self.inner.next();
            if self.pending.is_none() {
                // End of stream is delivered reliably: a dropout here
                // would be indistinguishable from a wedged source.
                return Ok(None);
            }
        }
        let mut stream = emoleak_exec::derive_seed(self.seed, self.draws);
        let roll = emoleak_exec::splitmix64(&mut stream);
        self.draws += 1;
        // 53-bit mantissa → uniform in [0, 1).
        let uniform = (roll >> 11) as f64 / (1u64 << 53) as f64;
        if uniform < self.fail_rate {
            self.attempt += 1;
            return Err(SourceDropout { attempt: self.attempt });
        }
        self.attempt = 0;
        Ok(self.pending.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AccelTrace;
    use crate::session::LabeledSpan;

    fn session() -> SessionTrace<&'static str> {
        let samples: Vec<f64> = (0..25).map(f64::from).collect();
        SessionTrace {
            trace: AccelTrace { samples, fs: 420.0 },
            labels: vec![
                LabeledSpan { start: 0, end: 10, label: "anger" },
                LabeledSpan { start: 10, end: 10, label: "empty" },
                LabeledSpan { start: 10, end: 25, label: "sad" },
                LabeledSpan { start: 30, end: 40, label: "gone" }, // clamped away
            ],
        }
    }

    #[test]
    fn chunks_reassemble_every_window_in_order() {
        let st = session();
        let chunks: Vec<_> = st.chunks(4).collect();
        // Window 0: 10 samples → 3 chunks; window 1: empty → 1 chunk;
        // window 2: 15 samples → 4 chunks; window 3: clamped empty → 1.
        assert_eq!(chunks.len(), 3 + 1 + 4 + 1);
        for w in 0..st.labels.len() {
            let of_w: Vec<_> = chunks.iter().filter(|c| c.window == w).collect();
            let rebuilt: Vec<f64> =
                of_w.iter().flat_map(|c| c.samples.iter().copied()).collect();
            assert_eq!(rebuilt, st.window(w), "window {w}");
            let (last, rest) = of_w.split_last().unwrap();
            assert!(last.last_in_window);
            assert!(rest.iter().all(|c| !c.last_in_window));
            assert!(of_w.iter().all(|c| c.label == st.labels[w].label));
        }
        // Offsets advance within a window.
        assert_eq!(
            chunks.iter().filter(|c| c.window == 0).map(|c| c.offset).collect::<Vec<_>>(),
            vec![0, 4, 8]
        );
    }

    #[test]
    fn zero_chunk_len_is_clamped_not_an_infinite_loop() {
        let st = session();
        let n = st.chunks(0).take(1000).count();
        assert!(n < 1000, "chunking must terminate");
    }

    #[test]
    fn flaky_replay_is_lossless_and_deterministic() {
        let st = session();
        let clean: Vec<_> = st.chunks(4).collect();
        let drain = |seed: u64| {
            let mut flaky = FlakyReplay::new(st.chunks(4), 0.5, seed);
            let mut out = Vec::new();
            let mut dropouts = 0u32;
            loop {
                match flaky.read() {
                    Ok(Some(c)) => out.push(c),
                    Ok(None) => break,
                    Err(e) => {
                        assert!(e.attempt >= 1);
                        dropouts += 1;
                        assert!(dropouts < 10_000, "no livelock");
                    }
                }
            }
            (out, dropouts)
        };
        let (a, drops_a) = drain(0xF1);
        assert_eq!(a, clean, "retries must not lose or duplicate chunks");
        assert!(drops_a > 0, "rate 0.5 over {} reads must fail sometimes", clean.len());
        let (b, drops_b) = drain(0xF1);
        assert_eq!(a, b);
        assert_eq!(drops_a, drops_b, "failure pattern is seed-deterministic");
    }

    #[test]
    fn fail_rate_zero_matches_plain_iteration() {
        let st = session();
        let mut flaky = FlakyReplay::new(st.chunks(7), 0.0, 9);
        let mut out = Vec::new();
        while let Some(c) = flaky.read().expect("rate 0 never fails") {
            out.push(c);
        }
        assert_eq!(out, st.chunks(7).collect::<Vec<_>>());
    }

    #[test]
    fn consecutive_failures_count_attempts() {
        let st = session();
        // Rate clamps at 0.95, so a long run still terminates; attempts
        // must count up through a failure burst and reset on success.
        let mut flaky = FlakyReplay::new(st.chunks(4), 1.0, 3);
        let mut max_attempt = 0;
        let mut reads = 0usize;
        loop {
            match flaky.read() {
                Ok(Some(_)) => reads += 1,
                Ok(None) => break,
                Err(e) => max_attempt = max_attempt.max(e.attempt),
            }
        }
        assert_eq!(reads, st.chunks(4).count());
        assert!(max_attempt >= 2, "bursts of consecutive dropouts occur");
    }
}
