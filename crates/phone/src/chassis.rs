//! Chassis conduction: how speaker force becomes accelerometer-visible
//! vibration.
//!
//! The motherboard shared by speaker and IMU (§II-C) conducts three things
//! into the ≤ 250 Hz band the accelerometer can see:
//!
//! 1. **Direct path** — spectral components of the drive force that already
//!    lie inside the band (the speech fundamental and low harmonics,
//!    attenuated by the speaker rolloff but not eliminated).
//! 2. **Envelope down-conversion** — the structure responds to the *power*
//!    of the wide-band excitation: mechanically a rectifying nonlinearity.
//!    Full-wave rectification followed by a low-pass recreates the speech
//!    energy envelope (syllable rhythm, attack shape, vocal effort) and
//!    regenerates F0 harmonics from the glottal pulse train.
//! 3. **Resonant modes** — each phone chassis rings at a few structural
//!    modes (100–250 Hz), emphasizing device-specific bands.

use emoleak_dsp::filter::{Biquad, ButterworthDesign, FilterKind};
use serde::{Deserialize, Serialize};

/// One structural resonance of the chassis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResonantMode {
    /// Mode frequency in Hz.
    pub freq_hz: f64,
    /// Mode bandwidth in Hz (wider = more damped).
    pub bandwidth_hz: f64,
    /// Relative contribution of this mode.
    pub gain: f64,
}

impl ResonantMode {
    /// Realizes the mode as a DC-unit-gain two-pole resonator at `fs`.
    fn biquad(&self, fs: f64) -> Biquad {
        let r = (-std::f64::consts::PI * self.bandwidth_hz / fs).exp();
        let theta = 2.0 * std::f64::consts::PI * self.freq_hz / fs;
        let a = [-2.0 * r * theta.cos(), r * r];
        let b0 = 1.0 + a[0] + a[1];
        Biquad::new([b0, 0.0, 0.0], a)
    }
}

/// The conduction model: direct + envelope-down-conversion + modal ringing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChassisModel {
    modes: Vec<ResonantMode>,
    direct_coupling: f64,
    envelope_coupling: f64,
    /// Upper edge of the conduction band in Hz.
    band_hz: f64,
}

impl ChassisModel {
    /// Creates a model with the given modes and coupling coefficients.
    pub fn new(modes: Vec<ResonantMode>, direct_coupling: f64, envelope_coupling: f64) -> Self {
        ChassisModel { modes, direct_coupling, envelope_coupling, band_hz: 260.0 }
    }

    /// The structural modes of this chassis.
    pub fn modes(&self) -> &[ResonantMode] {
        &self.modes
    }

    /// Converts the speaker drive force (audio rate) into chassis vibration
    /// at the same rate. The output is later sampled by the accelerometer.
    pub fn conduct(&self, drive: &[f64], fs: f64) -> Vec<f64> {
        if drive.is_empty() {
            return Vec::new();
        }
        let band = ButterworthDesign::new(FilterKind::LowPass, 4, self.band_hz.min(0.45 * fs), fs)
            .expect("band edge below Nyquist")
            .build();
        // Direct linear path.
        let direct = band.process(drive);
        // Nonlinear envelope path: full-wave rectification → band-limit.
        let rectified: Vec<f64> = drive.iter().map(|v| v.abs()).collect();
        let envelope = band.process(&rectified);
        // Mix.
        let mut mix: Vec<f64> = direct
            .iter()
            .zip(&envelope)
            .map(|(d, e)| self.direct_coupling * d + self.envelope_coupling * e)
            .collect();
        // Modal ringing driven by the mixed excitation.
        for mode in &self.modes {
            let rung = mode.biquad(fs).process(&mix);
            for (m, r) in mix.iter_mut().zip(&rung) {
                *m += mode.gain * 0.5 * r;
            }
        }
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_dsp::Fft;

    fn model() -> ChassisModel {
        ChassisModel::new(
            vec![ResonantMode { freq_hz: 150.0, bandwidth_hz: 50.0, gain: 1.0 }],
            0.9,
            0.8,
        )
    }

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(model().conduct(&[], 8000.0).is_empty());
    }

    #[test]
    fn high_frequency_tone_downconverts_to_envelope() {
        // A pure 1 kHz tone is outside the accel band; its rectified envelope
        // has a DC component plus 2 kHz harmonics (also filtered out), so the
        // conduction output is essentially a DC shift: nonzero mean.
        let fs = 8000.0;
        let out = model().conduct(&tone(1000.0, fs, 16000), fs);
        let mean = out[8000..].iter().sum::<f64>() / 8000.0;
        assert!(mean > 0.3, "envelope DC {mean}");
    }

    #[test]
    fn amplitude_modulation_survives_downconversion() {
        // 1 kHz carrier AM-modulated at 8 Hz: the 8 Hz envelope must appear
        // in the output even though the carrier is out of band.
        let fs = 8000.0;
        let n = 32768;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let am = 0.5 * (1.0 + (2.0 * std::f64::consts::PI * 8.0 * t).sin());
                am * (2.0 * std::f64::consts::PI * 1000.0 * t).sin()
            })
            .collect();
        let out = model().conduct(&x, fs);
        let fft = Fft::new(32768);
        let p = fft.power_spectrum(&out);
        let bin = |f: f64| (f / fs * 32768.0).round() as usize;
        let at8 = p[bin(8.0) - 2..bin(8.0) + 3].iter().cloned().fold(0.0f64, f64::max);
        let at29 = p[bin(29.0) - 2..bin(29.0) + 3].iter().cloned().fold(0.0f64, f64::max);
        assert!(at8 > 30.0 * at29, "AM tone should dominate: {at8} vs {at29}");
    }

    #[test]
    fn in_band_tone_passes_directly() {
        let fs = 8000.0;
        let out = model().conduct(&tone(100.0, fs, 16000), fs);
        let rms = (out[8000..].iter().map(|v| v * v).sum::<f64>() / 8000.0).sqrt();
        assert!(rms > 0.4, "direct path rms {rms}");
    }

    #[test]
    fn out_of_band_carrier_is_suppressed() {
        let fs = 8000.0;
        let out = model().conduct(&tone(1000.0, fs, 16384), fs);
        let fft = Fft::new(16384);
        let p = fft.power_spectrum(&out);
        let bin = |f: f64| (f / fs * 16384.0).round() as usize;
        // Carrier residue at 1 kHz far below DC/envelope component.
        assert!(p[bin(1000.0)] < 1e-3 * p[0]);
    }

    #[test]
    fn resonant_mode_amplifies_its_band() {
        let fs = 8000.0;
        let with_mode = model();
        let without_mode = ChassisModel::new(vec![], 0.9, 0.8);
        let x = tone(150.0, fs, 16000);
        let rms = |y: &[f64]| (y[8000..].iter().map(|v| v * v).sum::<f64>() / 8000.0).sqrt();
        let a = rms(&with_mode.conduct(&x, fs));
        let b = rms(&without_mode.conduct(&x, fs));
        assert!(a > 1.3 * b, "mode should amplify 150 Hz: {a} vs {b}");
    }

    #[test]
    fn stronger_coupling_gives_stronger_output() {
        let fs = 8000.0;
        let weak = ChassisModel::new(vec![], 0.5, 0.4);
        let strong = ChassisModel::new(vec![], 0.9, 0.8);
        let x = tone(120.0, fs, 8000);
        let energy = |y: &[f64]| y.iter().map(|v| v * v).sum::<f64>();
        assert!(energy(&strong.conduct(&x, fs)) > energy(&weak.conduct(&x, fs)));
    }
}
