//! Sensor fault injection: the gap between an ideal recording campaign and
//! a real zero-permission capture.
//!
//! The base channel model delivers a perfectly regular, gap-free trace.
//! Real accelerometer logs collected by a background app are nothing like
//! that: the EarSpy measurements (Mahdad et al., 2022) and Android's sensor
//! HAL documentation both show
//!
//! - **dropped and duplicated events** when the handler thread falls behind,
//! - **timestamp jitter / irregular sampling** — hardware timestamps wobble
//!   around the nominal period and whole batches arrive bunched,
//! - **saturation** — cheap IMUs clip at ±2 g / ±4 g full scale, and walking
//!   impacts regularly hit that rail,
//! - **user-motion interference bursts** — step impacts and hand-tremor
//!   transients superimposed on the speech-induced vibration,
//! - **OS suspensions and throttling** — doze/batching blackouts and thermal
//!   sensor-rate downshifts ([`crate::android`]).
//!
//! [`FaultProfile`] composes all of these into one severity-scalable
//! description. [`FaultProfile::apply`] turns a clean [`AccelTrace`] into a
//! timestamped [`TimedTrace`] plus a [`FaultLog`] accounting for every
//! injected fault, and [`TimedTrace::regularize`] performs the gap-aware
//! resampling that the downstream feature pipeline consumes.

use crate::accel::AccelTrace;
use crate::android::{BatchingSpec, ThermalThrottle};
use emoleak_dsp::noise::Gaussian;
use emoleak_dsp::resample::resample_irregular;
use emoleak_dsp::DspError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An irregularly sampled accelerometer trace: what the recording app's
/// `onSensorChanged` handler actually logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedTrace {
    /// Sampled acceleration in m/s².
    pub samples: Vec<f64>,
    /// Per-sample hardware timestamps in seconds, non-decreasing.
    pub timestamps_s: Vec<f64>,
    /// The nominal (requested) sampling rate in Hz.
    pub nominal_fs: f64,
}

impl TimedTrace {
    /// Wraps a clean, regular trace with its implied timestamps.
    pub fn from_regular(trace: &AccelTrace) -> Self {
        let dt = 1.0 / trace.fs;
        TimedTrace {
            timestamps_s: (0..trace.samples.len()).map(|i| i as f64 * dt).collect(),
            samples: trace.samples.clone(),
            nominal_fs: trace.fs,
        }
    }

    /// Trace duration in seconds (0 for fewer than 2 samples).
    pub fn duration(&self) -> f64 {
        match (self.timestamps_s.first(), self.timestamps_s.last()) {
            (Some(&a), Some(&b)) => b - a,
            _ => 0.0,
        }
    }

    /// Gap-aware regularization back onto the uniform nominal-rate grid
    /// (linear interpolation; stretches longer than `max_gap_s` are filled
    /// with the rest level 0 instead of being interpolated across).
    ///
    /// This is the degradation-tolerant entry point for the feature
    /// pipeline: every downstream stage keeps consuming a regular
    /// [`AccelTrace`] no matter how mangled the delivery was.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for a trace with no samples.
    pub fn regularize(&self, max_gap_s: f64) -> Result<AccelTrace, DspError> {
        let samples = resample_irregular(
            &self.timestamps_s,
            &self.samples,
            self.nominal_fs,
            max_gap_s,
        )?;
        Ok(AccelTrace { samples, fs: self.nominal_fs })
    }
}

/// Per-trace accounting of every fault that was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultLog {
    /// Samples dropped by the delivery path (incl. doze/batching blackouts).
    pub dropped: usize,
    /// Samples delivered twice.
    pub duplicated: usize,
    /// Samples clamped at the sensor's full-scale range.
    pub clipped: usize,
    /// Motion-interference bursts superimposed on the trace.
    pub bursts: usize,
    /// Doze/batching suspensions (each may drop many samples).
    pub suspensions: usize,
    /// Samples removed by thermal rate throttling.
    pub throttled: usize,
}

impl FaultLog {
    /// Whether no fault of any kind was injected.
    pub fn is_clean(&self) -> bool {
        *self == FaultLog::default()
    }

    /// Accumulates another log into this one (per-campaign totals).
    pub fn absorb(&mut self, other: &FaultLog) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.clipped += other.clipped;
        self.bursts += other.bursts;
        self.suspensions += other.suspensions;
        self.throttled += other.throttled;
    }

    /// Total number of fault events of all kinds.
    pub fn total(&self) -> usize {
        self.dropped + self.duplicated + self.clipped + self.bursts + self.suspensions
            + self.throttled
    }
}

impl core::fmt::Display for FaultLog {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "dropped {} dup {} clipped {} bursts {} suspensions {} throttled {}",
            self.dropped, self.duplicated, self.clipped, self.bursts, self.suspensions,
            self.throttled
        )
    }
}

/// A composable description of channel imperfections, applied to a clean
/// trace by [`FaultProfile::apply`]. All rates scale linearly under
/// [`FaultProfile::with_severity`]; severity 0 is the exact no-op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Per-sample probability that a delivered event is lost.
    pub drop_rate: f64,
    /// Per-sample probability that an event is delivered twice.
    pub dup_rate: f64,
    /// Standard deviation of hardware-timestamp jitter, seconds.
    pub jitter_std_s: f64,
    /// Sensor full-scale range in m/s² (`None` = never clips). Samples
    /// beyond ±full_scale are clamped to the rail.
    pub full_scale: Option<f64>,
    /// Expected motion-interference bursts per second of trace.
    pub burst_rate_hz: f64,
    /// Peak amplitude of a motion burst, m/s².
    pub burst_amp: f64,
    /// Decay time of a burst envelope, seconds.
    pub burst_duration_s: f64,
    /// Android batching/doze suspensions (`None` = always-on delivery).
    pub batching: Option<BatchingSpec>,
    /// Thermal rate throttling (`ThermalThrottle::off()` = none).
    pub throttle: ThermalThrottle,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::clean()
    }
}

impl FaultProfile {
    /// The identity profile: applying it returns the input unchanged
    /// (byte-identical samples, uniform timestamps, clean log).
    pub fn clean() -> Self {
        FaultProfile {
            drop_rate: 0.0,
            dup_rate: 0.0,
            jitter_std_s: 0.0,
            full_scale: None,
            burst_rate_hz: 0.0,
            burst_amp: 0.0,
            burst_duration_s: 0.08,
            batching: None,
            throttle: ThermalThrottle::off(),
        }
    }

    /// Preset: phone held by a walking user. Step-impact bursts dominate,
    /// with the delivery-path drops and timestamp wobble of a busy
    /// foreground device.
    pub fn handheld_walking() -> Self {
        FaultProfile {
            drop_rate: 0.01,
            dup_rate: 0.004,
            jitter_std_s: 0.4e-3,
            full_scale: Some(4.0 * 9.81),
            burst_rate_hz: 1.8, // ~2 steps/s
            burst_amp: 0.12,
            burst_duration_s: 0.12,
            batching: None,
            throttle: ThermalThrottle::off(),
        }
    }

    /// Preset: recording app demoted to the background — doze blackouts and
    /// batch delivery, plus mild thermal throttling on long campaigns.
    pub fn background_doze() -> Self {
        FaultProfile {
            drop_rate: 0.002,
            dup_rate: 0.001,
            jitter_std_s: 0.8e-3,
            full_scale: None,
            burst_rate_hz: 0.0,
            burst_amp: 0.0,
            burst_duration_s: 0.08,
            batching: Some(BatchingSpec::doze_default()),
            throttle: ThermalThrottle { onset_s: 60.0, rate_factor: 0.75 },
        }
    }

    /// Preset: a low-grade IMU — tight ±2 g full scale (speech-band signal
    /// plus motion rides close to the rail) and sloppy timestamps.
    pub fn cheap_imu() -> Self {
        FaultProfile {
            drop_rate: 0.005,
            dup_rate: 0.01,
            jitter_std_s: 1.2e-3,
            full_scale: Some(2.0 * 9.81),
            burst_rate_hz: 0.3,
            burst_amp: 0.25,
            burst_duration_s: 0.10,
            batching: None,
            throttle: ThermalThrottle::off(),
        }
    }

    /// Scales every fault intensity by `severity` (clamped at 0). Severity 0
    /// yields a profile whose application is a byte-identical no-op;
    /// severity 1 returns the profile unchanged; values above 1 exaggerate.
    ///
    /// Saturation tightens with severity: the full-scale range shrinks as
    /// `full_scale / severity`, vanishing (no clipping) at severity 0.
    #[must_use]
    pub fn with_severity(mut self, severity: f64) -> Self {
        let s = severity.max(0.0);
        self.drop_rate = (self.drop_rate * s).min(0.95);
        self.dup_rate = (self.dup_rate * s).min(0.95);
        self.jitter_std_s *= s;
        self.burst_rate_hz *= s;
        self.burst_amp *= s;
        self.full_scale = if s > 0.0 {
            self.full_scale.map(|fsr| fsr / s)
        } else {
            None
        };
        self.batching = if s > 0.0 {
            self.batching.map(|b| b.scaled(s))
        } else {
            None
        };
        self.throttle = self.throttle.scaled(s);
        self
    }

    /// Whether applying this profile is guaranteed to change nothing.
    pub fn is_noop(&self) -> bool {
        self.drop_rate == 0.0
            && self.dup_rate == 0.0
            && self.jitter_std_s == 0.0
            && self.full_scale.is_none()
            && (self.burst_rate_hz == 0.0 || self.burst_amp == 0.0)
            && self.batching.is_none()
            && self.throttle.is_off()
    }

    /// Injects every configured fault into `trace`, returning the resulting
    /// irregular, timestamped trace and the fault accounting.
    ///
    /// The injection order mirrors the physical chain: motion interference
    /// is added to the continuous signal, the sensor front-end clips at full
    /// scale, the delivery path drops/duplicates/jitters events, and the OS
    /// layer (doze blackouts, thermal throttling) discards whole stretches.
    pub fn apply<R: Rng + ?Sized>(&self, trace: &AccelTrace, rng: &mut R) -> (TimedTrace, FaultLog) {
        let mut log = FaultLog::default();
        let mut timed = TimedTrace::from_regular(trace);
        if self.is_noop() || trace.samples.is_empty() {
            return (timed, log);
        }

        // 1. Motion-interference bursts on the continuous signal.
        if self.burst_rate_hz > 0.0 && self.burst_amp > 0.0 {
            log.bursts = add_motion_bursts(
                &mut timed.samples,
                trace.fs,
                self.burst_rate_hz,
                self.burst_amp,
                self.burst_duration_s,
                rng,
            );
        }

        // 2. Sensor front-end saturation.
        if let Some(fsr) = self.full_scale {
            let fsr = fsr.abs();
            for v in timed.samples.iter_mut() {
                if v.abs() > fsr {
                    *v = v.clamp(-fsr, fsr);
                    log.clipped += 1;
                }
            }
        }

        // 3. Delivery path: drops and duplicates.
        if self.drop_rate > 0.0 || self.dup_rate > 0.0 {
            let mut samples = Vec::with_capacity(timed.samples.len());
            let mut stamps = Vec::with_capacity(timed.samples.len());
            for (&v, &t) in timed.samples.iter().zip(&timed.timestamps_s) {
                if self.drop_rate > 0.0 && rng.gen::<f64>() < self.drop_rate {
                    log.dropped += 1;
                    continue;
                }
                samples.push(v);
                stamps.push(t);
                if self.dup_rate > 0.0 && rng.gen::<f64>() < self.dup_rate {
                    // A duplicate is re-delivered immediately with an
                    // epsilon-later timestamp, as batched HAL queues do.
                    samples.push(v);
                    stamps.push(t + 1e-6);
                    log.duplicated += 1;
                }
            }
            timed.samples = samples;
            timed.timestamps_s = stamps;
        }

        // 4. Hardware-timestamp jitter (monotonicity restored afterwards).
        if self.jitter_std_s > 0.0 {
            let mut gauss = Gaussian::new();
            for t in timed.timestamps_s.iter_mut() {
                *t += gauss.sample(rng, 0.0, self.jitter_std_s);
            }
            let mut prev = f64::NEG_INFINITY;
            for t in timed.timestamps_s.iter_mut() {
                if *t < prev {
                    *t = prev;
                } else {
                    prev = *t;
                }
            }
        }

        // 5. OS layer: doze/batching blackouts, then thermal throttling.
        if let Some(batching) = &self.batching {
            let (suspensions, dropped) = batching.apply(&mut timed, rng);
            log.suspensions = suspensions;
            log.dropped += dropped;
        }
        log.throttled = self.throttle.apply(&mut timed);

        (timed, log)
    }
}

/// Superimposes decaying-oscillation motion transients (step impacts, hand
/// knocks) at Poisson-distributed instants. Returns the number of bursts.
fn add_motion_bursts<R: Rng + ?Sized>(
    samples: &mut [f64],
    fs: f64,
    rate_hz: f64,
    amp: f64,
    duration_s: f64,
    rng: &mut R,
) -> usize {
    let duration = samples.len() as f64 / fs;
    let expected = rate_hz * duration;
    // Poisson draw via thinned Bernoulli trials: exact enough for a
    // simulation, deterministic per rng stream.
    let trials = (expected.ceil() as usize) * 4 + 4;
    let p = (expected / trials as f64).min(1.0);
    let mut count = 0usize;
    for _ in 0..trials {
        if rng.gen::<f64>() >= p {
            continue;
        }
        count += 1;
        let start = rng.gen_range(0.0..duration.max(f64::MIN_POSITIVE));
        let start_idx = (start * fs) as usize;
        // A step impact: sharp attack, ~duration_s exponential decay, with a
        // low-frequency carrier (2–9 Hz: gait harmonics and tremor band).
        let carrier_hz: f64 = rng.gen_range(2.0..9.0);
        let peak: f64 = amp * rng.gen_range(0.6..1.4);
        let phase: f64 = rng.gen_range(0.0..core::f64::consts::TAU);
        let tail = ((duration_s * 4.0) * fs) as usize;
        for k in 0..tail {
            let Some(v) = samples.get_mut(start_idx + k) else { break };
            let t = k as f64 / fs;
            let envelope = (-t / duration_s.max(1e-6)).exp();
            *v += peak * envelope * (core::f64::consts::TAU * carrier_hz * t + phase).cos();
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn tone_trace(n: usize, fs: f64) -> AccelTrace {
        AccelTrace {
            samples: (0..n).map(|i| 0.05 * (i as f64 * 0.3).sin()).collect(),
            fs,
        }
    }

    #[test]
    fn clean_profile_is_identity() {
        let trace = tone_trace(1000, 420.0);
        let (timed, log) = FaultProfile::clean().apply(&trace, &mut rng(1));
        assert!(log.is_clean());
        assert_eq!(timed.samples, trace.samples);
        assert_eq!(timed.nominal_fs, trace.fs);
        // Uniform implied timestamps.
        let dt = timed.timestamps_s[1] - timed.timestamps_s[0];
        assert!((dt - 1.0 / 420.0).abs() < 1e-12);
    }

    #[test]
    fn zero_severity_is_identity_for_any_preset() {
        let trace = tone_trace(800, 420.0);
        for preset in [
            FaultProfile::handheld_walking(),
            FaultProfile::background_doze(),
            FaultProfile::cheap_imu(),
        ] {
            let p = preset.with_severity(0.0);
            assert!(p.is_noop());
            let (timed, log) = p.apply(&trace, &mut rng(2));
            assert!(log.is_clean());
            assert_eq!(timed.samples, trace.samples);
        }
    }

    #[test]
    fn drops_shorten_and_dups_lengthen() {
        let trace = tone_trace(10_000, 420.0);
        let drop = FaultProfile { drop_rate: 0.2, ..FaultProfile::clean() };
        let (timed, log) = drop.apply(&trace, &mut rng(3));
        assert!(log.dropped > 1000, "dropped {}", log.dropped);
        assert_eq!(timed.samples.len(), trace.samples.len() - log.dropped);

        let dup = FaultProfile { dup_rate: 0.2, ..FaultProfile::clean() };
        let (timed, log) = dup.apply(&trace, &mut rng(4));
        assert!(log.duplicated > 1000);
        assert_eq!(timed.samples.len(), trace.samples.len() + log.duplicated);
    }

    #[test]
    fn saturation_clamps_at_full_scale() {
        let mut trace = tone_trace(2000, 420.0);
        for v in trace.samples.iter_mut() {
            *v *= 100.0; // drive well past the rail
        }
        let p = FaultProfile { full_scale: Some(2.0), ..FaultProfile::clean() };
        let (timed, log) = p.apply(&trace, &mut rng(5));
        assert!(log.clipped > 0);
        assert!(timed.samples.iter().all(|v| v.abs() <= 2.0 + 1e-12));
    }

    #[test]
    fn jitter_keeps_timestamps_monotone() {
        let trace = tone_trace(5000, 420.0);
        let p = FaultProfile { jitter_std_s: 5e-3, ..FaultProfile::clean() };
        let (timed, _) = p.apply(&trace, &mut rng(6));
        for w in timed.timestamps_s.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn bursts_add_energy() {
        let trace = AccelTrace { samples: vec![0.0; 42_000], fs: 420.0 };
        let p = FaultProfile {
            burst_rate_hz: 2.0,
            burst_amp: 0.3,
            burst_duration_s: 0.1,
            ..FaultProfile::clean()
        };
        let (timed, log) = p.apply(&trace, &mut rng(7));
        assert!(log.bursts > 100, "bursts {}", log.bursts);
        let energy: f64 = timed.samples.iter().map(|v| v * v).sum();
        assert!(energy > 0.0);
    }

    #[test]
    fn regularize_restores_nominal_grid() {
        let trace = tone_trace(4200, 420.0);
        let p = FaultProfile { drop_rate: 0.05, jitter_std_s: 0.5e-3, ..FaultProfile::clean() };
        let (timed, _) = p.apply(&trace, &mut rng(8));
        let reg = timed.regularize(0.05).unwrap();
        assert_eq!(reg.fs, 420.0);
        // Length close to the original 10 s.
        assert!((reg.samples.len() as f64 - 4200.0).abs() < 30.0, "len {}", reg.samples.len());
        assert!(reg.samples.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn apply_is_deterministic_per_seed() {
        let trace = tone_trace(4000, 420.0);
        let p = FaultProfile::handheld_walking();
        let a = p.apply(&trace, &mut rng(9));
        let b = p.apply(&trace, &mut rng(9));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_survives_every_preset() {
        let empty = AccelTrace { samples: Vec::new(), fs: 420.0 };
        for preset in [
            FaultProfile::clean(),
            FaultProfile::handheld_walking(),
            FaultProfile::background_doze(),
            FaultProfile::cheap_imu(),
        ] {
            let (timed, log) = preset.apply(&empty, &mut rng(10));
            assert!(timed.samples.is_empty());
            assert!(log.is_clean());
        }
    }
}
