//! Property tests for the segment-shipping codec that journal replication
//! rides on: round-trip exactness for arbitrary record batches, graceful
//! prefix decoding under arbitrary truncation and bit flips (typed
//! defects, never a panic), and read-repair convergence — a diverged
//! replica rebuilt from its primary always compares `Identical`.
//!
//! These properties are what let crash failover trust a *clean* segment
//! scan as a complete account of every committed record: any damage the
//! nemesis can inflict must surface as a `Defect` or a typed error, so a
//! silent partial decode (the one outcome that would corrupt the fleet's
//! conservation books) is impossible.

use emoleak_durable::ship::{
    compare_streams, decode_segment, encode_segment, rebuild_journal, StreamDiff,
};
use emoleak_durable::{Defect, DurableError, Journal, Record};
use proptest::prelude::*;

/// Header length of a ship segment: magic (4) + version (2) + count (8).
const HEADER_LEN: usize = 14;

/// Raw generated material for one record; the vendored proptest shim has
/// no `prop_map`, so the narrowing to `u8` happens in the test body.
type RawRecord = (u32, u64, Vec<u32>);

fn raw_batch(
    max: usize,
) -> impl Strategy<Value = Vec<RawRecord>> {
    prop::collection::vec(
        (0u32..256, 0u64..1_000_000, prop::collection::vec(0u32..256, 0..24usize)),
        0..max,
    )
}

fn records_from(raw: &[RawRecord]) -> Vec<Record> {
    raw.iter()
        .map(|(kind, seq, data)| Record {
            kind: (*kind % 256) as u8,
            seq: *seq,
            data: data.iter().map(|b| (*b % 256) as u8).collect(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode → decode is the identity for any record batch, with a clean
    /// defect report.
    #[test]
    fn segment_round_trips_any_batch(raw in raw_batch(12)) {
        let records = records_from(&raw);
        let bytes = encode_segment(&records);
        let (decoded, defects) = decode_segment(&bytes, "<memory>").unwrap();
        prop_assert!(defects.is_empty(), "{:?}", defects);
        prop_assert_eq!(decoded, records);
    }

    /// Truncating a segment anywhere yields a valid *prefix* of the
    /// original records plus a typed defect (or a typed format error when
    /// the cut lands inside the header) — never a panic, never a silently
    /// short decode.
    #[test]
    fn truncation_decodes_to_prefix_with_typed_defect(
        raw in raw_batch(12),
        cut_sel in 0usize..1_000_000,
    ) {
        let records = records_from(&raw);
        let bytes = encode_segment(&records);
        let cut = cut_sel % (bytes.len() + 1); // 0..=len
        match decode_segment(&bytes[..cut], "<memory>") {
            Err(DurableError::Format { .. }) => {
                // Only a header-destroying cut may be a format error.
                prop_assert!(cut < HEADER_LEN, "format error at cut {}", cut);
            }
            Err(e) => prop_assert!(false, "untyped refusal at cut {}: {}", cut, e),
            Ok((decoded, defects)) => {
                prop_assert!(decoded.len() <= records.len());
                prop_assert_eq!(&decoded[..], &records[..decoded.len()]);
                // A short decode must be *announced*: either the scan hit
                // the tear, or the header's count exposed a frame-boundary
                // truncation.
                if decoded.len() < records.len() {
                    prop_assert!(
                        defects.iter().any(|d| matches!(
                            d,
                            Defect::TornTail { .. } | Defect::CorruptRecord { .. }
                        )),
                        "silent short decode at cut {}: {:?}", cut, defects
                    );
                }
            }
        }
    }

    /// Flipping any single bit yields a valid prefix plus a typed defect
    /// or a typed error — never a panic, never a silent wrong decode. The
    /// decoded records, when they verify, are still a prefix of the true
    /// stream (CRC-32 catches every single-bit flip inside a frame).
    #[test]
    fn bit_flip_is_detected_or_harmless(
        raw in raw_batch(12),
        pos_sel in 0usize..1_000_000,
        bit in 0u32..8,
    ) {
        let records = records_from(&raw);
        let mut bytes = encode_segment(&records);
        let pos = pos_sel % bytes.len(); // header guarantees len >= 14
        bytes[pos] ^= 1 << bit;
        match decode_segment(&bytes, "<memory>") {
            // Magic / version damage: a typed refusal is the right answer.
            Err(DurableError::Format { .. } | DurableError::Version { .. }) => {
                prop_assert!(pos < 6, "header error from a body flip at {}", pos);
            }
            Err(e) => prop_assert!(false, "untyped refusal for flip at {}: {}", pos, e),
            Ok((decoded, defects)) => {
                prop_assert!(decoded.len() <= records.len());
                prop_assert_eq!(&decoded[..], &records[..decoded.len()]);
                if decoded.len() < records.len() {
                    prop_assert!(
                        !defects.is_empty(),
                        "silent short decode after flip at {}", pos
                    );
                }
            }
        }
    }

    /// `compare_streams` classifies exactly — identical iff equal, lag iff
    /// strict prefix, diverged otherwise — and read-repair by rebuild
    /// always converges to `Identical`, even from a tampered replica.
    #[test]
    fn divergence_is_classified_and_repair_converges(
        raw in raw_batch(10),
        keep_sel in 0usize..1_000_000,
        tamper_sel in 0usize..1_000_000,
        tamper_flag in 0u32..2,
    ) {
        let mut primary = records_from(&raw);
        if primary.is_empty() {
            // The empty stream only has the identical shape.
            primary.push(Record { kind: 1, seq: 0, data: b"seed".to_vec() });
        }
        // Build a replica: a prefix of the primary, optionally with one
        // record tampered inside the kept range.
        let keep = keep_sel % (primary.len() + 1); // 0..=len
        let mut replica: Vec<Record> = primary[..keep].to_vec();
        let tampered_at = if tamper_flag == 1 && !replica.is_empty() {
            let at = tamper_sel % replica.len();
            replica[at].data.push(0xEE); // longer data: differs for sure
            Some(at as u64)
        } else {
            None
        };
        let expect = match tampered_at {
            Some(at) => StreamDiff::Diverged { at },
            None if keep == primary.len() => StreamDiff::Identical,
            None => StreamDiff::ReplicaLag { missing: (primary.len() - keep) as u64 },
        };
        prop_assert_eq!(compare_streams(&primary, &replica), expect);

        // Read-repair: rebuild from the primary, verify, compare again.
        let dir = std::env::temp_dir()
            .join(format!("emoleak-proptest-ship-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replica.log");
        drop(rebuild_journal(&path, &primary).unwrap());
        let verified = Journal::verify(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let (repaired, defects) = verified;
        prop_assert!(defects.is_empty(), "{:?}", defects);
        prop_assert_eq!(compare_streams(&primary, &repaired), StreamDiff::Identical);
    }
}
