//! Hand-rolled binary codec for durable records.
//!
//! The vendored `serde` stub is a no-op (see the golden-trace tests), so
//! every on-disk structure is encoded by hand through [`Enc`] / [`Dec`]:
//! little-endian fixed-width integers, `f64` as raw IEEE-754 bits (the
//! byte-identity contract forbids any round-trip through decimal), and
//! length-prefixed byte strings. [`crc32`] is the IEEE CRC-32 used by every
//! container to detect torn writes and bit flips.

/// Computes the IEEE CRC-32 (the zlib/PNG polynomial, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// An append-only little-endian encoder.
#[derive(Debug, Default, Clone)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `f64` as its raw bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }
}

/// A decode failure: the buffer does not hold what the reader expected.
/// Callers map this into [`DurableError::Corrupt`](crate::DurableError)
/// with file context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset the decoder stopped at.
    pub offset: u64,
    /// What the decoder expected there.
    pub detail: String,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "decode failed at byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for WireError {}

/// A checked little-endian decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// The current read offset.
    pub fn offset(&self) -> u64 {
        self.pos as u64
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn short(&self, what: &str, need: usize) -> WireError {
        WireError {
            offset: self.offset(),
            detail: format!("{what} needs {need} byte(s), {} left", self.remaining()),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(self.short(what, n));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| WireError {
            offset: self.offset(),
            detail: format!("byte-string length {len} overflows usize"),
        })?;
        if len > self.remaining() {
            return Err(self.short("byte string", len));
        }
        self.take(len, "byte string")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let offset = self.offset();
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError {
            offset,
            detail: "byte string is not valid UTF-8".into(),
        })
    }

    /// Asserts the buffer was fully consumed (trailing garbage is damage).
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError {
                offset: self.offset(),
                detail: format!("{} unexpected trailing byte(s)", self.remaining()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_catches_single_bit_flips() {
        let data = b"write-ahead journal record payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn round_trip_all_types() {
        let mut enc = Enc::new();
        enc.u8(7)
            .u16(0xBEEF)
            .u32(0xDEAD_BEEF)
            .u64(u64::MAX - 1)
            .f64(-0.0)
            .f64(f64::NAN)
            .bytes(b"abc")
            .str("caf\u{e9}");
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u16().unwrap(), 0xBEEF);
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(dec.f64().unwrap().is_nan());
        assert_eq!(dec.bytes().unwrap(), b"abc");
        assert_eq!(dec.str().unwrap(), "caf\u{e9}");
        dec.finish().unwrap();
    }

    #[test]
    fn short_reads_are_typed_errors_not_panics() {
        let mut dec = Dec::new(&[1, 2]);
        let err = dec.u64().unwrap_err();
        assert!(err.detail.contains("u64"), "{err}");
        // A length prefix larger than the buffer must not allocate or panic.
        let mut enc = Enc::new();
        enc.u64(u64::MAX);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert!(dec.bytes().is_err());
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut enc = Enc::new();
        enc.u8(1);
        let mut bytes = enc.into_bytes();
        bytes.push(0xFF);
        let mut dec = Dec::new(&bytes);
        dec.u8().unwrap();
        assert!(dec.finish().is_err());
    }
}
