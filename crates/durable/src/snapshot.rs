//! Checksummed snapshot and manifest containers.
//!
//! Snapshots (`snap-<seq>.bin`) hold a full serialized campaign state;
//! the manifest (`manifest.bin`) names the last snapshot that was written
//! completely. Both use the same self-verifying container:
//!
//! ```text
//! magic (4) | version u16 LE | payload_len u64 LE | crc u32 LE | payload
//! ```
//!
//! Verification order is deliberate: magic first ([`DurableError::Format`] —
//! the file is not ours), then version ([`DurableError::Version`] — written
//! by a future build), and only then length/CRC ([`DurableError::Corrupt`]).
//! A future-versioned file therefore gets the version error even when its
//! body would not checksum under today's rules.
//!
//! Containers are replaced only via [`write_atomic`], so a reader sees
//! either the previous complete container or the new one — but external
//! damage (bit rot, manual truncation) is still caught by the CRC.

use crate::atomic::write_atomic_with;
use crate::error::DurableError;
use crate::vfs::{OsVfs, Vfs};
use crate::wire::crc32;
use std::path::Path;

/// Container header length: magic + version + payload_len + crc.
const CONTAINER_HEADER_LEN: usize = 4 + 2 + 8 + 4;

/// Sanity cap on a container payload, mirroring the journal's record cap.
const MAX_PAYLOAD_LEN: u64 = 256 * 1024 * 1024;

/// Builds a self-verifying container around `payload`. Pure — the proptest
/// corruption suite drives this directly, no filesystem involved.
pub fn encode_container(magic: &[u8; 4], version: u16, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(CONTAINER_HEADER_LEN + payload.len());
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(&version.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// Verifies a container and returns its payload. Pure inverse of
/// [`encode_container`]; `path` is only used to label errors (pass
/// `"<memory>"` for in-memory decodes).
///
/// # Errors
///
/// [`DurableError::Format`] on bad magic, [`DurableError::Version`] when
/// `version` exceeds `supported`, [`DurableError::Corrupt`] on any
/// length/CRC mismatch — truncation, trailing garbage, or flipped bits.
pub fn decode_container(
    magic: &[u8; 4],
    supported: u16,
    bytes: &[u8],
    path: &str,
) -> Result<Vec<u8>, DurableError> {
    let corrupt = |offset: usize, detail: String| DurableError::Corrupt {
        path: path.to_string(),
        offset: offset as u64,
        detail,
    };
    if bytes.len() < 6 {
        return Err(DurableError::Format {
            path: path.to_string(),
            detail: format!("{} byte(s) is too short for a container header", bytes.len()),
        });
    }
    if &bytes[..4] != magic {
        return Err(DurableError::Format {
            path: path.to_string(),
            detail: format!(
                "magic mismatch (expected {:?})",
                String::from_utf8_lossy(magic)
            ),
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version > supported {
        return Err(DurableError::Version {
            path: path.to_string(),
            found: version,
            supported,
        });
    }
    if bytes.len() < CONTAINER_HEADER_LEN {
        return Err(corrupt(bytes.len(), "truncated inside container header".into()));
    }
    let payload_len = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));
    let crc = u32::from_le_bytes(bytes[14..18].try_into().expect("4 bytes"));
    if payload_len > MAX_PAYLOAD_LEN {
        return Err(corrupt(6, format!("implausible payload length {payload_len}")));
    }
    let body = &bytes[CONTAINER_HEADER_LEN..];
    if body.len() as u64 != payload_len {
        return Err(corrupt(
            CONTAINER_HEADER_LEN,
            format!("payload is {} byte(s), header says {payload_len}", body.len()),
        ));
    }
    if crc32(body) != crc {
        return Err(corrupt(CONTAINER_HEADER_LEN, "payload CRC mismatch".into()));
    }
    Ok(body.to_vec())
}

/// Reads and verifies the container file at `path`.
pub fn read_container(
    magic: &[u8; 4],
    supported: u16,
    path: &Path,
) -> Result<Vec<u8>, DurableError> {
    read_container_with(magic, supported, path, &OsVfs)
}

/// [`read_container`] reading through `vfs`.
pub fn read_container_with(
    magic: &[u8; 4],
    supported: u16,
    path: &Path,
    vfs: &dyn Vfs,
) -> Result<Vec<u8>, DurableError> {
    let bytes = vfs.read(path).map_err(|e| DurableError::io(path, "read", &e))?;
    decode_container(magic, supported, &bytes, &path.display().to_string())
}

/// Atomically replaces the container file at `path`.
pub fn write_container(
    magic: &[u8; 4],
    version: u16,
    path: &Path,
    payload: &[u8],
) -> Result<(), DurableError> {
    write_container_with(magic, version, path, payload, &OsVfs)
}

/// [`write_container`] with every durable byte routed through `vfs`.
pub fn write_container_with(
    magic: &[u8; 4],
    version: u16,
    path: &Path,
    payload: &[u8],
    vfs: &dyn Vfs,
) -> Result<(), DurableError> {
    write_atomic_with(path, &encode_container(magic, version, payload), vfs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 4] = b"TSTC";

    #[test]
    fn round_trip() {
        let payload = b"campaign state bytes".to_vec();
        let bytes = encode_container(MAGIC, 1, &payload);
        assert_eq!(decode_container(MAGIC, 1, &bytes, "<memory>").unwrap(), payload);
        // Empty payloads are legal.
        let bytes = encode_container(MAGIC, 1, b"");
        assert_eq!(decode_container(MAGIC, 1, &bytes, "<memory>").unwrap(), b"");
    }

    #[test]
    fn error_precedence_magic_then_version_then_crc() {
        let bytes = encode_container(MAGIC, 1, b"payload");
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            decode_container(MAGIC, 1, &wrong_magic, "<memory>"),
            Err(DurableError::Format { .. })
        ));
        // Future version wins over a CRC that no longer matches.
        let mut future = bytes.clone();
        future[4] = 0xFF;
        future[20] ^= 0x01;
        assert!(matches!(
            decode_container(MAGIC, 1, &future, "<memory>"),
            Err(DurableError::Version { found: 0xFF, supported: 1, .. })
        ));
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x80;
        assert!(matches!(
            decode_container(MAGIC, 1, &flipped, "<memory>"),
            Err(DurableError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = encode_container(MAGIC, 1, b"0123456789");
        for cut in 0..bytes.len() {
            let err = decode_container(MAGIC, 1, &bytes[..cut], "<memory>").unwrap_err();
            assert!(
                matches!(err, DurableError::Format { .. } | DurableError::Corrupt { .. }),
                "cut at {cut}: {err}"
            );
        }
        // Trailing garbage is also a length mismatch, not silently ignored.
        let mut grown = bytes.clone();
        grown.push(0);
        assert!(matches!(
            decode_container(MAGIC, 1, &grown, "<memory>"),
            Err(DurableError::Corrupt { .. })
        ));
    }

    #[test]
    fn file_round_trip_is_atomic() {
        let dir = std::env::temp_dir()
            .join(format!("emoleak-container-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap-0.bin");
        write_container(MAGIC, 1, &path, b"state").unwrap();
        assert_eq!(read_container(MAGIC, 1, &path).unwrap(), b"state");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
