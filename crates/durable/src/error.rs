//! Typed durability errors and recovery defect reports.
//!
//! The durability layer has two distinct failure surfaces:
//!
//! - [`DurableError`] — the *fatal* surface: an operation could not complete
//!   (I/O failed, a file is not ours, a format version is from the future,
//!   an injected crash fired). These propagate to the caller as `Err`.
//! - [`Defect`] — the *recovered* surface: something on disk was damaged
//!   (torn tail, flipped bit, stale manifest) and recovery repaired it by
//!   falling back to the last valid state. Opening a damaged store is `Ok`,
//!   but every repair is reported as a typed defect so chaos harnesses can
//!   assert that nothing was silently papered over.

/// A fatal durability failure. Never a panic, never silently corrupt data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// An OS-level file operation failed.
    Io {
        /// The file or directory involved.
        path: String,
        /// The operation that failed (`open`, `write`, `fsync`, `rename`…).
        op: &'static str,
        /// The OS error message.
        message: String,
    },
    /// The file is not a durability-layer file at all (bad magic).
    Format {
        /// The offending file.
        path: String,
        /// What was wrong with it.
        detail: String,
    },
    /// The file was written by a *newer* format version than this build
    /// supports. Refusing is the only safe move: a future version may have
    /// changed record layout in ways the checksum cannot reveal.
    Version {
        /// The offending file.
        path: String,
        /// The version found in the header.
        found: u16,
        /// The newest version this build understands.
        supported: u16,
    },
    /// Checksummed content failed verification (bit flip, torn write, bad
    /// length) in a context where no older state exists to fall back to.
    Corrupt {
        /// The offending file (`"<memory>"` for in-memory decodes).
        path: String,
        /// Byte offset of the damage.
        offset: u64,
        /// What the verifier saw.
        detail: String,
    },
    /// A seeded crash injection fired (see [`crate::CrashPlan`]). Models a
    /// `SIGKILL` landing at a write syscall boundary: the partial on-disk
    /// effect is left exactly as a killed process would leave it.
    Injected {
        /// The durable-operation counter value the plan armed.
        op: u64,
        /// Which operation was cut short.
        detail: String,
    },
    /// The journal refused an append because an earlier fsync failed. Once
    /// an fsync errors, the kernel may have dropped the dirty pages — the
    /// journal's on-disk tail is unknowable — so the handle latches and
    /// every later append is refused until the file is reopened (which
    /// re-verifies the tail from disk).
    Poisoned {
        /// The journal file whose fsync failed.
        path: String,
        /// The fsync failure that latched the handle.
        cause: String,
    },
    /// The append was refused because the writer's fencing token is stale:
    /// a coordinator has since fenced this writer's incarnation and handed
    /// the journal to a successor. A resurrected stale shard hits this
    /// instead of corrupting the replay — the bytes on disk are untouched.
    Fenced {
        /// The journal file the stale writer tried to append to.
        path: String,
        /// The fencing token the writer holds.
        held: u64,
        /// The minimum token the storage authority currently accepts.
        current: u64,
    },
}

impl core::fmt::Display for DurableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DurableError::Io { path, op, message } => {
                write!(f, "io error: {op} {path}: {message}")
            }
            DurableError::Format { path, detail } => {
                write!(f, "format error: {path}: {detail}")
            }
            DurableError::Version { path, found, supported } => write!(
                f,
                "version error: {path}: written by format v{found}, this build supports \
                 up to v{supported}"
            ),
            DurableError::Corrupt { path, offset, detail } => {
                write!(f, "corrupt data: {path} at byte {offset}: {detail}")
            }
            DurableError::Injected { op, detail } => {
                write!(f, "injected crash at durable op #{op}: {detail}")
            }
            DurableError::Poisoned { path, cause } => {
                write!(f, "journal poisoned: {path}: append refused after failed fsync ({cause})")
            }
            DurableError::Fenced { path, held, current } => write!(
                f,
                "fenced writer: {path}: append refused, token {held} is below the \
                 authority's minimum {current}"
            ),
        }
    }
}

impl std::error::Error for DurableError {}

impl DurableError {
    /// Wraps an [`std::io::Error`] with the path and operation it hit.
    pub fn io(path: &std::path::Path, op: &'static str, e: &std::io::Error) -> DurableError {
        DurableError::Io { path: path.display().to_string(), op, message: e.to_string() }
    }

    /// Whether this error is an injected crash (chaos harnesses resume
    /// after these; anything else is a real failure).
    pub fn is_injected(&self) -> bool {
        matches!(self, DurableError::Injected { .. })
    }

    /// Whether this error is a fencing-token rejection (a stale writer was
    /// refused; the journal bytes are untouched).
    pub fn is_fenced(&self) -> bool {
        matches!(self, DurableError::Fenced { .. })
    }
}

/// A damage site that recovery detected *and repaired* by falling back to
/// the last valid state. Reported, never silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Defect {
    /// The journal ended mid-record (kill during append); the tail was
    /// truncated to the last whole record.
    TornTail {
        /// The journal file.
        path: String,
        /// Offset the journal was truncated back to.
        offset: u64,
        /// Bytes discarded.
        lost: u64,
    },
    /// A journal record failed its CRC (bit flip); the journal was
    /// truncated to the last record that verified.
    CorruptRecord {
        /// The journal file.
        path: String,
        /// Offset of the failing record.
        offset: u64,
        /// What the verifier saw.
        detail: String,
    },
    /// A snapshot file failed verification; recovery fell back to an older
    /// snapshot (or a fresh start).
    SnapshotInvalid {
        /// The snapshot file.
        path: String,
        /// The underlying error.
        detail: String,
    },
    /// The manifest failed verification; recovery scanned the directory for
    /// the newest valid snapshot instead.
    ManifestInvalid {
        /// The manifest file.
        path: String,
        /// The underlying error.
        detail: String,
    },
    /// The manifest named a snapshot that does not exist or does not verify
    /// (kill between snapshot replacement steps, or external damage).
    ManifestStale {
        /// The manifest file.
        path: String,
        /// The snapshot sequence number it pointed at.
        snapshot: u64,
    },
    /// The journal tail does not continue the recovered snapshot (its first
    /// record's unit index is not the snapshot cursor); the tail belongs to
    /// a different epoch and was discarded.
    JournalEpochMismatch {
        /// The journal file.
        path: String,
        /// The unit index the snapshot expects next.
        expect: u64,
        /// The unit index the journal starts at.
        found: u64,
    },
    /// Checkpointed state belonged to a different campaign configuration
    /// (fingerprint mismatch) and was discarded in favor of a fresh run.
    StateDiscarded {
        /// What differed.
        detail: String,
    },
    /// The scrubber found the replica a strict prefix of the primary (a
    /// crash between primary commit and replica ship, or a fresh follower
    /// still catching up); the missing suffix was re-shipped.
    ReplicaLag {
        /// The replica file.
        path: String,
        /// Records the replica was behind by.
        missing: u64,
    },
    /// The scrubber found a replica record that differs from the primary's
    /// record at the same position (bit rot, external damage, or a torn
    /// ship); the replica was rebuilt from the primary.
    ReplicaDiverged {
        /// The replica file.
        path: String,
        /// Record index (0-based) of the first divergence.
        at: u64,
    },
    /// A scrub pass repaired a replica (re-ship or rebuild). Always
    /// accompanied by the [`Defect::ReplicaLag`] / [`Defect::ReplicaDiverged`]
    /// that triggered it; counted separately so health views can report
    /// repairs distinct from detections.
    ScrubRepaired {
        /// The replica file that was repaired.
        path: String,
        /// Records in the replica after repair.
        records: u64,
    },
}

impl core::fmt::Display for Defect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Defect::TornTail { path, offset, lost } => write!(
                f,
                "torn journal tail: {path} truncated to byte {offset} ({lost} bytes lost)"
            ),
            Defect::CorruptRecord { path, offset, detail } => {
                write!(f, "corrupt journal record: {path} at byte {offset}: {detail}")
            }
            Defect::SnapshotInvalid { path, detail } => {
                write!(f, "invalid snapshot: {path}: {detail}")
            }
            Defect::ManifestInvalid { path, detail } => {
                write!(f, "invalid manifest: {path}: {detail}")
            }
            Defect::ManifestStale { path, snapshot } => {
                write!(f, "stale manifest: {path} points at missing/invalid snapshot #{snapshot}")
            }
            Defect::JournalEpochMismatch { path, expect, found } => write!(
                f,
                "journal epoch mismatch: {path} starts at unit {found}, snapshot expects {expect}"
            ),
            Defect::StateDiscarded { detail } => {
                write!(f, "checkpoint discarded: {detail}")
            }
            Defect::ReplicaLag { path, missing } => {
                write!(f, "replica lag: {path} is {missing} record(s) behind its primary")
            }
            Defect::ReplicaDiverged { path, at } => {
                write!(f, "replica diverged: {path} differs from its primary at record {at}")
            }
            Defect::ScrubRepaired { path, records } => {
                write!(f, "scrub repaired: {path} rebuilt to {records} record(s)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = DurableError::Version { path: "snap-3.bin".into(), found: 9, supported: 1 };
        let msg = e.to_string();
        assert!(msg.contains("snap-3.bin") && msg.contains("v9") && msg.contains("v1"), "{msg}");
        let e = DurableError::Corrupt {
            path: "journal.log".into(),
            offset: 42,
            detail: "crc mismatch".into(),
        };
        assert!(e.to_string().contains("byte 42"), "{e}");
        assert!(!e.is_injected());
        assert!(DurableError::Injected { op: 3, detail: "append".into() }.is_injected());
        let e = DurableError::Fenced { path: "shard-0.log".into(), held: 2, current: 3 };
        assert!(e.is_fenced() && !e.is_injected());
        let msg = e.to_string();
        assert!(msg.contains("token 2") && msg.contains("minimum 3"), "{msg}");
    }

    #[test]
    fn defects_render_their_repair() {
        let d = Defect::TornTail { path: "j".into(), offset: 10, lost: 5 };
        assert!(d.to_string().contains("truncated"));
        let d = Defect::ManifestStale { path: "m".into(), snapshot: 7 };
        assert!(d.to_string().contains("#7"));
    }
}
