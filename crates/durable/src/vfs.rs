//! Injectable storage boundary: every durable byte this crate writes
//! crosses a [`Vfs`].
//!
//! The crash nemeses so far ([`crate::CrashPlan`], torn appends, injected
//! fsync failures) model a *process* dying over a healthy disk. This seam
//! models the disk itself going bad while the process survives:
//!
//! - [`OsVfs`] — the passthrough used by every default constructor; the
//!   public `create`/`open`/`write_atomic` APIs behave byte-identically to
//!   before the seam existed.
//! - [`FaultVfs`] — a seeded nemesis driven by a plain-data [`FaultPlan`]:
//!   ENOSPC after a byte budget, per-op EIO probability, fsync stalls with
//!   a tick budget, and short writes. All draws come from a splitmix64
//!   stream, so a `(plan, op sequence)` pair replays identically.
//!
//! Faults are injected on the *write* path (append, fsync, rename) — the
//! operations a sick disk refuses first. Reads pass through: recovery must
//! stay able to see whatever bytes the faults left behind, exactly as a
//! remounted-read-only filesystem still serves its old blocks.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// An open, append-positioned file handle behind the [`Vfs`] seam.
///
/// `write` may report a *short write* (`Ok(n)` with `n < bytes.len()`):
/// only the first `n` bytes reached the file. Callers must treat that as a
/// torn frame, not retry the remainder — the whole point of the seam is
/// that the tear becomes observable to recovery.
pub trait VfsFile: Send + fmt::Debug {
    /// Appends `bytes` at the end of the file. Returns how many bytes
    /// landed; `Ok(n < bytes.len())` is a short write.
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize>;

    /// Flushes file data and metadata to stable storage. Returns the
    /// logical ticks the sync *stalled* (0 on a healthy disk) — the
    /// latency signal the durability gauge feeds on.
    fn fsync(&mut self) -> io::Result<u64>;

    /// Shrinks the file to `len` bytes and repositions at the new end.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// The injectable storage boundary. One implementor per fault domain:
/// [`OsVfs`] passes through, [`FaultVfs`] injects.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Opens (creating if needed) `path` for appending, positioned at the
    /// end; `truncate` first empties it.
    fn open(&self, path: &Path, truncate: bool) -> io::Result<Box<dyn VfsFile>>;

    /// Reads the whole file. Never fault-injected: recovery must be able
    /// to read back whatever bytes the faults left.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Renames `from` over `to` (the atomic-replace commit point).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Flushes the directory entry for `path` so a completed rename
    /// survives a power cut. Best-effort at every call site.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// Bytes of free space left under `path`, when the backend can tell
    /// (`None` means "no watermark signal" — the gauge then relies on
    /// error hysteresis alone).
    fn free_space(&self, path: &Path) -> Option<u64>;
}

/// The passthrough [`Vfs`]: plain `std::fs`, no faults, no watermarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsVfs;

#[derive(Debug)]
struct OsFile {
    file: File,
}

impl VfsFile for OsFile {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        // A real kernel short write would tear the frame invisibly to the
        // caller's framing; the passthrough absorbs it so the only short
        // writes the stack ever sees are injected (and thus seeded).
        self.file.write_all(bytes)?;
        Ok(bytes.len())
    }

    fn fsync(&mut self) -> io::Result<u64> {
        self.file.sync_all()?;
        Ok(0)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(())
    }
}

fn os_open(path: &Path, truncate: bool) -> io::Result<File> {
    let mut file =
        OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
    if truncate {
        file.set_len(0)?;
    }
    file.seek(SeekFrom::End(0))?;
    Ok(file)
}

impl Vfs for OsVfs {
    fn open(&self, path: &Path, truncate: bool) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(OsFile { file: os_open(path, truncate)? }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            File::open(parent)?.sync_all()?;
        }
        Ok(())
    }

    fn free_space(&self, _path: &Path) -> Option<u64> {
        None
    }
}

/// A seeded disk-fault plan: plain `Copy + Eq` data, safe to embed in
/// configs that derive equality, replayed identically for a given seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed of the splitmix64 draw stream.
    pub seed: u64,
    /// Total bytes the "disk" accepts before ENOSPC (`u64::MAX` = off).
    /// A write that would cross the budget lands its fitting prefix and
    /// fails — the torn frame recovery has to repair.
    pub byte_budget: u64,
    /// Per-write/fsync/rename probability of EIO, in parts per million.
    pub eio_ppm: u32,
    /// Every `stall_every`-th fsync stalls (0 = never).
    pub stall_every: u64,
    /// Logical ticks charged per stalled fsync.
    pub stall_ticks: u64,
    /// Total stall ticks tolerated; once exceeded, stalling fsyncs return
    /// EIO instead (the hung-disk-turned-dead-disk progression).
    pub stall_budget: u64,
    /// Per-write probability of a short write (half the frame lands), in
    /// parts per million.
    pub short_write_ppm: u32,
    /// Faultable operations (writes, fsyncs, renames) that pass clean
    /// before the probabilistic draws and stall schedule arm — the disk
    /// was healthy at boot. The byte budget is *not* deferred: a disk
    /// born small is small.
    pub warmup_ops: u64,
}

impl FaultPlan {
    /// A fully disarmed plan: every draw passes, no budget, no stalls.
    /// A [`FaultVfs`] over this plan must behave byte-identically to
    /// [`OsVfs`] — the zero-severity invariant `disk_chaos` pins.
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            byte_budget: u64::MAX,
            eio_ppm: 0,
            stall_every: 0,
            stall_ticks: 0,
            stall_budget: 0,
            short_write_ppm: 0,
            warmup_ops: 0,
        }
    }

    /// Whether any fault is armed.
    pub fn is_armed(&self) -> bool {
        self.byte_budget != u64::MAX
            || self.eio_ppm != 0
            || self.stall_every != 0
            || self.short_write_ppm != 0
    }
}

#[derive(Debug, Default)]
struct FaultState {
    rng: u64,
    written: u64,
    fsyncs: u64,
    stalled: u64,
    ops: u64,
}

/// The seeded disk nemesis: applies a [`FaultPlan`] in front of the real
/// filesystem. Cloning shares the counters, so the byte budget and stall
/// budget are *per disk*, not per file — exactly how a full partition
/// starves every journal on it.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    plan: FaultPlan,
    state: Arc<Mutex<FaultState>>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultVfs {
    /// A nemesis over `plan`, its draw stream seeded from `plan.seed`.
    pub fn new(plan: FaultPlan) -> FaultVfs {
        FaultVfs {
            plan,
            state: Arc::new(Mutex::new(FaultState { rng: plan.seed, ..FaultState::default() })),
        }
    }

    /// The plan this nemesis runs.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Total bytes the nemesis has accepted so far.
    pub fn bytes_written(&self) -> u64 {
        self.lock().written
    }

    /// Total fsync stall ticks charged so far.
    pub fn stalled_ticks(&self) -> u64 {
        self.lock().stalled
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        // A poisoned lock only means another thread panicked mid-draw; the
        // counters are still coherent u64s, so the nemesis keeps serving.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn draw_ppm(state: &mut FaultState, ppm: u32) -> bool {
        ppm != 0 && splitmix64(&mut state.rng) % 1_000_000 < u64::from(ppm)
    }

    fn eio(op: &str) -> io::Error {
        io::Error::other(format!("injected EIO on {op}"))
    }
}

#[derive(Debug)]
struct FaultFile {
    file: File,
    vfs: FaultVfs,
}

impl VfsFile for FaultFile {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        let plan = self.vfs.plan;
        let mut st = self.vfs.lock();
        st.ops += 1;
        let warm = st.ops <= plan.warmup_ops;
        if !warm && FaultVfs::draw_ppm(&mut st, plan.eio_ppm) {
            return Err(FaultVfs::eio("write"));
        }
        let fit = plan.byte_budget.saturating_sub(st.written);
        if (bytes.len() as u64) > fit {
            // The disk fills mid-write: the fitting prefix lands (a torn
            // frame for recovery to repair), the call fails ENOSPC.
            let keep = fit as usize;
            st.written += fit;
            drop(st);
            self.file.write_all(&bytes[..keep])?;
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                format!("injected ENOSPC: {keep} of {} bytes fit", bytes.len()),
            ));
        }
        let keep = if !warm && FaultVfs::draw_ppm(&mut st, plan.short_write_ppm) {
            bytes.len() / 2
        } else {
            bytes.len()
        };
        st.written += keep as u64;
        drop(st);
        self.file.write_all(&bytes[..keep])?;
        Ok(keep)
    }

    fn fsync(&mut self) -> io::Result<u64> {
        let plan = self.vfs.plan;
        let mut st = self.vfs.lock();
        st.ops += 1;
        let warm = st.ops <= plan.warmup_ops;
        if !warm && FaultVfs::draw_ppm(&mut st, plan.eio_ppm) {
            return Err(FaultVfs::eio("fsync"));
        }
        st.fsyncs += 1;
        let mut ticks = 0;
        if !warm && plan.stall_every != 0 && st.fsyncs.is_multiple_of(plan.stall_every) {
            st.stalled += plan.stall_ticks;
            if st.stalled > plan.stall_budget {
                return Err(FaultVfs::eio("fsync (stall budget exhausted)"));
            }
            ticks = plan.stall_ticks;
        }
        drop(st);
        self.file.sync_all()?;
        Ok(ticks)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(())
    }
}

impl Vfs for FaultVfs {
    fn open(&self, path: &Path, truncate: bool) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultFile { file: os_open(path, truncate)?, vfs: self.clone() }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut file = File::open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        {
            let mut st = self.lock();
            st.ops += 1;
            let warm = st.ops <= self.plan.warmup_ops;
            if !warm && FaultVfs::draw_ppm(&mut st, self.plan.eio_ppm) {
                return Err(FaultVfs::eio("rename"));
            }
        }
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        OsVfs.sync_dir(path)
    }

    fn free_space(&self, _path: &Path) -> Option<u64> {
        if self.plan.byte_budget == u64::MAX {
            return None;
        }
        Some(self.plan.byte_budget.saturating_sub(self.lock().written))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("emoleak-vfs-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn quiet_fault_vfs_is_byte_identical_to_os_vfs() {
        let dir = scratch("quiet");
        let a = dir.join("os.bin");
        let b = dir.join("fault.bin");
        let fault = FaultVfs::new(FaultPlan::quiet(7));
        for (vfs, path) in [(&OsVfs as &dyn Vfs, &a), (&fault as &dyn Vfs, &b)] {
            let mut f = vfs.open(path, true).unwrap();
            assert_eq!(f.write(b"hello ").unwrap(), 6);
            assert_eq!(f.write(b"disk").unwrap(), 4);
            assert_eq!(f.fsync().unwrap(), 0);
            f.truncate(8).unwrap();
            assert_eq!(f.write(b"!!").unwrap(), 2);
        }
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        assert!(!FaultPlan::quiet(7).is_armed());
        assert_eq!(fault.free_space(&b), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn byte_budget_tears_the_crossing_write_and_reports_enospc() {
        let dir = scratch("enospc");
        let path = dir.join("full.bin");
        let vfs = FaultVfs::new(FaultPlan {
            byte_budget: 10,
            ..FaultPlan::quiet(3)
        });
        let mut f = vfs.open(&path, true).unwrap();
        assert_eq!(f.write(b"12345678").unwrap(), 8);
        let err = f.write(b"overflow").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull, "{err}");
        // The fitting prefix landed: the tear is observable on disk.
        assert_eq!(std::fs::read(&path).unwrap(), b"12345678ov");
        assert_eq!(vfs.free_space(&path), Some(0));
        // The disk stays full: even a 1-byte write is refused.
        let err = f.write(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stalls_charge_ticks_then_exhaust_into_eio() {
        let dir = scratch("stall");
        let path = dir.join("slow.bin");
        let vfs = FaultVfs::new(FaultPlan {
            stall_every: 2,
            stall_ticks: 5,
            stall_budget: 10,
            ..FaultPlan::quiet(9)
        });
        let mut f = vfs.open(&path, true).unwrap();
        assert_eq!(f.fsync().unwrap(), 0, "1st fsync clean");
        assert_eq!(f.fsync().unwrap(), 5, "2nd stalls");
        assert_eq!(f.fsync().unwrap(), 0, "3rd clean");
        assert_eq!(f.fsync().unwrap(), 5, "4th stalls, budget now exactly spent");
        assert!(f.fsync().is_ok(), "5th clean");
        let err = f.fsync().unwrap_err();
        assert!(err.to_string().contains("stall budget"), "{err}");
        assert_eq!(vfs.stalled_ticks(), 15);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warmup_ops_hold_fire_until_boot_is_over() {
        let dir = scratch("warmup");
        let path = dir.join("w.bin");
        let vfs = FaultVfs::new(FaultPlan {
            eio_ppm: 1_000_000,
            warmup_ops: 3,
            ..FaultPlan::quiet(1)
        });
        let mut f = vfs.open(&path, true).unwrap();
        assert_eq!(f.write(b"a").unwrap(), 1, "1st op is inside the warmup");
        assert_eq!(f.write(b"b").unwrap(), 1, "2nd op is inside the warmup");
        assert_eq!(f.write(b"c").unwrap(), 1, "3rd op is inside the warmup");
        let err = f.write(b"d").unwrap_err();
        assert!(err.to_string().contains("injected EIO"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eio_and_short_write_draws_are_seed_deterministic() {
        let run = |seed: u64| -> Vec<String> {
            let dir = scratch(&format!("det-{seed}"));
            let path = dir.join("d.bin");
            let vfs = FaultVfs::new(FaultPlan {
                eio_ppm: 300_000,
                short_write_ppm: 300_000,
                ..FaultPlan::quiet(seed)
            });
            let mut f = vfs.open(&path, true).unwrap();
            let mut outcomes = Vec::new();
            for _ in 0..32 {
                outcomes.push(match f.write(b"eightby!") {
                    Ok(8) => "full".to_string(),
                    Ok(n) => format!("short-{n}"),
                    Err(e) => format!("err-{}", e.kind()),
                });
            }
            std::fs::remove_dir_all(&dir).unwrap();
            outcomes
        };
        assert_eq!(run(42), run(42), "same seed, same fault schedule");
        assert_ne!(run(42), run(43), "different seed, different schedule");
        assert!(run(42).iter().any(|o| o.starts_with("err")), "eio fired");
        assert!(run(42).iter().any(|o| o.starts_with("short")), "short write fired");
    }
}
