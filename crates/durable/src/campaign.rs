//! Resumable campaigns: chunked unit execution over a [`CheckpointStore`].
//!
//! A *campaign* is `total` independently-seeded units of work (device
//! columns, sweep cells, corpus rows) whose results are opaque byte
//! payloads. The runner journals every completed unit, snapshots the
//! accumulated state periodically, and — on reopen — resumes from the
//! recovered cursor instead of recomputing.
//!
//! Because every unit derives its RNG stream from `(campaign_seed, index)`
//! (the `emoleak-exec` determinism model), a resumed campaign's payloads
//! are byte-identical to an uninterrupted run's: the cursor *is* the RNG
//! stream position, so nothing else needs to be saved.

use crate::error::{Defect, DurableError};
use crate::store::{CheckpointStore, CrashPlan};
use crate::wire::{Dec, Enc, WireError};
use std::ops::Range;
use std::path::Path;

/// Journal record kind for one completed campaign unit (`seq` = unit index,
/// `data` = the unit's payload).
pub const REC_UNIT: u8 = 1;

/// Identity of a campaign: which work this checkpoint directory belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Stable campaign name (e.g. `"table5_tess"`).
    pub id: String,
    /// Hash of everything that shapes unit results (seed, clip count,
    /// classifier flags…). A recovered state with a different fingerprint
    /// is discarded — resuming it would splice incompatible results.
    pub fingerprint: u64,
    /// Number of units in the campaign.
    pub total: usize,
}

/// Execution knobs for [`run_resumable`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Units computed per `compute` call (0 = one at a time). Bench bins
    /// pass the worker count so a chunk saturates the pool.
    pub chunk: usize,
    /// Snapshot after this many newly-completed units (0 = only the final
    /// snapshot). Between snapshots, completed units live in the journal.
    pub snapshot_every: usize,
    /// Optional seeded kill point, forwarded to
    /// [`CheckpointStore::arm_crash`].
    pub crash: Option<CrashPlan>,
}

/// The serialized form of an in-flight campaign: what a snapshot holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignState {
    /// Campaign name, matched against [`CampaignSpec::id`] on resume.
    pub id: String,
    /// Configuration fingerprint, matched against
    /// [`CampaignSpec::fingerprint`] on resume.
    pub fingerprint: u64,
    /// Payloads of units `0..cursor`, in unit order. The cursor (and hence
    /// the RNG stream position) is implicitly `payloads.len()`.
    pub payloads: Vec<Vec<u8>>,
}

impl CampaignState {
    /// Serializes the state (the snapshot container's payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.str(&self.id).u64(self.fingerprint).u64(self.payloads.len() as u64);
        for payload in &self.payloads {
            enc.bytes(payload);
        }
        enc.into_bytes()
    }

    /// Deserializes a state produced by [`CampaignState::encode`].
    ///
    /// # Errors
    ///
    /// [`DurableError::Corrupt`] (labelled `"<state>"`) when the bytes do
    /// not decode exactly — never a panic, never a partial value.
    pub fn decode(bytes: &[u8]) -> Result<CampaignState, DurableError> {
        let corrupt = |e: WireError| DurableError::Corrupt {
            path: "<state>".into(),
            offset: e.offset,
            detail: e.detail,
        };
        let mut dec = Dec::new(bytes);
        let id = dec.str().map_err(corrupt)?;
        let fingerprint = dec.u64().map_err(corrupt)?;
        let count = dec.u64().map_err(corrupt)?;
        let count = usize::try_from(count).map_err(|_| DurableError::Corrupt {
            path: "<state>".into(),
            offset: dec.offset(),
            detail: format!("payload count {count} overflows usize"),
        })?;
        let mut payloads = Vec::new();
        for _ in 0..count {
            payloads.push(dec.bytes().map_err(corrupt)?.to_vec());
        }
        dec.finish().map_err(corrupt)?;
        Ok(CampaignState { id, fingerprint, payloads })
    }
}

/// A campaign failure: either the application's own compute error or a
/// durability failure.
#[derive(Debug)]
pub enum CampaignError<E> {
    /// The `compute` callback failed; checkpoints remain valid for a retry.
    App(E),
    /// The durability layer failed (or an injected crash fired).
    Durable(DurableError),
}

impl<E: core::fmt::Display> core::fmt::Display for CampaignError<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CampaignError::App(e) => write!(f, "campaign compute failed: {e}"),
            CampaignError::Durable(e) => write!(f, "campaign durability failed: {e}"),
        }
    }
}

impl<E: core::fmt::Debug + core::fmt::Display> std::error::Error for CampaignError<E> {}

impl<E> From<DurableError> for CampaignError<E> {
    fn from(e: DurableError) -> Self {
        CampaignError::Durable(e)
    }
}

/// A completed campaign.
#[derive(Debug)]
pub struct Outcome {
    /// Unit payloads `0..total`, in unit order.
    pub payloads: Vec<Vec<u8>>,
    /// How many units were restored from the checkpoint instead of
    /// recomputed (0 on a cold start).
    pub resumed_units: usize,
    /// Damage recovery repaired while opening the checkpoint directory.
    pub defects: Vec<Defect>,
    /// Durable operations this run performed (0 without a checkpoint
    /// directory). Chaos harnesses use it to aim [`CrashPlan`]s: every op
    /// in `1..=ops` is a valid kill point.
    pub ops: u64,
}

/// Restores `(payloads, defects)` for `spec` from an [`Opened`] store:
/// validates the snapshot against the spec, then extends it with the
/// journal tail if the tail continues the snapshot's epoch.
///
/// [`Opened`]: crate::store::Opened
fn restore(
    dir: &Path,
    spec: &CampaignSpec,
    opened: &crate::store::Opened,
    defects: &mut Vec<Defect>,
) -> Vec<Vec<u8>> {
    let mut payloads = match &opened.state {
        None => Vec::new(),
        Some(bytes) => match CampaignState::decode(bytes) {
            Err(e) => {
                defects.push(Defect::StateDiscarded {
                    detail: format!("snapshot state does not decode: {e}"),
                });
                Vec::new()
            }
            Ok(state) if state.id != spec.id || state.fingerprint != spec.fingerprint => {
                defects.push(Defect::StateDiscarded {
                    detail: format!(
                        "checkpoint is for campaign {:?} fingerprint {:#x}, this run is {:?} \
                         fingerprint {:#x}",
                        state.id, state.fingerprint, spec.id, spec.fingerprint
                    ),
                });
                Vec::new()
            }
            Ok(state) if state.payloads.len() > spec.total => {
                defects.push(Defect::StateDiscarded {
                    detail: format!(
                        "checkpoint holds {} units but the campaign has only {}",
                        state.payloads.len(),
                        spec.total
                    ),
                });
                Vec::new()
            }
            Ok(state) => state.payloads,
        },
    };

    for rec in &opened.tail {
        let expect = payloads.len() as u64;
        if rec.kind != REC_UNIT || rec.seq != expect {
            // The tail does not continue this snapshot (journal reset was
            // skipped by a crash, or the store fell back to an older
            // snapshot). Discard the rest; those units recompute.
            defects.push(Defect::JournalEpochMismatch {
                path: crate::store::journal_path(dir).display().to_string(),
                expect,
                found: rec.seq,
            });
            break;
        }
        payloads.push(rec.data.clone());
    }
    payloads
}

/// Runs (or resumes) a campaign of `spec.total` units.
///
/// `compute(range)` must return one payload per unit in `range`, and must
/// be a pure function of the unit index (seed derivation by index) — that
/// is what makes a resumed run byte-identical to an uninterrupted one.
///
/// With `dir = None` the campaign runs without durability (no checkpoint
/// files, nothing to resume). With `Some(dir)`, completed units are
/// journaled as they finish, state snapshots land every
/// `opts.snapshot_every` units, and a rerun picks up from the recovered
/// cursor. The final snapshot (cursor = total) is always written, so a
/// finished campaign re-opens without recomputing anything.
///
/// # Errors
///
/// [`CampaignError::App`] if `compute` fails; [`CampaignError::Durable`]
/// on durability failures, including [`DurableError::Injected`] from an
/// armed crash plan.
pub fn run_resumable<E>(
    dir: Option<&Path>,
    spec: &CampaignSpec,
    opts: &RunOptions,
    compute: &mut dyn FnMut(Range<usize>) -> Result<Vec<Vec<u8>>, E>,
) -> Result<Outcome, CampaignError<E>> {
    let chunk = opts.chunk.max(1);
    let Some(dir) = dir else {
        let payloads = compute(0..spec.total).map_err(CampaignError::App)?;
        debug_assert_eq!(payloads.len(), spec.total);
        return Ok(Outcome { payloads, resumed_units: 0, defects: Vec::new(), ops: 0 });
    };

    let opened = CheckpointStore::open(dir)?;
    let mut defects = opened.defects.clone();
    let mut payloads = restore(dir, spec, &opened, &mut defects);
    let resumed_units = payloads.len();
    let mut store = opened.store;
    store.arm_crash(opts.crash);

    let mut since_snapshot = 0usize;
    while payloads.len() < spec.total {
        let start = payloads.len();
        let end = (start + chunk).min(spec.total);
        let fresh = compute(start..end).map_err(CampaignError::App)?;
        debug_assert_eq!(fresh.len(), end - start);
        for (offset, payload) in fresh.into_iter().enumerate() {
            store.append(REC_UNIT, (start + offset) as u64, &payload)?;
            payloads.push(payload);
            since_snapshot += 1;
        }
        if opts.snapshot_every > 0
            && since_snapshot >= opts.snapshot_every
            && payloads.len() < spec.total
        {
            let state = CampaignState {
                id: spec.id.clone(),
                fingerprint: spec.fingerprint,
                payloads: payloads.clone(),
            };
            store.snapshot(&state.encode())?;
            since_snapshot = 0;
        }
    }

    // Final snapshot: a finished campaign reopens at cursor = total.
    let state = CampaignState {
        id: spec.id.clone(),
        fingerprint: spec.fingerprint,
        payloads: payloads.clone(),
    };
    store.snapshot(&state.encode())?;
    Ok(Outcome { payloads, resumed_units, defects, ops: store.ops() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "emoleak-campaign-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn unit_payload(i: usize) -> Vec<u8> {
        format!("unit-{i}-payload").into_bytes()
    }

    fn spec(total: usize) -> CampaignSpec {
        CampaignSpec { id: "test-campaign".into(), fingerprint: 0xFEED_F00D, total }
    }

    /// A compute callback that records which units it actually ran.
    fn counting_compute(
        ran: &mut Vec<usize>,
    ) -> impl FnMut(Range<usize>) -> Result<Vec<Vec<u8>>, String> + '_ {
        move |range: Range<usize>| {
            ran.extend(range.clone());
            Ok(range.map(unit_payload).collect())
        }
    }

    #[test]
    fn state_round_trips() {
        let state = CampaignState {
            id: "abc".into(),
            fingerprint: 42,
            payloads: vec![b"x".to_vec(), Vec::new(), b"yz".to_vec()],
        };
        assert_eq!(CampaignState::decode(&state.encode()).unwrap(), state);
    }

    #[test]
    fn without_dir_runs_everything_once() {
        let mut ran = Vec::new();
        let outcome =
            run_resumable(None, &spec(4), &RunOptions::default(), &mut counting_compute(&mut ran))
                .unwrap();
        assert_eq!(outcome.payloads, (0..4).map(unit_payload).collect::<Vec<_>>());
        assert_eq!(outcome.resumed_units, 0);
        assert_eq!(ran, vec![0, 1, 2, 3]);
    }

    #[test]
    fn completed_campaign_resumes_without_recompute() {
        let dir = scratch("complete");
        let opts = RunOptions { chunk: 2, snapshot_every: 2, crash: None };
        let mut first_ran = Vec::new();
        let a = run_resumable(Some(&dir), &spec(5), &opts, &mut counting_compute(&mut first_ran))
            .unwrap();
        assert_eq!(first_ran.len(), 5);

        let mut second_ran = Vec::new();
        let b = run_resumable(Some(&dir), &spec(5), &opts, &mut counting_compute(&mut second_ran))
            .unwrap();
        assert!(second_ran.is_empty(), "nothing should recompute: {second_ran:?}");
        assert_eq!(b.resumed_units, 5);
        assert_eq!(a.payloads, b.payloads);
        assert!(b.defects.is_empty(), "{:?}", b.defects);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_crash_then_resume_matches_clean_run() {
        let clean = run_resumable(
            None,
            &spec(6),
            &RunOptions::default(),
            &mut counting_compute(&mut Vec::new()),
        )
        .unwrap();

        // Kill at every plausible op of a 6-unit run (appends + snapshot
        // steps) and make sure resume always converges to the clean result.
        for kill in 1..=10 {
            let dir = scratch(&format!("kill-{kill}"));
            let opts = RunOptions {
                chunk: 2,
                snapshot_every: 2,
                crash: Some(CrashPlan::kill(kill, 0.3)),
            };
            let mut ran = Vec::new();
            let err = run_resumable(Some(&dir), &spec(6), &opts, &mut counting_compute(&mut ran))
                .expect_err("crash must fire");
            assert!(
                matches!(&err, CampaignError::Durable(e) if e.is_injected()),
                "kill {kill}: {err}"
            );

            let resumed = run_resumable(
                Some(&dir),
                &spec(6),
                &RunOptions { chunk: 2, snapshot_every: 2, crash: None },
                &mut counting_compute(&mut Vec::new()),
            )
            .unwrap();
            assert_eq!(resumed.payloads, clean.payloads, "kill at op {kill} diverged");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn fingerprint_mismatch_discards_checkpoint() {
        let dir = scratch("fingerprint");
        let opts = RunOptions { chunk: 2, snapshot_every: 2, crash: None };
        run_resumable(Some(&dir), &spec(4), &opts, &mut counting_compute(&mut Vec::new()))
            .unwrap();

        let other = CampaignSpec { fingerprint: 0xDEAD, ..spec(4) };
        let mut ran = Vec::new();
        let outcome =
            run_resumable(Some(&dir), &other, &opts, &mut counting_compute(&mut ran)).unwrap();
        assert_eq!(ran.len(), 4, "stale checkpoint must not be spliced in");
        assert_eq!(outcome.resumed_units, 0);
        assert!(
            outcome.defects.iter().any(|d| matches!(d, Defect::StateDiscarded { .. })),
            "{:?}",
            outcome.defects
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
