//! Write-ahead journal: length-prefixed, CRC32-checksummed, versioned
//! records with append + fsync semantics.
//!
//! ## On-disk format
//!
//! ```text
//! header   : magic "EMOJ" (4) | version u16 LE (2)
//! record   : len u32 LE (4) | crc u32 LE (4) | payload (len bytes)
//! payload  : kind u8 (1) | seq u64 LE (8) | data (len - 9 bytes)
//! ```
//!
//! `crc` is the IEEE CRC-32 of the payload. A record is *committed* once its
//! bytes are on disk in full and the CRC verifies; [`Journal::open`] scans
//! forward record by record and truncates the file back to the last
//! committed record, reporting the repair as a [`Defect`]. A kill during
//! append therefore loses at most the record being written — never an
//! earlier one, and never silently.

use crate::error::{Defect, DurableError};
use crate::vfs::{OsVfs, Vfs, VfsFile};
use crate::wire::{crc32, Dec, Enc};
use crate::JOURNAL_VERSION;
use std::path::{Path, PathBuf};

/// Journal file magic.
pub const JOURNAL_MAGIC: &[u8; 4] = b"EMOJ";

/// Header length: magic + version.
const HEADER_LEN: u64 = 6;

/// Sanity cap on a single record's payload. A length prefix beyond this is
/// treated as corruption rather than an allocation request.
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// One committed journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Record type tag (the layer above assigns meanings).
    pub kind: u8,
    /// Monotonic sequence / unit index assigned by the writer.
    pub seq: u64,
    /// Opaque record body.
    pub data: Vec<u8>,
}

/// An append-only journal handle, positioned at the end of the last
/// committed record.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Box<dyn VfsFile>,
    /// Set to the fsync failure message once a sync fails. A failed fsync
    /// means the kernel may have dropped the dirty pages — the on-disk tail
    /// is unknowable — so the handle refuses every later append
    /// ([`DurableError::Poisoned`]) until the file is reopened.
    poisoned: Option<String>,
    /// One-shot injected fsync failure (armed by crash plans).
    fail_fsync: bool,
    /// Fsync stall ticks accumulated since the last
    /// [`Journal::take_stalled_ticks`] — the disk-latency signal the
    /// durability gauge consumes.
    stalled: u64,
}

/// Writes a whole frame through the seam, surfacing an injected short
/// write as a typed error: the prefix that landed is a torn frame the
/// next open repairs, so the caller must *not* retry the remainder.
fn write_frame(file: &mut dyn VfsFile, path: &Path, bytes: &[u8]) -> Result<(), DurableError> {
    let n = file.write(bytes).map_err(|e| DurableError::io(path, "write", &e))?;
    if n < bytes.len() {
        return Err(DurableError::Io {
            path: path.display().to_string(),
            op: "write",
            message: format!("short write: {n} of {} byte(s) reached disk", bytes.len()),
        });
    }
    Ok(())
}

pub(crate) fn encode_record(kind: u8, seq: u64, data: &[u8]) -> Vec<u8> {
    let mut payload = Enc::new();
    payload.u8(kind).u64(seq);
    let mut payload = payload.into_bytes();
    payload.extend_from_slice(data);
    let mut frame = Enc::new();
    frame.u32(payload.len() as u32).u32(crc32(&payload));
    let mut frame = frame.into_bytes();
    frame.extend_from_slice(&payload);
    frame
}

/// Forward-scans `bytes[start..]` as record frames, stopping at the first
/// damage site. Returns the committed records, the defects found (at most
/// one — framing is untrustworthy past the first bad frame), and the byte
/// offset of the end of the last whole record. Shared by [`Journal::open`]
/// (which truncates to that offset), [`Journal::verify`] (read-only), and
/// the ship codec in [`crate::ship`].
pub(crate) fn scan_frames(bytes: &[u8], start: usize, origin: &str) -> (Vec<Record>, Vec<Defect>, usize) {
    let mut records = Vec::new();
    let mut defects = Vec::new();
    let mut committed = start; // end of last whole record
    let mut pos = committed;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break;
        }
        if remaining < 8 {
            defects.push(Defect::TornTail {
                path: origin.to_string(),
                offset: committed as u64,
                lost: remaining as u64,
            });
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if !(9..=MAX_RECORD_LEN).contains(&len) {
            defects.push(Defect::CorruptRecord {
                path: origin.to_string(),
                offset: pos as u64,
                detail: format!("implausible record length {len}"),
            });
            break;
        }
        let len = len as usize;
        if remaining - 8 < len {
            defects.push(Defect::TornTail {
                path: origin.to_string(),
                offset: committed as u64,
                lost: remaining as u64,
            });
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            defects.push(Defect::CorruptRecord {
                path: origin.to_string(),
                offset: pos as u64,
                detail: "payload CRC mismatch".into(),
            });
            break;
        }
        let mut dec = Dec::new(payload);
        let kind = dec.u8().expect("length checked above");
        let seq = dec.u64().expect("length checked above");
        records.push(Record { kind, seq, data: payload[9..].to_vec() });
        pos += 8 + len;
        committed = pos;
    }
    (records, defects, committed)
}

/// Checks a journal header, returning the byte offset of the first record.
fn check_header(bytes: &[u8], path: &Path) -> Result<(), DurableError> {
    if bytes.len() < HEADER_LEN as usize || &bytes[..4] != JOURNAL_MAGIC {
        return Err(DurableError::Format {
            path: path.display().to_string(),
            detail: "journal header magic mismatch (expected \"EMOJ\")".into(),
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version > JOURNAL_VERSION {
        return Err(DurableError::Version {
            path: path.display().to_string(),
            found: version,
            supported: JOURNAL_VERSION,
        });
    }
    Ok(())
}

impl Journal {
    /// Creates a fresh journal at `path`, truncating any existing file, and
    /// syncs the header. Writes go straight to the OS filesystem; use
    /// [`Journal::create_with`] to route them through an injectable [`Vfs`].
    pub fn create(path: &Path) -> Result<Journal, DurableError> {
        Journal::create_with(path, &OsVfs)
    }

    /// [`Journal::create`] with every durable byte routed through `vfs`.
    pub fn create_with(path: &Path, vfs: &dyn Vfs) -> Result<Journal, DurableError> {
        let mut file = vfs.open(path, true).map_err(|e| DurableError::io(path, "open", &e))?;
        let mut header = Enc::new();
        header.u16(JOURNAL_VERSION);
        let mut bytes = JOURNAL_MAGIC.to_vec();
        bytes.extend_from_slice(&header.into_bytes());
        write_frame(file.as_mut(), path, &bytes)?;
        let stalled = file.fsync().map_err(|e| DurableError::io(path, "fsync", &e))?;
        Ok(Journal { path: path.to_path_buf(), file, poisoned: None, fail_fsync: false, stalled })
    }

    /// Opens (or creates) the journal at `path`, replays every committed
    /// record, and repairs a damaged tail.
    ///
    /// Returns the handle, the committed records in append order, and the
    /// defects repaired along the way (torn tail, corrupt record). The file
    /// is physically truncated back to the last committed record so the
    /// next append extends a clean tail.
    ///
    /// # Errors
    ///
    /// [`DurableError::Format`] if the header magic is wrong (the file is
    /// not a journal), [`DurableError::Version`] if it was written by a
    /// newer format, [`DurableError::Io`] on OS failures. Damage *after* a
    /// valid header is repaired, not fatal.
    pub fn open(path: &Path) -> Result<(Journal, Vec<Record>, Vec<Defect>), DurableError> {
        Journal::open_with(path, &OsVfs)
    }

    /// [`Journal::open`] with every durable byte routed through `vfs`.
    pub fn open_with(
        path: &Path,
        vfs: &dyn Vfs,
    ) -> Result<(Journal, Vec<Record>, Vec<Defect>), DurableError> {
        if !path.exists() {
            return Ok((Journal::create_with(path, vfs)?, Vec::new(), Vec::new()));
        }
        let bytes = vfs.read(path).map_err(|e| DurableError::io(path, "read", &e))?;
        check_header(&bytes, path)?;
        let (records, defects, committed) =
            scan_frames(&bytes, HEADER_LEN as usize, &path.display().to_string());

        let mut file = vfs.open(path, false).map_err(|e| DurableError::io(path, "open", &e))?;
        let mut stalled = 0;
        if committed < bytes.len() {
            // Damage found: drop everything after the last committed record
            // so the next append starts from a verified tail. Records after
            // a corrupt one are unreachable by the forward scan — framing is
            // untrustworthy past the first bad CRC — and are discarded with it.
            file.truncate(committed as u64).map_err(|e| DurableError::io(path, "truncate", &e))?;
            stalled = file.fsync().map_err(|e| DurableError::io(path, "fsync", &e))?;
        }
        Ok((
            Journal { path: path.to_path_buf(), file, poisoned: None, fail_fsync: false, stalled },
            records,
            defects,
        ))
    }

    /// Read-only verification scan: replays every committed record and
    /// reports damage *without* repairing the file or taking a write
    /// handle. This is the scrubber's primitive — safe to run against a
    /// journal another handle is appending to (the scan sees a committed
    /// prefix; a concurrent half-written tail shows up as a harmless
    /// [`Defect::TornTail`]).
    ///
    /// # Errors
    ///
    /// Same header errors as [`Journal::open`], plus [`DurableError::Io`]
    /// if the file cannot be read (a missing file is an `Io` error here,
    /// not an empty journal — verification targets files that must exist).
    pub fn verify(path: &Path) -> Result<(Vec<Record>, Vec<Defect>), DurableError> {
        Journal::verify_with(path, &OsVfs)
    }

    /// [`Journal::verify`] reading through `vfs`.
    pub fn verify_with(
        path: &Path,
        vfs: &dyn Vfs,
    ) -> Result<(Vec<Record>, Vec<Defect>), DurableError> {
        let bytes = vfs.read(path).map_err(|e| DurableError::io(path, "read", &e))?;
        check_header(&bytes, path)?;
        let (records, defects, _committed) =
            scan_frames(&bytes, HEADER_LEN as usize, &path.display().to_string());
        Ok((records, defects))
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether a failed fsync has latched this handle (see
    /// [`DurableError::Poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Drains the fsync stall ticks accumulated since the last call. A
    /// healthy disk always reports 0; an injected [`crate::FaultVfs`] stall
    /// surfaces here, where the durability gauge samples it per append.
    pub fn take_stalled_ticks(&mut self) -> u64 {
        std::mem::take(&mut self.stalled)
    }

    /// Arms a one-shot injected fsync failure: the next [`Journal::append`]
    /// writes its frame bytes but the sync "fails", latching the handle
    /// exactly as a real fsync error would. Models an `EIO` from a dying
    /// disk while the process survives.
    pub fn inject_fsync_failure(&mut self) {
        self.fail_fsync = true;
    }

    fn check_poison(&self) -> Result<(), DurableError> {
        match &self.poisoned {
            Some(cause) => Err(DurableError::Poisoned {
                path: self.path.display().to_string(),
                cause: cause.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Appends a record and syncs it to disk. On return the record is
    /// committed: a crash immediately after cannot lose it.
    ///
    /// # Errors
    ///
    /// [`DurableError::Poisoned`] if an earlier fsync failed — after a
    /// failed sync the on-disk tail is unknowable, so the handle refuses
    /// all further appends; reopen the file to re-verify the tail. A fsync
    /// failure on *this* call latches the handle and returns the error.
    pub fn append(&mut self, kind: u8, seq: u64, data: &[u8]) -> Result<(), DurableError> {
        self.check_poison()?;
        let frame = encode_record(kind, seq, data);
        write_frame(self.file.as_mut(), &self.path, &frame)?;
        if self.fail_fsync {
            self.fail_fsync = false;
            let cause = "injected fsync failure".to_string();
            self.poisoned = Some(cause.clone());
            return Err(DurableError::Poisoned {
                path: self.path.display().to_string(),
                cause,
            });
        }
        match self.file.fsync() {
            Ok(ticks) => self.stalled += ticks,
            Err(e) => {
                self.poisoned = Some(e.to_string());
                return Err(DurableError::io(&self.path, "fsync", &e));
            }
        }
        Ok(())
    }

    /// Writes only the first `frac` of the record's frame bytes, then syncs —
    /// the on-disk state a `SIGKILL` mid-`write(2)` leaves behind. The crash
    /// injector calls this and then reports [`DurableError::Injected`]; the
    /// next [`Journal::open`] must repair the tear.
    pub fn append_torn(
        &mut self,
        kind: u8,
        seq: u64,
        data: &[u8],
        frac: f64,
    ) -> Result<(), DurableError> {
        self.check_poison()?;
        let frame = encode_record(kind, seq, data);
        let keep = ((frame.len() as f64) * frac.clamp(0.0, 1.0)) as usize;
        let keep = keep.min(frame.len().saturating_sub(1)); // always torn, never whole
        self.file
            .write(&frame[..keep])
            .map_err(|e| DurableError::io(&self.path, "write", &e))?;
        let ticks =
            self.file.fsync().map_err(|e| DurableError::io(&self.path, "fsync", &e))?;
        self.stalled += ticks;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "emoleak-journal-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = scratch("replay");
        let path = dir.join("journal.log");
        let mut j = Journal::create(&path).unwrap();
        j.append(1, 0, b"alpha").unwrap();
        j.append(1, 1, b"beta").unwrap();
        j.append(2, 2, b"").unwrap();
        drop(j);
        let (_j, records, defects) = Journal::open(&path).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert_eq!(
            records,
            vec![
                Record { kind: 1, seq: 0, data: b"alpha".to_vec() },
                Record { kind: 1, seq: 1, data: b"beta".to_vec() },
                Record { kind: 2, seq: 2, data: Vec::new() },
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_append_is_truncated_and_reported() {
        let dir = scratch("torn");
        let path = dir.join("journal.log");
        let mut j = Journal::create(&path).unwrap();
        j.append(1, 0, b"kept").unwrap();
        j.append_torn(1, 1, b"lost to the crash", 0.5).unwrap();
        drop(j);
        let before = std::fs::metadata(&path).unwrap().len();
        let (mut j, records, defects) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].data, b"kept");
        assert!(
            matches!(defects.as_slice(), [Defect::TornTail { .. }]),
            "{defects:?}"
        );
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "tail must be physically truncated");
        // The repaired journal accepts appends and replays cleanly.
        j.append(1, 1, b"retry").unwrap();
        drop(j);
        let (_j, records, defects) = Journal::open(&path).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].data, b"retry");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_record_is_detected() {
        let dir = scratch("flip");
        let path = dir.join("journal.log");
        let mut j = Journal::create(&path).unwrap();
        j.append(1, 0, b"first").unwrap();
        j.append(1, 1, b"second").unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 3; // inside the second record's payload
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let (_j, records, defects) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 1, "only the intact prefix survives");
        assert!(
            matches!(defects.as_slice(), [Defect::CorruptRecord { .. }]),
            "{defects:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_is_format_error_and_future_version_is_version_error() {
        let dir = scratch("header");
        let bad_magic = dir.join("notes.txt");
        std::fs::write(&bad_magic, b"not a journal at all").unwrap();
        assert!(matches!(
            Journal::open(&bad_magic),
            Err(DurableError::Format { .. })
        ));
        let vnext = dir.join("future.log");
        let mut bytes = JOURNAL_MAGIC.to_vec();
        bytes.extend_from_slice(&(JOURNAL_VERSION + 1).to_le_bytes());
        std::fs::write(&vnext, &bytes).unwrap();
        match Journal::open(&vnext) {
            Err(DurableError::Version { found, supported, .. }) => {
                assert_eq!(found, JOURNAL_VERSION + 1);
                assert_eq!(supported, JOURNAL_VERSION);
            }
            other => panic!("expected Version error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_is_read_only_and_reports_damage() {
        let dir = scratch("verify");
        let path = dir.join("journal.log");
        let mut j = Journal::create(&path).unwrap();
        j.append(1, 0, b"kept").unwrap();
        j.append_torn(1, 1, b"half", 0.5).unwrap();
        drop(j);
        let before = std::fs::metadata(&path).unwrap().len();
        let (records, defects) = Journal::verify(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(defects.as_slice(), [Defect::TornTail { .. }]), "{defects:?}");
        // Verify must not repair: the torn tail stays on disk.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
        // A missing file is an I/O error, not an empty journal.
        assert!(matches!(
            Journal::verify(&dir.join("absent.log")),
            Err(DurableError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_fsync_latches_the_handle() {
        let dir = scratch("poison");
        let path = dir.join("journal.log");
        let mut j = Journal::create(&path).unwrap();
        j.append(1, 0, b"committed").unwrap();
        assert!(!j.is_poisoned());
        j.inject_fsync_failure();
        let err = j.append(1, 1, b"unsynced").unwrap_err();
        assert!(matches!(err, DurableError::Poisoned { .. }), "{err}");
        assert!(j.is_poisoned());
        // Latched: every later append is refused without touching the file.
        let len = std::fs::metadata(&path).unwrap().len();
        let err = j.append(1, 2, b"refused").unwrap_err();
        assert!(matches!(err, DurableError::Poisoned { .. }), "{err}");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len);
        drop(j);
        // Reopen re-verifies the tail from disk: the unsynced record's bytes
        // did reach the file (only the sync failed in this injection), so
        // recovery keeps what verifies and the journal accepts appends again.
        let (mut j, records, _defects) = Journal::open(&path).unwrap();
        assert!(!records.is_empty());
        j.append(1, 9, b"after reopen").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn implausible_length_prefix_does_not_allocate() {
        let dir = scratch("hugelen");
        let path = dir.join("journal.log");
        let mut j = Journal::create(&path).unwrap();
        j.append(1, 0, b"ok").unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd len
        bytes.extend_from_slice(&[0u8; 12]);
        std::fs::write(&path, &bytes).unwrap();
        let (_j, records, defects) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(
            matches!(defects.as_slice(), [Defect::CorruptRecord { .. }]),
            "{defects:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
