//! Checkpoint store: snapshot + manifest + journal under one directory,
//! with recovery-on-open and seeded crash injection.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/journal.log    write-ahead journal (units since last snapshot)
//! <dir>/snap-<n>.bin   full state snapshots (latest two are kept)
//! <dir>/manifest.bin   names the last completely-written snapshot
//! ```
//!
//! ## Commit protocol
//!
//! Each completed unit is journaled (append + fsync). Periodically the
//! store snapshots: write `snap-<n+1>.bin` (atomic), replace the manifest
//! (atomic), then reset the journal. A kill between any two steps leaves a
//! state [`CheckpointStore::open`] recovers from:
//!
//! | killed after            | recovery outcome                              |
//! |-------------------------|-----------------------------------------------|
//! | journal append (torn)   | tail truncated, unit recomputed ([`Defect::TornTail`]) |
//! | snapshot staged         | old manifest + old snapshot + journal tail — nothing lost |
//! | snapshot renamed        | manifest still names old snapshot; journal continues it |
//! | manifest renamed        | new snapshot loads; stale journal tail discarded ([`Defect::JournalEpochMismatch`], reported by the campaign layer) |
//!
//! ## Crash injection
//!
//! [`CrashPlan`] models a `SIGKILL` landing at the N-th durable write
//! syscall: the store performs the *partial* effect a killed process would
//! leave (torn journal bytes, staged-but-unrenamed temp file), then returns
//! [`DurableError::Injected`]. The caller must drop the store and reopen —
//! exactly what a restarted process does.

use crate::error::{Defect, DurableError};
use crate::journal::{Journal, Record};
use crate::snapshot::{encode_container, read_container_with, write_container_with};
use crate::vfs::{OsVfs, Vfs};
use crate::wire::{Dec, Enc};
use crate::{MANIFEST_VERSION, SNAPSHOT_VERSION};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Snapshot container magic.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"EMOS";
/// Manifest container magic.
pub const MANIFEST_MAGIC: &[u8; 4] = b"EMOM";

/// The journal file inside a checkpoint directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join("journal.log")
}

/// The manifest file inside a checkpoint directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.bin")
}

/// The `seq`-th snapshot file inside a checkpoint directory.
pub fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq}.bin"))
}

/// What an armed crash point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashKind {
    /// A `SIGKILL` landing at the write syscall: partial bytes reach disk
    /// and the process "dies" (the caller must drop and reopen the store).
    #[default]
    Kill,
    /// `fsync` returns an error but the process survives. The journal
    /// handle latches ([`DurableError::Poisoned`]) and refuses every later
    /// append — the store stays alive but write-dead, exactly like a
    /// process on a dying disk. Only journal appends have an fsync to
    /// fail; at snapshot kill points this kind behaves as [`CrashKind::Kill`].
    FsyncFail,
}

/// A seeded crash point: the `at_op`-th durable write fails exactly as the
/// armed [`CrashKind`] dictates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPlan {
    /// 1-based index of the durable operation to kill (see
    /// [`CheckpointStore::ops`] for the counter).
    pub at_op: u64,
    /// How much of the interrupted write's bytes reach disk (`0.0..1.0`);
    /// only torn journal appends use it, other kill sites are all-or-nothing
    /// at the rename boundary.
    pub partial_frac: f64,
    /// The failure mode injected when the op fires.
    pub kind: CrashKind,
}

impl CrashPlan {
    /// A `SIGKILL` plan: the `at_op`-th durable write is torn after
    /// `partial_frac` of its bytes.
    pub fn kill(at_op: u64, partial_frac: f64) -> CrashPlan {
        CrashPlan { at_op, partial_frac, kind: CrashKind::Kill }
    }

    /// An fsync-failure plan: the `at_op`-th durable write's bytes land but
    /// the sync errors; the process survives with a latched journal.
    pub fn fsync_fail(at_op: u64) -> CrashPlan {
        CrashPlan { at_op, partial_frac: 1.0, kind: CrashKind::FsyncFail }
    }
}

/// A recovered checkpoint store, ready for appends.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    journal: Journal,
    snapshot_seq: u64,
    ops: u64,
    crash: Option<CrashPlan>,
    vfs: Arc<dyn Vfs>,
}

/// The result of [`CheckpointStore::open`]: the store plus everything
/// recovery learned from disk.
#[derive(Debug)]
pub struct Opened {
    /// The store handle.
    pub store: CheckpointStore,
    /// The last valid snapshot's payload, if any snapshot survived.
    pub state: Option<Vec<u8>>,
    /// Committed journal records appended after that snapshot.
    pub tail: Vec<Record>,
    /// Every damage site recovery repaired. Empty after a clean shutdown.
    pub defects: Vec<Defect>,
}

fn manifest_payload(seq: u64) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u64(seq);
    enc.into_bytes()
}

/// Lists the snapshot sequence numbers present in `dir`, newest first.
fn snapshot_seqs(dir: &Path) -> Vec<u64> {
    let mut seqs: Vec<u64> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name().into_string().ok()?;
            let seq = name.strip_prefix("snap-")?.strip_suffix(".bin")?;
            seq.parse().ok()
        })
        .collect();
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    seqs
}

impl CheckpointStore {
    /// Opens (creating if needed) the checkpoint directory, verifies and
    /// repairs its contents, and returns the last valid state.
    ///
    /// The recovery chain: manifest → the snapshot it names → (on damage)
    /// the newest snapshot that verifies → fresh state. Every fallback step
    /// is reported as a [`Defect`]; only unrepairable conditions (I/O
    /// failure, a journal that is not ours, future format versions endorsed
    /// by the manifest) are `Err`.
    pub fn open(dir: &Path) -> Result<Opened, DurableError> {
        CheckpointStore::open_with(dir, Arc::new(OsVfs))
    }

    /// [`CheckpointStore::open`] with every durable byte — journal appends,
    /// snapshot stages, manifest replacements — routed through `vfs`.
    /// Directory creation and snapshot pruning stay on `std::fs`: they are
    /// metadata housekeeping, not committed bytes.
    pub fn open_with(dir: &Path, vfs: Arc<dyn Vfs>) -> Result<Opened, DurableError> {
        std::fs::create_dir_all(dir).map_err(|e| DurableError::io(dir, "mkdir", &e))?;
        let (journal, tail, mut defects) = Journal::open_with(&journal_path(dir), vfs.as_ref())?;

        let manifest = manifest_path(dir);
        let mut state = None;
        let mut snapshot_seq = 0;
        let mut scan = false;
        if manifest.exists() {
            match read_container_with(MANIFEST_MAGIC, MANIFEST_VERSION, &manifest, vfs.as_ref())
                .and_then(|payload| {
                    let mut dec = Dec::new(&payload);
                    let seq = dec.u64().and_then(|s| dec.finish().map(|()| s)).map_err(
                        |e| DurableError::Corrupt {
                            path: manifest.display().to_string(),
                            offset: e.offset,
                            detail: e.detail,
                        },
                    )?;
                    Ok(seq)
                }) {
                Ok(seq) => match read_container_with(
                    SNAPSHOT_MAGIC,
                    SNAPSHOT_VERSION,
                    &snapshot_path(dir, seq),
                    vfs.as_ref(),
                ) {
                    Ok(payload) => {
                        state = Some(payload);
                        snapshot_seq = seq;
                    }
                    // A manifest-endorsed snapshot from a future build is
                    // fatal: falling back past newer data would silently
                    // lose it.
                    Err(e @ DurableError::Version { .. }) => return Err(e),
                    Err(_) => {
                        defects.push(Defect::ManifestStale {
                            path: manifest.display().to_string(),
                            snapshot: seq,
                        });
                        scan = true;
                    }
                },
                Err(e @ DurableError::Version { .. }) => return Err(e),
                Err(e) => {
                    defects.push(Defect::ManifestInvalid {
                        path: manifest.display().to_string(),
                        detail: e.to_string(),
                    });
                    scan = true;
                }
            }
        } else if !snapshot_seqs(dir).is_empty() {
            // Snapshots without a manifest: killed before the first manifest
            // write, or the manifest was deleted externally.
            defects.push(Defect::ManifestInvalid {
                path: manifest.display().to_string(),
                detail: "manifest missing but snapshots exist".into(),
            });
            scan = true;
        }

        if scan {
            for seq in snapshot_seqs(dir) {
                let path = snapshot_path(dir, seq);
                match read_container_with(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &path, vfs.as_ref()) {
                    Ok(payload) => {
                        state = Some(payload);
                        snapshot_seq = seq;
                        break;
                    }
                    Err(e) => defects.push(Defect::SnapshotInvalid {
                        path: path.display().to_string(),
                        detail: e.to_string(),
                    }),
                }
            }
        }

        Ok(Opened {
            store: CheckpointStore {
                dir: dir.to_path_buf(),
                journal,
                snapshot_seq,
                ops: 0,
                crash: None,
                vfs,
            },
            state,
            tail,
            defects,
        })
    }

    /// Arms (or disarms) a seeded kill point. The op counter keeps running
    /// across calls; op numbering is documented on [`CheckpointStore::ops`].
    pub fn arm_crash(&mut self, plan: Option<CrashPlan>) {
        self.crash = plan;
    }

    /// Durable operations performed so far. Appends count one op each;
    /// every [`CheckpointStore::snapshot`] counts three (snapshot file,
    /// manifest file, journal reset) — the kill points a [`CrashPlan`] can
    /// target.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The sequence number of the last completed snapshot (0 if none).
    pub fn snapshot_seq(&self) -> u64 {
        self.snapshot_seq
    }

    fn fire(&mut self, op: u64) -> Option<CrashPlan> {
        match self.crash {
            Some(plan) if plan.at_op == op => Some(plan),
            _ => None,
        }
    }

    /// Journals one record (append + fsync). On `Ok`, the record is
    /// committed and survives any later kill.
    ///
    /// # Errors
    ///
    /// [`DurableError::Injected`] when an armed [`CrashPlan`] targets this
    /// op — a [`CrashKind::Kill`] leaves a torn partial write and the store
    /// must be dropped and reopened; a [`CrashKind::FsyncFail`] latches the
    /// journal, so this and every later append fail while the store stays
    /// open ([`DurableError::Poisoned`] after the first).
    /// [`DurableError::Io`] on real I/O failure.
    pub fn append(&mut self, kind: u8, seq: u64, data: &[u8]) -> Result<(), DurableError> {
        self.ops += 1;
        let op = self.ops;
        if let Some(plan) = self.fire(op) {
            match plan.kind {
                CrashKind::Kill => {
                    self.journal.append_torn(kind, seq, data, plan.partial_frac)?;
                    return Err(DurableError::Injected {
                        op,
                        detail: format!("journal append of record seq {seq} torn mid-write"),
                    });
                }
                CrashKind::FsyncFail => {
                    self.journal.inject_fsync_failure();
                    return match self.journal.append(kind, seq, data) {
                        Err(DurableError::Poisoned { .. }) => Err(DurableError::Injected {
                            op,
                            detail: format!(
                                "fsync of record seq {seq} failed; journal latched"
                            ),
                        }),
                        other => other,
                    };
                }
            }
        }
        self.journal.append(kind, seq, data)
    }

    /// Checkpoints the full `state`: writes the next snapshot, points the
    /// manifest at it, resets the journal, and prunes snapshots older than
    /// the previous one. Three counted kill points (see
    /// [`CheckpointStore::ops`]).
    ///
    /// # Errors
    ///
    /// [`DurableError::Injected`] at an armed kill point — the on-disk state
    /// is whatever a `SIGKILL` there would leave, and the store must be
    /// dropped and reopened. [`DurableError::Io`] on real I/O failure.
    pub fn snapshot(&mut self, state: &[u8]) -> Result<(), DurableError> {
        let seq = self.snapshot_seq + 1;
        let snap = snapshot_path(&self.dir, seq);

        self.ops += 1;
        if self.fire(self.ops).is_some() {
            // Killed between the temp-file fsync and the rename: the staged
            // file exists, the destination does not change.
            crate::atomic::stage_only_with(
                &snap,
                &encode_container(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, state),
                self.vfs.as_ref(),
            )?;
            return Err(DurableError::Injected {
                op: self.ops,
                detail: format!("snapshot #{seq} staged but not renamed"),
            });
        }
        write_container_with(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &snap, state, self.vfs.as_ref())?;

        let manifest = manifest_path(&self.dir);
        self.ops += 1;
        if self.fire(self.ops).is_some() {
            crate::atomic::stage_only_with(
                &manifest,
                &encode_container(MANIFEST_MAGIC, MANIFEST_VERSION, &manifest_payload(seq)),
                self.vfs.as_ref(),
            )?;
            return Err(DurableError::Injected {
                op: self.ops,
                detail: format!("manifest update to snapshot #{seq} staged but not renamed"),
            });
        }
        write_container_with(
            MANIFEST_MAGIC,
            MANIFEST_VERSION,
            &manifest,
            &manifest_payload(seq),
            self.vfs.as_ref(),
        )?;

        self.ops += 1;
        if self.fire(self.ops).is_some() {
            // Killed before the journal reset: the journal still holds the
            // records the new snapshot already covers. Recovery discards
            // them via the epoch check.
            return Err(DurableError::Injected {
                op: self.ops,
                detail: format!("journal reset after snapshot #{seq} skipped"),
            });
        }
        self.journal = Journal::create_with(&journal_path(&self.dir), self.vfs.as_ref())?;
        self.snapshot_seq = seq;

        // Keep the latest two snapshots so one bad snapshot always has a
        // fallback; pruning is best-effort (a leftover file is harmless).
        for old in snapshot_seqs(&self.dir) {
            if old + 1 < seq {
                let _ = std::fs::remove_file(snapshot_path(&self.dir, old));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_container;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "emoleak-store-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_open_then_snapshot_then_reopen() {
        let dir = scratch("fresh");
        let opened = CheckpointStore::open(&dir).unwrap();
        assert!(opened.state.is_none() && opened.tail.is_empty() && opened.defects.is_empty());
        let mut store = opened.store;
        store.append(1, 0, b"unit0").unwrap();
        store.append(1, 1, b"unit1").unwrap();
        store.snapshot(b"state@2").unwrap();
        store.append(1, 2, b"unit2").unwrap();
        drop(store);

        let opened = CheckpointStore::open(&dir).unwrap();
        assert!(opened.defects.is_empty(), "{:?}", opened.defects);
        assert_eq!(opened.state.as_deref(), Some(b"state@2".as_slice()));
        assert_eq!(opened.tail.len(), 1);
        assert_eq!(opened.tail[0].seq, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_on_append_is_torn_and_recovered() {
        let dir = scratch("crash-append");
        let mut store = CheckpointStore::open(&dir).unwrap().store;
        store.append(1, 0, b"committed").unwrap();
        store.arm_crash(Some(CrashPlan::kill(2, 0.4)));
        let err = store.append(1, 1, b"torn away").unwrap_err();
        assert!(err.is_injected(), "{err}");
        drop(store);

        let opened = CheckpointStore::open(&dir).unwrap();
        assert_eq!(opened.tail.len(), 1, "only the committed record survives");
        assert!(
            opened.defects.iter().any(|d| matches!(d, Defect::TornTail { .. })),
            "{:?}",
            opened.defects
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_at_each_snapshot_step_recovers() {
        // Kill points: op 3 = snapshot stage, op 4 = manifest stage, op 5 =
        // journal-reset skip. Each must reopen to a usable state. Op 3
        // leaves only a staged temp file (old state wins, cleanly); op 4
        // leaves an orphan snapshot that the scan finds (with a defect
        // flagging the missing manifest); op 5 leaves snapshot + manifest
        // complete but a stale journal for the epoch check to discard.
        for (kill_op, expect_state, expect_defect) in [
            (3, None, false),
            (4, Some(b"state@1".as_slice()), true),
            (5, Some(b"state@1".as_slice()), false),
        ] {
            let dir = scratch(&format!("crash-snap-{kill_op}"));
            let mut store = CheckpointStore::open(&dir).unwrap().store;
            store.append(1, 0, b"u0").unwrap();
            store.append(1, 1, b"u1").unwrap();
            store.arm_crash(Some(CrashPlan::kill(kill_op, 0.5)));
            let err = store.snapshot(b"state@1").unwrap_err();
            assert!(err.is_injected(), "op {kill_op}: {err}");
            drop(store);

            let opened = CheckpointStore::open(&dir).unwrap();
            assert_eq!(opened.state.as_deref(), expect_state, "kill at op {kill_op}");
            // In every case the journal was not reset: both committed
            // records must still replay (the campaign layer decides, via
            // the epoch check, whether they extend the recovered state).
            assert_eq!(opened.tail.len(), 2, "kill at op {kill_op}");
            assert_eq!(
                opened.defects.iter().any(|d| matches!(d, Defect::ManifestInvalid { .. })),
                expect_defect,
                "kill at op {kill_op}: {:?}",
                opened.defects
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn corrupt_manifest_falls_back_to_scan() {
        let dir = scratch("bad-manifest");
        let mut store = CheckpointStore::open(&dir).unwrap().store;
        store.append(1, 0, b"u0").unwrap();
        store.snapshot(b"good state").unwrap();
        drop(store);
        // Flip a bit inside the manifest payload.
        let m = manifest_path(&dir);
        let mut bytes = std::fs::read(&m).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&m, &bytes).unwrap();

        let opened = CheckpointStore::open(&dir).unwrap();
        assert_eq!(opened.state.as_deref(), Some(b"good state".as_slice()));
        assert!(
            opened.defects.iter().any(|d| matches!(d, Defect::ManifestInvalid { .. })),
            "{:?}",
            opened.defects
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_manifest_falls_back_to_newest_valid_snapshot() {
        let dir = scratch("stale-manifest");
        let mut store = CheckpointStore::open(&dir).unwrap().store;
        store.snapshot(b"state@1").unwrap();
        drop(store);
        // Point the manifest at a snapshot that does not exist.
        write_container(MANIFEST_MAGIC, MANIFEST_VERSION, &manifest_path(&dir), &manifest_payload(99))
            .unwrap();

        let opened = CheckpointStore::open(&dir).unwrap();
        assert_eq!(opened.state.as_deref(), Some(b"state@1".as_slice()));
        assert!(
            opened.defects.iter().any(|d| matches!(d, Defect::ManifestStale { snapshot: 99, .. })),
            "{:?}",
            opened.defects
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_previous() {
        let dir = scratch("bad-snap");
        let mut store = CheckpointStore::open(&dir).unwrap().store;
        store.snapshot(b"state@1").unwrap();
        store.snapshot(b"state@2").unwrap();
        drop(store);
        // Truncate the newest snapshot mid-payload.
        let snap2 = snapshot_path(&dir, 2);
        let bytes = std::fs::read(&snap2).unwrap();
        std::fs::write(&snap2, &bytes[..bytes.len() - 2]).unwrap();

        let opened = CheckpointStore::open(&dir).unwrap();
        assert_eq!(
            opened.state.as_deref(),
            Some(b"state@1".as_slice()),
            "must fall back to the previous snapshot"
        );
        assert!(
            opened.defects.iter().any(|d| matches!(d, Defect::ManifestStale { snapshot: 2, .. })),
            "{:?}",
            opened.defects
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_version_snapshot_named_by_manifest_is_fatal() {
        let dir = scratch("vnext");
        let mut store = CheckpointStore::open(&dir).unwrap().store;
        store.snapshot(b"state@1").unwrap();
        drop(store);
        let snap = snapshot_path(&dir, 1);
        let vnext = encode_container(SNAPSHOT_MAGIC, SNAPSHOT_VERSION + 1, b"future state");
        std::fs::write(&snap, &vnext).unwrap();
        assert!(matches!(
            CheckpointStore::open(&dir),
            Err(DurableError::Version { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshots_are_pruned_to_two() {
        let dir = scratch("prune");
        let mut store = CheckpointStore::open(&dir).unwrap().store;
        for i in 1..=5u64 {
            store.snapshot(format!("state@{i}").as_bytes()).unwrap();
        }
        assert_eq!(snapshot_seqs(&dir), vec![5, 4]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
