//! Crash-safe durability for EmoLeak campaigns and services.
//!
//! Long multi-corpus campaigns (Tables III–VII) and the streaming service
//! must survive being killed — by the OS, the scheduler, or a chaos
//! harness — without losing committed work or ever serving corrupt data.
//! This crate provides the whole stack:
//!
//! - [`write_atomic`] — torn-file-proof replacement for `std::fs::write`
//!   (temp file + fsync + rename + directory fsync);
//! - [`Journal`] — a write-ahead log of length-prefixed, CRC32-checksummed,
//!   versioned records with append + fsync commit semantics and
//!   truncate-to-last-valid recovery;
//! - [`CheckpointStore`] — snapshot + manifest + journal under one
//!   directory, with a typed recovery chain (manifest → named snapshot →
//!   newest valid snapshot → fresh) and seeded [`CrashPlan`] kill points;
//! - [`run_resumable`] — chunked campaign execution that journals each
//!   completed unit and resumes from the recovered cursor, byte-identical
//!   to an uninterrupted run thanks to the `emoleak-exec` per-index seed
//!   derivation.
//!
//! Failures are always typed: [`DurableError`] for fatal conditions,
//! [`Defect`] for damage that recovery detected *and repaired*. Nothing in
//! this crate panics on corrupt input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod campaign;
pub mod error;
pub mod journal;
pub mod ship;
pub mod snapshot;
pub mod store;
pub mod vfs;
pub mod wire;

/// Current journal format version (header field in `journal.log`).
pub const JOURNAL_VERSION: u16 = 1;
/// Current snapshot container version (`snap-<n>.bin`).
pub const SNAPSHOT_VERSION: u16 = 1;
/// Current manifest container version (`manifest.bin`).
pub const MANIFEST_VERSION: u16 = 1;
/// Current ship segment version (replication transfer container).
pub const SHIP_VERSION: u16 = 1;

pub use atomic::{temp_path, write_atomic, write_atomic_with};
pub use campaign::{
    run_resumable, CampaignError, CampaignSpec, CampaignState, Outcome, RunOptions, REC_UNIT,
};
pub use error::{Defect, DurableError};
pub use journal::{Journal, Record, JOURNAL_MAGIC};
pub use ship::{
    compare_streams, decode_segment, encode_segment, rebuild_journal, rebuild_journal_with,
    StreamDiff, SHIP_MAGIC,
};
pub use snapshot::{
    decode_container, encode_container, read_container, read_container_with, write_container,
    write_container_with,
};
pub use store::{
    journal_path, manifest_path, snapshot_path, CheckpointStore, CrashKind, CrashPlan, Opened,
    MANIFEST_MAGIC, SNAPSHOT_MAGIC,
};
pub use vfs::{FaultPlan, FaultVfs, OsVfs, Vfs, VfsFile};
pub use wire::{crc32, Dec, Enc, WireError};
