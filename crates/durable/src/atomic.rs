//! Atomic file replacement: temp file + fsync + rename.
//!
//! A plain `std::fs::write` interrupted mid-way leaves a torn file under
//! the *final* name — exactly the failure the bench bins used to have for
//! `results/*.json`. [`write_atomic`] makes the rename the commit point:
//!
//! 1. write the full contents to a sibling `.tmp` file,
//! 2. `fsync` that file (data reaches the platter before the name does),
//! 3. `rename` it over the destination (atomic on POSIX),
//! 4. `fsync` the parent directory (the rename itself is durable).
//!
//! A crash before step 3 leaves the old file untouched plus an ignorable
//! `.tmp`; a crash after leaves the new file complete. No interleaving
//! exposes a half-written file under the destination name.

use crate::error::DurableError;
use crate::vfs::{OsVfs, Vfs};
use std::path::{Path, PathBuf};

/// The sibling temp path `write_atomic` stages through (`<name>.tmp` in the
/// same directory — rename is only atomic within one filesystem).
pub fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `contents` to the staged temp file and syncs it, *without*
/// renaming — the prefix of [`write_atomic`] that a process killed between
/// write and rename would have executed; the crash injector uses it to
/// leave exactly that state behind. A short write or ENOSPC mid-stage
/// tears only the `.tmp` file — the destination stays untouched, which is
/// precisely the atomicity guarantee the proptest suite pins under fault
/// injection.
pub(crate) fn stage_only_with(
    path: &Path,
    contents: &[u8],
    vfs: &dyn Vfs,
) -> Result<(), DurableError> {
    let tmp = temp_path(path);
    let mut file = vfs.open(&tmp, true).map_err(|e| DurableError::io(&tmp, "open", &e))?;
    let n = file.write(contents).map_err(|e| DurableError::io(&tmp, "write", &e))?;
    if n < contents.len() {
        return Err(DurableError::Io {
            path: tmp.display().to_string(),
            op: "write",
            message: format!("short write: {n} of {} byte(s) reached disk", contents.len()),
        });
    }
    file.fsync().map_err(|e| DurableError::io(&tmp, "fsync", &e))?;
    Ok(())
}

/// Atomically replaces `path` with `contents` (temp file + fsync + rename +
/// directory fsync). Readers never observe a torn file: they see either the
/// old contents or the new, complete ones.
///
/// # Errors
///
/// Returns [`DurableError::Io`] when any step fails; the destination is
/// untouched in that case (the stale `.tmp`, if any, is ignorable and will
/// be overwritten by the next attempt).
pub fn write_atomic(path: &Path, contents: &[u8]) -> Result<(), DurableError> {
    write_atomic_with(path, contents, &OsVfs)
}

/// [`write_atomic`] with every durable byte routed through `vfs`. The
/// directory fsync stays best-effort: directory handles are not openable
/// on every platform, and a failure there narrows durability without
/// breaking atomicity.
pub fn write_atomic_with(path: &Path, contents: &[u8], vfs: &dyn Vfs) -> Result<(), DurableError> {
    stage_only_with(path, contents, vfs)?;
    let tmp = temp_path(path);
    vfs.rename(&tmp, path).map_err(|e| DurableError::io(path, "rename", &e))?;
    let _ = vfs.sync_dir(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "emoleak-atomic-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch("replace");
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        assert!(!temp_path(&path).exists(), "temp file must not linger");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stage_only_leaves_destination_untouched() {
        let dir = scratch("stage");
        let path = dir.join("out.json");
        write_atomic(&path, b"committed").unwrap();
        stage_only_with(&path, b"in flight", &OsVfs).unwrap();
        // The kill-between-write-and-rename state: old contents intact,
        // temp file present.
        assert_eq!(std::fs::read(&path).unwrap(), b"committed");
        assert_eq!(std::fs::read(temp_path(&path)).unwrap(), b"in flight");
        // The next attempt recovers by simply overwriting the temp file.
        write_atomic(&path, b"recovered").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"recovered");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_parent_is_a_typed_error() {
        let path = PathBuf::from("/nonexistent-emoleak-dir/out.json");
        let err = write_atomic(&path, b"x").unwrap_err();
        assert!(matches!(err, DurableError::Io { .. }), "{err}");
    }
}
