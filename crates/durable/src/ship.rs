//! Segment-shipping codec for journal replication ("EMOR" segments).
//!
//! Replication moves committed journal records from a primary shard to its
//! follower. The unit of transfer is a *segment*: a self-verifying byte
//! container holding a batch of [`Record`]s in append order.
//!
//! ## On-disk / on-wire format
//!
//! ```text
//! header   : magic "EMOR" (4) | version u16 LE (2) | count u64 LE (8)
//! frame    : len u32 LE (4) | crc u32 LE (4) | payload (len bytes)
//! payload  : kind u8 (1) | seq u64 LE (8) | data (len - 9 bytes)
//! ```
//!
//! Frames reuse the journal's record framing (CRC-32 over the payload), so
//! a segment survives the same damage model: truncation mid-frame decodes
//! to the valid prefix plus a [`Defect::TornTail`], a flipped bit to the
//! prefix plus a [`Defect::CorruptRecord`]. Decoding never panics and never
//! allocates from an implausible length prefix. The `count` field lets the
//! receiver distinguish "short segment by design" from "short segment by
//! damage" even when the tail tears exactly on a frame boundary.
//!
//! The comparison primitive [`compare_streams`] classifies a replica
//! against its primary: identical, a strict prefix ([`StreamDiff::ReplicaLag`],
//! the normal state right after a crash mid-ship), or diverged at a record
//! index ([`StreamDiff::Diverged`], bit rot or a torn ship). The scrubber
//! maps these onto [`Defect::ReplicaLag`] / [`Defect::ReplicaDiverged`] and
//! repairs by re-shipping ([`rebuild_journal`]).

use crate::error::{Defect, DurableError};
use crate::journal::{encode_record, scan_frames, Journal, Record};
use crate::wire::Enc;
use crate::SHIP_VERSION;
use std::path::Path;

/// Ship segment magic.
pub const SHIP_MAGIC: &[u8; 4] = b"EMOR";

/// Header length: magic + version + record count.
const HEADER_LEN: usize = 14;

/// Encodes `records` as one self-verifying ship segment.
pub fn encode_segment(records: &[Record]) -> Vec<u8> {
    let mut bytes = SHIP_MAGIC.to_vec();
    let mut header = Enc::new();
    header.u16(SHIP_VERSION).u64(records.len() as u64);
    bytes.extend_from_slice(&header.into_bytes());
    for r in records {
        bytes.extend_from_slice(&encode_record(r.kind, r.seq, &r.data));
    }
    bytes
}

/// Decodes a ship segment, tolerating a damaged tail.
///
/// Returns the records that verify (always a prefix, in shipped order) and
/// the defects found: a torn tail or corrupt frame stops the scan with the
/// matching [`Defect`], and a frame count short of the header's promise is
/// reported as a [`Defect::TornTail`] even when the truncation landed
/// exactly on a frame boundary.
///
/// # Errors
///
/// [`DurableError::Format`] if the magic is wrong (the bytes are not a
/// segment at all), [`DurableError::Version`] if written by a newer build.
/// Damage after a valid header is a defect, not an error.
pub fn decode_segment(bytes: &[u8], origin: &str) -> Result<(Vec<Record>, Vec<Defect>), DurableError> {
    if bytes.len() < HEADER_LEN || &bytes[..4] != SHIP_MAGIC {
        return Err(DurableError::Format {
            path: origin.to_string(),
            detail: "ship segment magic mismatch (expected \"EMOR\")".into(),
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version > SHIP_VERSION {
        return Err(DurableError::Version {
            path: origin.to_string(),
            found: version,
            supported: SHIP_VERSION,
        });
    }
    let count = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));
    let (records, mut defects, committed) = scan_frames(bytes, HEADER_LEN, origin);
    if defects.is_empty() && (records.len() as u64) < count {
        // The scan ran clean but stopped short of the promised count: the
        // segment was truncated exactly on a frame boundary.
        defects.push(Defect::TornTail {
            path: origin.to_string(),
            offset: committed as u64,
            lost: 0,
        });
    }
    Ok((records, defects))
}

/// How a replica's record stream relates to its primary's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamDiff {
    /// Record-for-record identical.
    Identical,
    /// The replica is a strict prefix of the primary — the normal state
    /// after a crash between primary commit and replica ship, or while a
    /// fresh follower catches up.
    ReplicaLag {
        /// Records the replica is missing.
        missing: u64,
    },
    /// The replica's record at index `at` differs from the primary's (or
    /// the replica has records the primary never wrote).
    Diverged {
        /// 0-based index of the first divergence.
        at: u64,
    },
}

/// Classifies `replica` against `primary` record-by-record.
///
/// Replication ships synchronously *after* the primary commit, so a
/// replica can legitimately trail but never lead: extra replica records
/// beyond the primary's stream are divergence, not lag.
pub fn compare_streams(primary: &[Record], replica: &[Record]) -> StreamDiff {
    for (i, (p, r)) in primary.iter().zip(replica.iter()).enumerate() {
        if p != r {
            return StreamDiff::Diverged { at: i as u64 };
        }
    }
    match replica.len().cmp(&primary.len()) {
        std::cmp::Ordering::Less => {
            StreamDiff::ReplicaLag { missing: (primary.len() - replica.len()) as u64 }
        }
        std::cmp::Ordering::Equal => StreamDiff::Identical,
        std::cmp::Ordering::Greater => StreamDiff::Diverged { at: primary.len() as u64 },
    }
}

/// Rebuilds the journal at `path` from scratch to hold exactly `records`.
///
/// The read-repair primitive: used when a replica diverged (full rebuild
/// from the primary's stream) and when a follower change re-homes a
/// replica onto a new shard. Each record is appended with full commit
/// semantics, so a crash mid-rebuild leaves a valid prefix that the next
/// scrub pass finishes.
pub fn rebuild_journal(path: &Path, records: &[Record]) -> Result<Journal, DurableError> {
    rebuild_journal_with(path, records, &crate::vfs::OsVfs)
}

/// [`rebuild_journal`] with every durable byte routed through `vfs` — so a
/// scrub repair running on a sick disk hits the same ENOSPC/EIO faults as
/// the appends it is repairing.
pub fn rebuild_journal_with(
    path: &Path,
    records: &[Record],
    vfs: &dyn crate::vfs::Vfs,
) -> Result<Journal, DurableError> {
    let mut journal = Journal::create_with(path, vfs)?;
    for r in records {
        journal.append(r.kind, r.seq, &r.data)?;
    }
    Ok(journal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record {
                kind: (i % 3) as u8 + 1,
                seq: i,
                data: format!("payload-{i}").into_bytes(),
            })
            .collect()
    }

    #[test]
    fn segment_round_trips() {
        for n in [0u64, 1, 7] {
            let records = batch(n);
            let bytes = encode_segment(&records);
            let (decoded, defects) = decode_segment(&bytes, "<memory>").unwrap();
            assert!(defects.is_empty(), "{defects:?}");
            assert_eq!(decoded, records);
        }
    }

    #[test]
    fn truncation_yields_prefix_and_torn_tail() {
        let records = batch(4);
        let bytes = encode_segment(&records);
        // Cut mid-way through the last frame.
        let cut = bytes.len() - 5;
        let (decoded, defects) = decode_segment(&bytes[..cut], "<memory>").unwrap();
        assert_eq!(decoded, records[..3]);
        assert!(matches!(defects.as_slice(), [Defect::TornTail { .. }]), "{defects:?}");
    }

    #[test]
    fn frame_boundary_truncation_is_still_detected() {
        // Drop the whole last frame: the scan runs clean but the header's
        // count exposes the loss.
        let records = batch(3);
        let full = encode_segment(&records);
        let short = encode_segment(&records[..2]);
        let frame_len = full.len() - (short.len() - HEADER_LEN) - HEADER_LEN;
        let _ = frame_len;
        let mut cut = full.clone();
        cut.truncate(HEADER_LEN + (short.len() - HEADER_LEN));
        let (decoded, defects) = decode_segment(&cut, "<memory>").unwrap();
        assert_eq!(decoded, records[..2]);
        assert!(matches!(defects.as_slice(), [Defect::TornTail { lost: 0, .. }]), "{defects:?}");
    }

    #[test]
    fn bit_flip_yields_prefix_and_corrupt_record() {
        let records = batch(3);
        let mut bytes = encode_segment(&records);
        let mid = bytes.len() - 4; // inside the last frame's payload
        bytes[mid] ^= 0x40;
        let (decoded, defects) = decode_segment(&bytes, "<memory>").unwrap();
        assert_eq!(decoded, records[..2]);
        assert!(matches!(defects.as_slice(), [Defect::CorruptRecord { .. }]), "{defects:?}");
    }

    #[test]
    fn wrong_magic_and_future_version_are_typed_errors() {
        assert!(matches!(
            decode_segment(b"not a segment!", "<memory>"),
            Err(DurableError::Format { .. })
        ));
        let mut bytes = SHIP_MAGIC.to_vec();
        let mut header = Enc::new();
        header.u16(SHIP_VERSION + 1).u64(0);
        bytes.extend_from_slice(&header.into_bytes());
        assert!(matches!(
            decode_segment(&bytes, "<memory>"),
            Err(DurableError::Version { .. })
        ));
    }

    #[test]
    fn compare_streams_classifies_all_three_shapes() {
        let primary = batch(4);
        assert_eq!(compare_streams(&primary, &primary), StreamDiff::Identical);
        assert_eq!(
            compare_streams(&primary, &primary[..2]),
            StreamDiff::ReplicaLag { missing: 2 }
        );
        let mut diverged = primary.clone();
        diverged[1].data = b"tampered".to_vec();
        assert_eq!(compare_streams(&primary, &diverged), StreamDiff::Diverged { at: 1 });
        // A replica that leads its primary is divergence, not lag.
        let mut ahead = primary.clone();
        ahead.push(Record { kind: 1, seq: 99, data: Vec::new() });
        assert_eq!(compare_streams(&primary, &ahead), StreamDiff::Diverged { at: 4 });
    }

    #[test]
    fn rebuild_journal_replays_byte_identically() {
        let dir = std::env::temp_dir().join(format!("emoleak-ship-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let records = batch(5);
        let a = dir.join("a.log");
        let b = dir.join("b.log");
        drop(rebuild_journal(&a, &records).unwrap());
        drop(rebuild_journal(&b, &records).unwrap());
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        let (replayed, defects) = Journal::verify(&a).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert_eq!(replayed, records);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
