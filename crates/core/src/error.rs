//! Typed errors for the attack pipeline.
//!
//! The library boundary never panics on degenerate-but-constructible inputs
//! (an empty corpus, a fault profile that drops every sample, a dataset too
//! small to split): [`AttackScenario::harvest`](crate::AttackScenario::harvest)
//! and the `evaluate_*` functions return `Result<_, EmoleakError>` so callers
//! — in particular severity sweeps that intentionally push the channel past
//! usability — can account for failures instead of crashing.

use emoleak_dsp::DspError;

/// Identifies the corpus clip an error surfaced from, so a single bad
/// utterance in a thousand-clip campaign is diagnosable from the error
/// alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClipContext {
    /// The corpus being played (e.g. `TESS`).
    pub corpus: String,
    /// Speaker index within the corpus.
    pub speaker: u32,
    /// The acted emotion of the clip.
    pub emotion: String,
    /// Clip index within the campaign (`CorpusSpec::clip_at` order).
    pub clip: usize,
}

impl core::fmt::Display for ClipContext {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "corpus {} speaker {} emotion {} clip #{}",
            self.corpus, self.speaker, self.emotion, self.clip
        )
    }
}

/// Errors produced by the harvest/evaluation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EmoleakError {
    /// A DSP stage rejected its input.
    Dsp(DspError),
    /// The campaign produced no usable speech regions or features
    /// (e.g. the channel was fully degraded by faults or damping).
    EmptyHarvest(String),
    /// The dataset is too small or class-starved to train and evaluate.
    DegenerateDataset(String),
    /// A clip carried an emotion label missing from the corpus's class set.
    UnknownLabel(String),
    /// An `EMOLEAK_*` environment knob is set to a malformed or
    /// out-of-range value (e.g. `EMOLEAK_THREADS=abc`). Never silently
    /// defaulted: a set knob either applies or errors.
    Config(String),
    /// The durability layer failed while checkpointing or resuming a
    /// campaign (carried as a rendered message so `emoleak-core` does not
    /// depend on `emoleak-durable`; the typed `DurableError` is available
    /// to callers that use that crate directly).
    Durable(String),
    /// The ingest layer rejected hostile or corrupt input — NaN/Inf
    /// samples, non-monotonic or duplicate timestamps — before it could
    /// reach DSP (see [`emoleak_phone::replay::InputDefect`]).
    HostileInput(emoleak_phone::replay::InputDefect),
    /// A model layer rejected its input's shape (see
    /// [`emoleak_ml::nn::ShapeError`]): typed instead of a panic so the
    /// online path can degrade to a cheaper rung.
    Shape(emoleak_ml::nn::ShapeError),
    /// An error localized to one corpus clip, wrapped with the clip's
    /// identity so the failing utterance is diagnosable from the error
    /// alone.
    InClip {
        /// Which clip the error surfaced from.
        context: ClipContext,
        /// The underlying error.
        source: Box<EmoleakError>,
    },
}

impl EmoleakError {
    /// Wraps this error with the identity of the clip it surfaced from.
    /// An error already carrying clip context is returned unchanged (the
    /// innermost clip is the diagnostic one).
    #[must_use]
    pub fn in_clip(self, context: ClipContext) -> EmoleakError {
        match self {
            e @ EmoleakError::InClip { .. } => e,
            e => EmoleakError::InClip { context, source: Box::new(e) },
        }
    }
}

impl core::fmt::Display for EmoleakError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EmoleakError::Dsp(e) => write!(f, "dsp error: {e}"),
            EmoleakError::EmptyHarvest(why) => write!(f, "empty harvest: {why}"),
            EmoleakError::DegenerateDataset(why) => {
                write!(f, "degenerate dataset: {why}")
            }
            EmoleakError::UnknownLabel(label) => {
                write!(f, "unknown emotion label: {label}")
            }
            EmoleakError::Config(why) => write!(f, "bad configuration: {why}"),
            EmoleakError::Durable(why) => write!(f, "durability error: {why}"),
            EmoleakError::HostileInput(defect) => {
                write!(f, "hostile input rejected: {defect}")
            }
            EmoleakError::Shape(e) => write!(f, "model shape mismatch: {e}"),
            EmoleakError::InClip { context, source } => {
                write!(f, "{source} ({context})")
            }
        }
    }
}

impl std::error::Error for EmoleakError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmoleakError::InClip { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<emoleak_exec::EnvError> for EmoleakError {
    fn from(e: emoleak_exec::EnvError) -> Self {
        EmoleakError::Config(e.to_string())
    }
}

impl From<DspError> for EmoleakError {
    fn from(e: DspError) -> Self {
        EmoleakError::Dsp(e)
    }
}

impl From<emoleak_phone::replay::InputDefect> for EmoleakError {
    fn from(d: emoleak_phone::replay::InputDefect) -> Self {
        EmoleakError::HostileInput(d)
    }
}

impl From<emoleak_ml::nn::ShapeError> for EmoleakError {
    fn from(e: emoleak_ml::nn::ShapeError) -> Self {
        EmoleakError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = EmoleakError::DegenerateDataset("3 rows".into());
        assert!(e.to_string().contains("3 rows"));
        let e: EmoleakError = DspError::EmptyInput.into();
        assert!(matches!(e, EmoleakError::Dsp(_)));
        assert!(e.to_string().starts_with("dsp error"));
    }

    fn ctx() -> ClipContext {
        ClipContext { corpus: "TESS".into(), speaker: 1, emotion: "anger".into(), clip: 17 }
    }

    #[test]
    fn clip_context_is_visible_in_the_message() {
        let e = EmoleakError::UnknownLabel("surprise".into()).in_clip(ctx());
        let msg = e.to_string();
        assert!(msg.contains("surprise"), "{msg}");
        assert!(msg.contains("TESS"), "{msg}");
        assert!(msg.contains("speaker 1"), "{msg}");
        assert!(msg.contains("anger"), "{msg}");
        assert!(msg.contains("clip #17"), "{msg}");
    }

    #[test]
    fn in_clip_does_not_double_wrap() {
        let inner = EmoleakError::UnknownLabel("x".into()).in_clip(ctx());
        let rewrapped = inner.clone().in_clip(ClipContext {
            corpus: "other".into(),
            speaker: 9,
            emotion: "sad".into(),
            clip: 2,
        });
        assert_eq!(inner, rewrapped, "innermost clip context wins");
    }

    #[test]
    fn env_errors_become_config_errors() {
        let env = emoleak_exec::EnvError {
            name: "EMOLEAK_THREADS".into(),
            value: "abc".into(),
            expected: "a positive integer",
        };
        let e: EmoleakError = env.into();
        assert!(matches!(e, EmoleakError::Config(_)));
        assert!(e.to_string().contains("EMOLEAK_THREADS"));
        assert!(e.to_string().contains("abc"));
    }

    #[test]
    fn input_defects_become_hostile_input_errors() {
        let defect = emoleak_phone::replay::InputDefect::DuplicateTimestamp {
            window: 4,
            offset: 128,
        };
        let e: EmoleakError = defect.clone().into();
        assert_eq!(e, EmoleakError::HostileInput(defect));
        let msg = e.to_string();
        assert!(msg.contains("hostile input"), "{msg}");
        assert!(msg.contains("128"), "{msg}");
    }

    #[test]
    fn in_clip_exposes_source() {
        use std::error::Error;
        let e = EmoleakError::UnknownLabel("x".into()).in_clip(ctx());
        assert!(e.source().is_some());
    }
}
