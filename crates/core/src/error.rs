//! Typed errors for the attack pipeline.
//!
//! The library boundary never panics on degenerate-but-constructible inputs
//! (an empty corpus, a fault profile that drops every sample, a dataset too
//! small to split): [`AttackScenario::harvest`](crate::AttackScenario::harvest)
//! and the `evaluate_*` functions return `Result<_, EmoleakError>` so callers
//! — in particular severity sweeps that intentionally push the channel past
//! usability — can account for failures instead of crashing.

use emoleak_dsp::DspError;

/// Errors produced by the harvest/evaluation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EmoleakError {
    /// A DSP stage rejected its input.
    Dsp(DspError),
    /// The campaign produced no usable speech regions or features
    /// (e.g. the channel was fully degraded by faults or damping).
    EmptyHarvest(String),
    /// The dataset is too small or class-starved to train and evaluate.
    DegenerateDataset(String),
    /// A clip carried an emotion label missing from the corpus's class set.
    UnknownLabel(String),
}

impl core::fmt::Display for EmoleakError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EmoleakError::Dsp(e) => write!(f, "dsp error: {e}"),
            EmoleakError::EmptyHarvest(why) => write!(f, "empty harvest: {why}"),
            EmoleakError::DegenerateDataset(why) => {
                write!(f, "degenerate dataset: {why}")
            }
            EmoleakError::UnknownLabel(label) => {
                write!(f, "unknown emotion label: {label}")
            }
        }
    }
}

impl std::error::Error for EmoleakError {}

impl From<DspError> for EmoleakError {
    fn from(e: DspError) -> Self {
        EmoleakError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = EmoleakError::DegenerateDataset("3 rows".into());
        assert!(e.to_string().contains("3 rows"));
        let e: EmoleakError = DspError::EmptyInput.into();
        assert!(matches!(e, EmoleakError::Dsp(_)));
        assert!(e.to_string().starts_with("dsp error"));
    }
}
