//! # emoleak-core
//!
//! The end-to-end EmoLeak attack pipeline, tying every substrate together:
//!
//! ```text
//! emoleak-synth ──clips──► emoleak-phone ──traces──► emoleak-features
//!      (corpus)              (channel sim)             (regions + Table II
//!                                                       features + images)
//!                                 │
//!                                 ▼
//!                     emoleak-ml (Weka-style classifiers + CNNs)
//! ```
//!
//! - [`scenario`] — what the attacker records: corpus × device × setting
//!   (table-top loudspeaker vs handheld ear speaker) × Android policy.
//! - [`pipeline`] — harvesting labeled features/spectrograms from simulated
//!   recordings and evaluating any of the paper's five classifiers.
//! - [`report`] — result-table rendering for the Table III–VII binaries.
//! - [`mitigation`] — the defenses of §VI: the Android 200 Hz cap, the 1 Hz
//!   high-pass ablation (Table I), and sensor damping/relocation.
//!
//! # Example
//!
//! ```no_run
//! use emoleak_core::prelude::*;
//!
//! # fn main() -> Result<(), EmoleakError> {
//! let scenario = AttackScenario::table_top(CorpusSpec::tess().with_clips_per_cell(10),
//!                                          DeviceProfile::oneplus_7t());
//! let harvest = scenario.harvest()?;
//! let eval = evaluate_features(&harvest.features, ClassifierKind::Logistic, Protocol::Holdout8020, 1)?;
//! println!("accuracy {:.1}%", eval.accuracy * 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod error;
pub mod mitigation;
pub mod online;
pub mod pipeline;
pub mod report;
pub mod scenario;

pub use admission::{AdmissionError, DurabilityLevel, FleetState, VerdictMeta};
pub use error::{ClipContext, EmoleakError};
pub use online::{
    extract_window, InferenceLevel, ModelBundle, RecordedCampaign, RegionFeatures, Verdict,
    WindowExtraction,
};
pub use pipeline::{
    evaluate_feature_grid, evaluate_features, evaluate_spectrograms, ClassifierKind,
    HarvestResult, Protocol,
};
pub use scenario::{AttackScenario, Setting};

#[cfg(test)]
pub(crate) mod test_support {
    /// Serializes unit tests that mutate `EMOLEAK_*` process env vars, so
    /// they cannot race tests reading the same knobs on sibling threads.
    pub static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}

/// Convenient re-exports for examples and benches.
pub mod prelude {
    pub use crate::admission::{AdmissionError, DurabilityLevel, FleetState, VerdictMeta};
    pub use crate::error::{ClipContext, EmoleakError};
    pub use crate::online::{InferenceLevel, ModelBundle, RecordedCampaign, Verdict};
    pub use crate::pipeline::{
        evaluate_feature_grid, evaluate_features, evaluate_spectrograms, ClassifierKind,
        HarvestResult, Protocol,
    };
    pub use crate::report::ResultTable;
    pub use crate::scenario::{AttackScenario, Setting};
    pub use emoleak_features::FeatureDataset;
    pub use emoleak_ml::eval::Evaluation;
    pub use emoleak_phone::{DeviceProfile, FaultLog, FaultProfile, SamplingPolicy};
    pub use emoleak_synth::{CorpusSpec, Emotion};
}
