//! Attack scenarios: what the malicious app records.

use emoleak_features::regions::RegionDetector;
use emoleak_phone::{DeviceProfile, FaultProfile, Placement, SamplingPolicy, SpeakerKind};
use emoleak_synth::CorpusSpec;
use serde::{Deserialize, Serialize};

/// The two recording settings evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Setting {
    /// Phone on a wooden table, audio through the bottom loudspeaker at
    /// maximum volume (Tables III–V).
    TableTopLoudspeaker,
    /// Phone held at the ear, audio through the top earpiece speaker at call
    /// volume (Table VI).
    HandheldEarSpeaker,
}

impl Setting {
    /// The speaker used in this setting.
    pub fn speaker_kind(self) -> SpeakerKind {
        match self {
            Setting::TableTopLoudspeaker => SpeakerKind::Loudspeaker,
            Setting::HandheldEarSpeaker => SpeakerKind::EarSpeaker,
        }
    }

    /// The phone placement in this setting.
    pub fn placement(self) -> Placement {
        match self {
            Setting::TableTopLoudspeaker => Placement::TableTop,
            Setting::HandheldEarSpeaker => Placement::Handheld,
        }
    }

    /// The paper's region-detector preset for this setting (§III-B.2: the
    /// handheld detector applies an 8 Hz high-pass for detection only).
    pub fn region_detector(self) -> RegionDetector {
        match self {
            Setting::TableTopLoudspeaker => RegionDetector::table_top(),
            Setting::HandheldEarSpeaker => RegionDetector::handheld(),
        }
    }
}

impl core::fmt::Display for Setting {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Setting::TableTopLoudspeaker => f.write_str("loudspeaker/table-top"),
            Setting::HandheldEarSpeaker => f.write_str("ear-speaker/handheld"),
        }
    }
}

/// A complete attack configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackScenario {
    /// The emotional-speech corpus being played back.
    pub corpus: CorpusSpec,
    /// The victim's phone.
    pub device: DeviceProfile,
    /// Loudspeaker/table-top or ear-speaker/handheld.
    pub setting: Setting,
    /// The Android sensor policy the malicious app operates under.
    pub policy: SamplingPolicy,
    /// Channel imperfections injected into every recording (dropped events,
    /// timestamp jitter, saturation, motion bursts, doze, throttling).
    pub faults: FaultProfile,
    /// Channel-noise seed (sensor noise, motion noise).
    pub seed: u64,
}

impl AttackScenario {
    /// The paper's main loudspeaker scenario.
    pub fn table_top(corpus: CorpusSpec, device: DeviceProfile) -> Self {
        AttackScenario {
            corpus,
            device,
            setting: Setting::TableTopLoudspeaker,
            policy: SamplingPolicy::Default,
            faults: FaultProfile::clean(),
            seed: 0xE40,
        }
    }

    /// The paper's ear-speaker scenario.
    pub fn handheld(corpus: CorpusSpec, device: DeviceProfile) -> Self {
        AttackScenario {
            corpus,
            device,
            setting: Setting::HandheldEarSpeaker,
            policy: SamplingPolicy::Default,
            faults: FaultProfile::clean(),
            seed: 0xEA4,
        }
    }

    /// Applies an Android sampling policy (the §VI-A cap experiment).
    #[must_use]
    pub fn with_policy(mut self, policy: SamplingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Injects channel imperfections into every recording of the campaign
    /// (the robustness studies sweep this with
    /// [`FaultProfile::with_severity`]).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultProfile) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the channel-noise seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_phone::DeviceProfile;

    #[test]
    fn setting_maps_to_hardware() {
        assert_eq!(Setting::TableTopLoudspeaker.speaker_kind(), SpeakerKind::Loudspeaker);
        assert_eq!(Setting::HandheldEarSpeaker.speaker_kind(), SpeakerKind::EarSpeaker);
        assert_eq!(Setting::TableTopLoudspeaker.placement(), Placement::TableTop);
        assert_eq!(Setting::HandheldEarSpeaker.placement(), Placement::Handheld);
    }

    #[test]
    fn detector_presets_follow_the_paper() {
        assert_eq!(Setting::TableTopLoudspeaker.region_detector().highpass_hz, None);
        assert_eq!(Setting::HandheldEarSpeaker.region_detector().highpass_hz, Some(8.0));
    }

    #[test]
    fn builders_set_expected_fields() {
        let s = AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(1),
            DeviceProfile::pixel_5(),
        )
        .with_policy(SamplingPolicy::Capped200Hz)
        .with_seed(9);
        assert_eq!(s.setting, Setting::TableTopLoudspeaker);
        assert_eq!(s.policy, SamplingPolicy::Capped200Hz);
        assert_eq!(s.seed, 9);
        assert_eq!(s.device.name(), "Pixel 5");
    }

    #[test]
    fn fault_builder_sets_profile() {
        let s = AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(1),
            DeviceProfile::oneplus_7t(),
        );
        assert!(s.faults.is_noop(), "default scenario is fault-free");
        let s = s.with_faults(FaultProfile::handheld_walking());
        assert!(!s.faults.is_noop());
    }

    #[test]
    fn display_names() {
        assert_eq!(Setting::TableTopLoudspeaker.to_string(), "loudspeaker/table-top");
        assert_eq!(Setting::HandheldEarSpeaker.to_string(), "ear-speaker/handheld");
    }
}
