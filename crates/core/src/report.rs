//! Result-table rendering for the Table III–VII reproduction binaries.

use serde::{Deserialize, Serialize};

/// A simple aligned text table: one row per (method, classifier), one
/// accuracy column per device — the layout of Tables III–VI.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResultTable {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    notes: Vec<String>,
}

impl ResultTable {
    /// Creates a table with the given title and accuracy-column headers.
    pub fn new(title: &str, columns: Vec<String>) -> Self {
        ResultTable { title: title.to_string(), columns, rows: Vec::new(), notes: Vec::new() }
    }

    /// Appends a row of accuracies (fractions in `[0, 1]`; NaN renders
    /// as `-`).
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the column count.
    pub fn push_row(&mut self, label: &str, accuracies: Vec<f64>) {
        assert_eq!(accuracies.len(), self.columns.len(), "column count mismatch");
        self.rows.push((label.to_string(), accuracies));
    }

    /// Appends a footnote line.
    pub fn push_note(&mut self, note: &str) {
        self.notes.push(note.to_string());
    }

    /// The accuracy at (row, column).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn accuracy(&self, row: usize, col: usize) -> f64 {
        self.rows[row].1[col]
    }

    /// The best accuracy in the table, ignoring NaN.
    pub fn best(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .filter(|v| v.is_finite())
            .fold(f64::NAN, f64::max)
    }

    /// Renders as an aligned text table with percentages.
    pub fn render(&self) -> String {
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once("Classifier".len()))
            .max()
            .unwrap_or(10)
            + 2;
        let col_w = self.columns.iter().map(|c| c.len()).max().unwrap_or(8).max(8) + 2;
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("{:<label_w$}", "Classifier"));
        for c in &self.columns {
            out.push_str(&format!("{c:>col_w$}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(label_w + col_w * self.columns.len()));
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(&format!("{label:<label_w$}"));
            for v in vals {
                if v.is_finite() {
                    out.push_str(&format!("{:>col_w$}", format!("{:.2}%", v * 100.0)));
                } else {
                    out.push_str(&format!("{:>col_w$}", "-"));
                }
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Serializes to CSV (fractions, not percentages).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("classifier");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(label);
            for v in vals {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Renders a Figure 7-style training-curve table (epoch, train/val loss,
/// train/val accuracy) as aligned text.
pub fn render_history(history: &emoleak_ml::nn::TrainingHistory) -> String {
    let mut out = String::from("epoch  train_loss  val_loss  train_acc  val_acc\n");
    for e in 0..history.epochs() {
        out.push_str(&format!(
            "{:>5}  {:>10.4}  {:>8.4}  {:>9.4}  {:>7.4}\n",
            e + 1,
            history.train_loss[e],
            history.val_loss[e],
            history.train_accuracy[e],
            history.val_accuracy[e],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_formats_percentages() {
        let mut t = ResultTable::new("Test", vec!["OnePlus 7T".into(), "Pixel 5".into()]);
        t.push_row("Logistic", vec![0.9452, 0.7393]);
        t.push_row("CNN", vec![0.953, f64::NAN]);
        t.push_note("random guess 14.28%");
        let s = t.render();
        assert!(s.contains("94.52%"));
        assert!(s.contains("95.30%"));
        assert!(s.contains('-'));
        assert!(s.contains("note: random guess"));
        assert!((t.best() - 0.953).abs() < 1e-12);
        assert!((t.accuracy(0, 1) - 0.7393).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_width_is_enforced() {
        let mut t = ResultTable::new("T", vec!["a".into()]);
        t.push_row("x", vec![0.1, 0.2]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = ResultTable::new("T", vec!["d1".into()]);
        t.push_row("clf", vec![0.5]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next(), Some("classifier,d1"));
        assert!(csv.contains("clf,0.5"));
    }

    #[test]
    fn history_rendering() {
        let h = emoleak_ml::nn::TrainingHistory {
            train_loss: vec![1.0, 0.5],
            train_accuracy: vec![0.3, 0.6],
            val_loss: vec![1.1, 0.7],
            val_accuracy: vec![0.25, 0.55],
        };
        let s = render_history(&h);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("0.5000"));
    }
}
