//! Defense evaluation (§VI-A/B).
//!
//! Three mitigations are modeled:
//!
//! 1. **Android 200 Hz sampling cap** — the paper finds the attack survives
//!    (80.1 % vs 95.3 % on TESS/loudspeaker).
//! 2. **Mandatory high-pass filtering of delivered sensor data** — the
//!    Table I ablation: even a 1 Hz high-pass collapses the information
//!    gain of the time-domain features.
//! 3. **Vibration damping / sensor relocation** — modeled as a reduction of
//!    the chassis coupling coefficients.

use crate::error::EmoleakError;
use crate::pipeline::{evaluate_features, ClassifierKind, Protocol};
use crate::scenario::AttackScenario;
use emoleak_dsp::filter::ablation_1hz_highpass;
use emoleak_features::info_gain::information_gain;
use emoleak_features::FeatureDataset;
use emoleak_phone::SamplingPolicy;
use serde::{Deserialize, Serialize};

/// Outcome of the sampling-cap study (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingCapStudy {
    /// Accuracy at the device's native rate.
    pub accuracy_default: f64,
    /// Accuracy under the 200 Hz cap.
    pub accuracy_capped: f64,
    /// The corpus's random-guess accuracy.
    pub random_guess: f64,
}

impl SamplingCapStudy {
    /// Runs the cap study for one scenario and classifier. The two arms
    /// (native rate vs 200 Hz cap) are independent campaigns and run in
    /// parallel; each arm's harvest is fully determined by the scenario
    /// seed, so the pairing is bit-identical to running them sequentially.
    ///
    /// # Errors
    ///
    /// Propagates harvest/evaluation errors ([`EmoleakError`]) from either
    /// arm — e.g. a corpus too small to split.
    pub fn run(
        scenario: &AttackScenario,
        kind: ClassifierKind,
        seed: u64,
    ) -> Result<Self, EmoleakError> {
        let random_guess = scenario.corpus.random_guess();
        let policies = [SamplingPolicy::Default, SamplingPolicy::Capped200Hz];
        let arms: Vec<Result<f64, EmoleakError>> =
            emoleak_exec::par_map_indexed(&policies, |_, &policy| {
                let harvest = scenario.clone().with_policy(policy).harvest()?;
                Ok(evaluate_features(&harvest.features, kind, Protocol::Holdout8020, seed)?
                    .accuracy)
            });
        let mut arms = arms.into_iter();
        Ok(SamplingCapStudy {
            accuracy_default: arms.next().expect("two arms")?,
            accuracy_capped: arms.next().expect("two arms")?,
            random_guess,
        })
    }

    /// Whether the attack still beats `factor ×` random guessing when
    /// capped (the paper reports > 5× at 200 Hz).
    pub fn attack_survives(&self, factor: f64) -> bool {
        self.accuracy_capped > factor * self.random_guess
    }
}

/// The Table I study: information gain of selected features with no filter
/// vs a 1 Hz high-pass applied to the trace before feature extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterAblation {
    /// Feature names in study order (min, mean, max, CV, power, smoothness).
    pub features: Vec<String>,
    /// Information gain with unfiltered traces.
    pub gain_no_filter: Vec<f64>,
    /// Information gain after the 1 Hz high-pass.
    pub gain_1hz: Vec<f64>,
}

/// The Table I feature subset: three time-domain level statistics, CV, and
/// two spectral-shape features ("power" maps to our Energy).
const TABLE1_FEATURES: [(&str, usize); 6] = [
    ("min", 0),
    ("mean", 2),
    ("max", 1),
    ("CV", 6),
    ("power", 12),     // Energy (first frequency-domain feature)
    ("smoothness", 18), // Smoothness
];

impl FilterAblation {
    /// Runs the ablation the way §III-B.2 describes it: one continuous
    /// handheld-style recording of the grouped-by-emotion playback, then two
    /// feature-extraction arms over the *same* detected regions — raw vs
    /// 1 Hz high-passed — each scored by information gain.
    ///
    /// # Errors
    ///
    /// Returns [`EmoleakError`] when the recording cannot be produced or
    /// filtered (e.g. a delivered rate too low for the 1 Hz high-pass).
    pub fn run(scenario: &AttackScenario) -> Result<Self, EmoleakError> {
        let (raw, filtered) = harvest_both_arms(scenario)?;
        Ok(FilterAblation {
            features: TABLE1_FEATURES.iter().map(|(n, _)| n.to_string()).collect(),
            gain_no_filter: gains(&raw),
            gain_1hz: gains(&filtered),
        })
    }

    /// True when the filter "significantly decreases the information gain"
    /// (§III-B.2): every level-statistic gain (min/mean/max/CV) drops and
    /// their sum falls by at least 20 %.
    ///
    /// The paper's Table I reports exact zeros after filtering; in our
    /// physically grounded channel the in-band amplitude retains genuine
    /// emotional information (which is also why the attack works at all),
    /// so the gains decrease substantially rather than vanish. The criterion
    /// is the *aggregate* level-statistic gain: individual per-feature gain
    /// estimates (10-bin discretization on a few hundred regions) are noisy
    /// enough that a near-zero gain such as CV's can fluctuate upward even
    /// as the level information collapses. EXPERIMENTS.md discusses the
    /// discrepancy.
    pub fn filter_degrades_features(&self) -> bool {
        let raw_sum: f64 = self.gain_no_filter[..4].iter().sum();
        let hp_sum: f64 = self.gain_1hz[..4].iter().sum();
        hp_sum < 0.8 * raw_sum
    }
}

fn gains(features: &FeatureDataset) -> Vec<f64> {
    TABLE1_FEATURES
        .iter()
        .map(|&(_, col)| {
            let col_vals: Vec<f64> = features.features().iter().map(|r| r[col]).collect();
            information_gain(&col_vals, features.labels(), 10)
        })
        .collect()
}

/// Records one continuous session of the whole corpus playback and extracts
/// features twice from identical regions: from the raw trace and from the
/// 1 Hz-high-passed trace. The paper records continuous sessions, so the
/// filter acts on minutes of data and removes the slow posture-drift level
/// structure that the time-domain statistics live on.
fn harvest_both_arms(
    scenario: &AttackScenario,
) -> Result<(FeatureDataset, FeatureDataset), EmoleakError> {
    use emoleak_features::{all_feature_names, extract_all};
    use emoleak_phone::session::RecordingSession;
    use rand::SeedableRng;
    let session = RecordingSession::new(
        &scenario.device,
        scenario.setting.speaker_kind(),
        scenario.setting.placement(),
    )
    .with_policy(scenario.policy)
    .with_faults(scenario.faults.clone());
    let detector = scenario.setting.region_detector();
    let emotions = scenario.corpus.emotions().to_vec();
    let class_names: Vec<String> = emotions.iter().map(|e| e.to_string()).collect();
    let mut raw_features = FeatureDataset::new(all_feature_names(), class_names.clone());
    let mut hp_features = FeatureDataset::new(all_feature_names(), class_names);
    let mut rng = rand::rngs::StdRng::seed_from_u64(scenario.seed);
    // One continuous recording of the whole corpus playback (the corpus
    // iterator is already grouped by emotion, matching §IV-B).
    let mut clips = Vec::new();
    for clip in scenario.corpus.iter() {
        let label = emotions
            .iter()
            .position(|e| *e == clip.emotion)
            .ok_or_else(|| EmoleakError::UnknownLabel(clip.emotion.to_string()))?;
        clips.push((clip.samples, clip.fs, label));
    }
    let st = session.record_session(clips, &mut rng);
    let fs = st.trace.fs;
    let hp = ablation_1hz_highpass(fs)?;
    let filtered = hp.filtfilt(&st.trace.samples);
    // Regions are detected per labeled playback window on the raw trace
    // (isolating the filter's effect on the *features*, which is what
    // Table I reports); both arms extract from identical regions.
    for (i, span) in st.labels.iter().enumerate() {
        let window = st.window(i);
        for &(rs, re) in &detector.detect(window, fs) {
            let a = (span.start + rs).min(filtered.len());
            let b = (span.start + re).min(filtered.len());
            if a >= b {
                continue;
            }
            raw_features.push(extract_all(&st.trace.samples[a..b], fs), span.label);
            hp_features.push(extract_all(&filtered[a..b], fs), span.label);
        }
    }
    raw_features.clean_invalid();
    hp_features.clean_invalid();
    Ok((raw_features, hp_features))
}

/// Vibration-damping mitigation: scales the victim device's chassis
/// coupling by `damping` (0 = perfect isolation, 1 = unmodified) and
/// reports attack accuracy.
///
/// # Errors
///
/// Propagates [`EmoleakError`] from the harvest; a dataset merely too
/// degraded to train on is *not* an error — it scores as random guessing
/// (the mitigation worked).
pub fn damping_study(
    scenario: &AttackScenario,
    kind: ClassifierKind,
    damping: f64,
    seed: u64,
) -> Result<f64, EmoleakError> {
    let mut damped = scenario.clone();
    damped.device = damped.device.with_coupling_scale(damping);
    let harvest = damped.harvest()?;
    // With heavy damping the detector finds too few regions (or loses whole
    // classes) to train on — the attack is defeated and degenerates to
    // guessing.
    let counts = harvest.features.class_counts();
    if harvest.features.len() < 40 || counts.iter().any(|&c| c < 5) {
        return Ok(scenario.corpus.random_guess());
    }
    match evaluate_features(&harvest.features, kind, Protocol::Holdout8020, seed) {
        Ok(eval) => Ok(eval.accuracy),
        Err(EmoleakError::DegenerateDataset(_)) => Ok(scenario.corpus.random_guess()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_phone::DeviceProfile;
    use emoleak_synth::CorpusSpec;

    fn tiny_scenario() -> AttackScenario {
        AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(4),
            DeviceProfile::oneplus_7t(),
        )
    }

    #[test]
    fn filter_ablation_shows_table1_degradation() {
        // Table I's analysis is motivated by the handheld setting, where
        // slow posture drift and the vocal-effort DC dominate the level
        // statistics.
        let scenario = AttackScenario::handheld(
            CorpusSpec::tess().with_clips_per_cell(6),
            DeviceProfile::oneplus_7t(),
        );
        let ablation = FilterAblation::run(&scenario).unwrap();
        for (name, g) in ablation.features.iter().zip(&ablation.gain_no_filter) {
            assert!(g.is_finite(), "{name} gain {g}");
        }
        assert!(
            ablation.filter_degrades_features(),
            "1 Hz HPF should significantly decrease time-domain info gain: {:?} vs {:?}",
            ablation.gain_no_filter,
            ablation.gain_1hz
        );
    }

    #[test]
    fn damping_reduces_accuracy() {
        let scenario = tiny_scenario();
        let open = damping_study(&scenario, ClassifierKind::Logistic, 1.0, 3).unwrap();
        let sealed = damping_study(&scenario, ClassifierKind::Logistic, 0.02, 3).unwrap();
        assert!(
            open > sealed + 0.1 || sealed <= scenario.corpus.random_guess() + 0.1,
            "damping should hurt the attack: open {open}, sealed {sealed}"
        );
    }
}
