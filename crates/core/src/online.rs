//! Incremental (online) entry points into the attack pipeline.
//!
//! [`AttackScenario::harvest`] is batch-shaped: it materializes a whole
//! campaign and returns one result. A live attacker — a zero-permission app
//! sampling the accelerometer during playback or a call — sees the same
//! data *incrementally*: one window of trace at a time, one detected region
//! at a time. This module splits the batch pipeline at exactly those seams
//! so the streaming service (`emoleak-stream`) and `harvest()` run the
//! **same code** on the same inputs:
//!
//! - [`AttackScenario::record_windows`] — stage 1 (record) alone: the
//!   labeled trace windows a campaign produces, with fault accounting.
//! - [`extract_window`] — stage 2 (detect + extract) for a single window:
//!   region detection, Table II features, optional spectrograms. Calling it
//!   per window in order reproduces the batch feature matrix byte for byte.
//! - [`ModelBundle`] / [`InferenceLevel`] — a trained classifier stack the
//!   online service degrades through under deadline pressure: spectrogram
//!   CNN → classical 24-feature Logistic → energy-only speech flagging.

use crate::error::{ClipContext, EmoleakError};
use crate::pipeline::{cnn_train_config, cnn_width_divisor, HarvestResult};
use crate::scenario::AttackScenario;
use emoleak_features::regions::{Region, RegionDetector};
use emoleak_features::spectrogram::SpectrogramGenerator;
use emoleak_features::{all_feature_names, extract_all, LabeledSpectrogram};
use emoleak_ml::logistic::Logistic;
use emoleak_ml::nn::{spectrogram_cnn_scaled, QuantizedCnn, Sequential, Tensor};
use emoleak_ml::Classifier;
use emoleak_phone::session::RecordingSession;
use emoleak_phone::FaultLog;
use rand::{Rng, SeedableRng};

/// One clip's trace window with its ground-truth speech spans and label.
pub type LabeledWindow = (Vec<f64>, Vec<(usize, usize)>, usize);
/// A clip queued for continuous-session recording: samples, sample rate,
/// and the (label, ground-truth spans) payload carried through the session.
type SessionClip = (Vec<f64>, f64, (usize, Vec<(usize, usize)>));

/// Stage-1 output of a campaign: the recorded windows before any feature
/// extraction, plus fault accounting. This is both what `harvest()`
/// consumes and what a streaming replay source feeds chunk by chunk.
#[derive(Debug, Clone)]
pub struct RecordedCampaign {
    /// One labeled window per corpus clip, in clip order.
    pub windows: Vec<LabeledWindow>,
    /// The delivered accelerometer rate.
    pub fs: f64,
    /// Per-recording fault accounting (see `HarvestResult::clip_faults`).
    pub clip_faults: Vec<FaultLog>,
    /// Aggregate fault accounting over the campaign.
    pub faults: FaultLog,
    /// Class names, indexed by window label.
    pub class_names: Vec<String>,
}

impl AttackScenario {
    /// Runs stage 1 of the campaign only: records every corpus clip through
    /// the channel (table-top: clip by clip; handheld: one continuous
    /// session) and returns the labeled trace windows.
    ///
    /// [`AttackScenario::harvest`] is `record_windows()` followed by
    /// [`extract_window`] over each window; the streaming service replays
    /// the same windows chunk by chunk. Determinism carries over: output is
    /// bit-identical at any `EMOLEAK_THREADS`.
    ///
    /// # Errors
    ///
    /// Returns [`EmoleakError::UnknownLabel`] (wrapped in
    /// [`EmoleakError::InClip`] identifying the offending clip) if a corpus
    /// clip carries an emotion missing from the corpus's own class set.
    pub fn record_windows(&self) -> Result<RecordedCampaign, EmoleakError> {
        let session = RecordingSession::new(
            &self.device,
            self.setting.speaker_kind(),
            self.setting.placement(),
        )
        .with_policy(self.policy)
        .with_faults(self.faults.clone());
        let emotions = self.corpus.emotions().to_vec();
        let class_names: Vec<String> = emotions.iter().map(|e| e.to_string()).collect();
        let fs_out = session.delivered_rate();
        let mut clip_faults = Vec::new();
        let mut faults = FaultLog::default();

        let label_of = |clip: &emoleak_synth::Clip, i: usize| {
            emotions
                .iter()
                .position(|e| *e == clip.emotion)
                .ok_or_else(|| {
                    EmoleakError::UnknownLabel(clip.emotion.to_string()).in_clip(ClipContext {
                        corpus: self.corpus.name().to_string(),
                        speaker: clip.speaker,
                        emotion: clip.emotion.to_string(),
                        clip: i,
                    })
                })
        };

        // Parallel over clip index; clip i synthesizes via `clip_at(i)` and
        // draws channel noise from stream `derive_seed(seed, i)`, so
        // scheduling cannot reorder any draw.
        let clip_indices: Vec<usize> = (0..self.corpus.total_clips()).collect();
        let mut windows: Vec<LabeledWindow> = Vec::new();
        match self.setting {
            crate::scenario::Setting::TableTopLoudspeaker => {
                let recorded: Vec<Result<(LabeledWindow, FaultLog), EmoleakError>> =
                    emoleak_exec::par_map_indexed(&clip_indices, |_, &i| {
                        let clip = self.corpus.clip_at(i);
                        let label = label_of(&clip, i)?;
                        let mut rng = rand::rngs::StdRng::seed_from_u64(
                            emoleak_exec::derive_seed(self.seed, i as u64),
                        );
                        let (trace, log) =
                            session.record_clip_logged(&clip.samples, clip.fs, &mut rng);
                        let scale = trace.fs / clip.fs;
                        let truth = rescale_spans(&clip.voiced_spans, scale);
                        Ok(((trace.samples, truth, label), log))
                    });
                for r in recorded {
                    let (window, log) = r?;
                    faults.absorb(&log);
                    if !self.faults.is_noop() {
                        clip_faults.push(log);
                    }
                    windows.push(window);
                }
            }
            crate::scenario::Setting::HandheldEarSpeaker => {
                // Synthesis is parallel per clip; the continuous recording
                // itself derives per-clip streams internally
                // (`record_session_seeded`), since posture drift spans
                // clip boundaries and must stay a single whole-session
                // stream.
                let synthesized: Vec<Result<SessionClip, EmoleakError>> =
                    emoleak_exec::par_map_indexed(&clip_indices, |_, &i| {
                        let clip = self.corpus.clip_at(i);
                        let label = label_of(&clip, i)?;
                        let scale = fs_out / clip.fs;
                        let truth = rescale_spans(&clip.voiced_spans, scale);
                        Ok((clip.samples, clip.fs, (label, truth)))
                    });
                let mut clips: Vec<SessionClip> = Vec::with_capacity(synthesized.len());
                for c in synthesized {
                    clips.push(c?);
                }
                let session_seed = rand::rngs::StdRng::seed_from_u64(self.seed).next_u64();
                let (st, log) = session.record_session_seeded(clips, session_seed);
                faults.absorb(&log);
                if !self.faults.is_noop() {
                    clip_faults.push(log);
                }
                for (i, span) in st.labels.iter().enumerate() {
                    let window = st.window(i).to_vec();
                    let (label, truth) = span.label.clone();
                    windows.push((window, truth, label));
                }
            }
        }
        Ok(RecordedCampaign { windows, fs: fs_out, clip_faults, faults, class_names })
    }
}

fn rescale_spans(spans: &[(usize, usize)], scale: f64) -> Vec<(usize, usize)> {
    spans
        .iter()
        .map(|&(s, e)| ((s as f64 * scale) as usize, (e as f64 * scale) as usize))
        .collect()
}

/// One detected region with everything the online classifier needs.
#[derive(Debug, Clone)]
pub struct RegionFeatures {
    /// Region start within its window, samples.
    pub start: usize,
    /// Region end (exclusive, clamped to the window), samples.
    pub end: usize,
    /// The 24 Table II features of the region.
    pub features: Vec<f64>,
    /// The 32×32 spectrogram image, when a generator was supplied.
    pub spectrogram: Option<LabeledSpectrogram>,
}

/// Stage-2 output for one window: raw detected regions (for
/// detection-rate scoring) and per-region features.
#[derive(Debug, Clone, Default)]
pub struct WindowExtraction {
    /// The detector's raw region list (unclamped; indices into the window).
    pub regions: Vec<Region>,
    /// One entry per non-empty clamped region, in region order.
    pub rows: Vec<RegionFeatures>,
}

/// Detects speech regions in one trace window and extracts per-region
/// features — stage 2 of [`AttackScenario::harvest`] for a single window.
///
/// Batch and streaming both call this, so applying it to the same windows
/// in the same order yields byte-identical feature rows. Spectrograms are
/// generated only when `spec_gen` is supplied (the CNN rung needs them;
/// the classical rungs do not); `label` is carried into the generated
/// [`LabeledSpectrogram`] and does not affect features.
pub fn extract_window(
    window: &[f64],
    fs: f64,
    detector: &RegionDetector,
    spec_gen: Option<&SpectrogramGenerator>,
    label: usize,
) -> WindowExtraction {
    let regions = detector.detect(window, fs);
    let mut rows = Vec::new();
    for &(start, end) in &regions {
        let end = end.min(window.len());
        let start = start.min(end);
        let region = &window[start..end];
        if region.is_empty() {
            continue;
        }
        rows.push(RegionFeatures {
            start,
            end,
            features: extract_all(region, fs),
            spectrogram: spec_gen.and_then(|g| g.generate(region, fs, label)),
        });
    }
    WindowExtraction { regions, rows }
}

/// The quality rungs of the online degradation ladder, best first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InferenceLevel {
    /// Full spectrogram-CNN inference (§IV-C), f64 kernels.
    Cnn,
    /// Spectrogram-CNN inference through the int8-quantized network —
    /// cheaper than [`InferenceLevel::Cnn`], still label-producing, but
    /// deliberately lossy relative to the f64 model.
    CnnInt8,
    /// Classical 24-feature Logistic classification (§IV-D.1).
    Classical,
    /// Energy-only speech/silence flagging — no emotion label.
    EnergyOnly,
    /// Shed load: the region is acknowledged but not processed.
    Shed,
}

impl InferenceLevel {
    /// All rungs, best first.
    pub const ALL: [InferenceLevel; 5] = [
        InferenceLevel::Cnn,
        InferenceLevel::CnnInt8,
        InferenceLevel::Classical,
        InferenceLevel::EnergyOnly,
        InferenceLevel::Shed,
    ];

    /// One rung cheaper (saturates at [`InferenceLevel::Shed`]).
    #[must_use]
    pub fn degraded(self) -> InferenceLevel {
        match self {
            InferenceLevel::Cnn => InferenceLevel::CnnInt8,
            InferenceLevel::CnnInt8 => InferenceLevel::Classical,
            InferenceLevel::Classical => InferenceLevel::EnergyOnly,
            _ => InferenceLevel::Shed,
        }
    }

    /// One rung better (saturates at [`InferenceLevel::Cnn`]).
    #[must_use]
    pub fn recovered(self) -> InferenceLevel {
        match self {
            InferenceLevel::Shed => InferenceLevel::EnergyOnly,
            InferenceLevel::EnergyOnly => InferenceLevel::Classical,
            InferenceLevel::Classical => InferenceLevel::CnnInt8,
            _ => InferenceLevel::Cnn,
        }
    }
}

impl core::fmt::Display for InferenceLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            InferenceLevel::Cnn => "cnn",
            InferenceLevel::CnnInt8 => "cnn-int8",
            InferenceLevel::Classical => "classical",
            InferenceLevel::EnergyOnly => "energy-only",
            InferenceLevel::Shed => "shed",
        })
    }
}

/// The verdict one region classification produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The rung that actually ran (after coercion for a missing CNN).
    pub level: InferenceLevel,
    /// Predicted emotion label (`None` on the energy-only and shed rungs).
    pub label: Option<usize>,
    /// Whether the region carries speech-band energy.
    pub is_speech: bool,
}

/// A trained classifier stack for online inference: every rung of the
/// degradation ladder backed by one model, trained once on a harvested
/// campaign and then applied region by region.
pub struct ModelBundle {
    class_names: Vec<String>,
    /// Per-feature (mean, std) z-score parameters fitted on training data.
    norm: Vec<(f64, f64)>,
    classical: Logistic,
    /// The spectrogram CNN (mutex because forward passes update layer
    /// caches), absent when trained with [`ModelBundle::train`].
    cnn: Option<parking_lot::Mutex<Sequential>>,
    /// The int8-quantized lowering of `cnn` (no lock: prediction is
    /// `&self`), absent when no CNN was trained or the architecture has
    /// no quantized representation.
    cnn_int8: Option<QuantizedCnn>,
    /// Speech/silence threshold on the region's std-dev feature.
    energy_threshold: f64,
}

impl core::fmt::Debug for ModelBundle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ModelBundle")
            .field("classes", &self.class_names.len())
            .field("cnn", &self.cnn.is_some())
            .field("cnn_int8", &self.cnn_int8.is_some())
            .field("energy_threshold", &self.energy_threshold)
            .finish()
    }
}

/// Index of the std-dev entry in the Table II feature vector, used as the
/// energy proxy by the energy-only rung.
const STD_DEV_FEATURE: usize = 3;

impl ModelBundle {
    /// Trains the classical and energy rungs on a harvested campaign (no
    /// CNN: [`InferenceLevel::Cnn`] then coerces to
    /// [`InferenceLevel::Classical`]).
    ///
    /// # Errors
    ///
    /// Returns [`EmoleakError::DegenerateDataset`] when the harvest has
    /// fewer than 2 rows or fewer than 2 represented classes.
    pub fn train(harvest: &HarvestResult, _seed: u64) -> Result<Self, EmoleakError> {
        Self::train_inner(harvest, None)
    }

    /// Trains all rungs including the spectrogram CNN (honoring
    /// `EMOLEAK_EPOCHS` / `EMOLEAK_CNN_DIV`).
    ///
    /// # Errors
    ///
    /// Returns [`EmoleakError::DegenerateDataset`] on a dataset too small
    /// to train, or [`EmoleakError::Config`] on malformed CNN env knobs.
    pub fn train_with_cnn(harvest: &HarvestResult, seed: u64) -> Result<Self, EmoleakError> {
        if harvest.spectrograms.len() < 2 {
            return Err(EmoleakError::DegenerateDataset(format!(
                "{} spectrograms (CNN rung needs at least 2)",
                harvest.spectrograms.len()
            )));
        }
        Self::train_inner(harvest, Some(seed))
    }

    fn train_inner(harvest: &HarvestResult, cnn_seed: Option<u64>) -> Result<Self, EmoleakError> {
        let features = &harvest.features;
        let represented = features.class_counts().iter().filter(|&&c| c > 0).count();
        if features.len() < 2 || represented < 2 {
            return Err(EmoleakError::DegenerateDataset(format!(
                "{} rows over {represented} represented class(es): online bundle needs \
                 at least 2 of each",
                features.len()
            )));
        }
        let mut normed = features.clone();
        let norm = normed.fit_normalization();
        let mut classical = Logistic::default();
        classical.fit(normed.features(), normed.labels(), normed.num_classes());
        // Energy rung: speech when the region's std-dev exceeds a quarter
        // of the median training std-dev — robust to campaign loudness.
        let mut stds: Vec<f64> =
            features.features().iter().map(|r| r[STD_DEV_FEATURE]).collect();
        stds.sort_by(f64::total_cmp);
        let median = stds.get(stds.len() / 2).copied().unwrap_or(0.0);
        let energy_threshold = 0.25 * median;

        let mut cnn_int8 = None;
        let cnn = match cnn_seed {
            None => None,
            Some(seed) => {
                let config = cnn_train_config()?;
                let divisor = cnn_width_divisor()?;
                let side = emoleak_features::spectrogram::IMAGE_SIZE;
                let mut net =
                    spectrogram_cnn_scaled(features.num_classes(), seed, divisor);
                let xs: Vec<Tensor> = harvest
                    .spectrograms
                    .iter()
                    .map(|s| Tensor::from_shape(&[1, side, side], s.pixels.clone()))
                    .collect();
                let ys: Vec<usize> = harvest.spectrograms.iter().map(|s| s.label).collect();
                // Train on everything: the bundle is the deployed model,
                // not an evaluation protocol. Hold one sample out as the
                // (unused) validation series `fit` requires.
                let (vx, tx) = xs.split_at(1);
                let (vy, ty) = ys.split_at(1);
                net.fit(tx, ty, vx, vy, &config);
                // Lower the trained network to int8 once, while we still
                // hold it outside the mutex.
                cnn_int8 = QuantizedCnn::from_sequential(&net);
                Some(parking_lot::Mutex::new(net))
            }
        };
        Ok(ModelBundle {
            class_names: features.class_names().to_vec(),
            norm,
            classical,
            cnn,
            cnn_int8,
            energy_threshold,
        })
    }

    /// Whether the CNN rung is backed by a trained network.
    pub fn has_cnn(&self) -> bool {
        self.cnn.is_some()
    }

    /// Whether the int8 CNN rung is backed by a quantized network.
    pub fn has_cnn_int8(&self) -> bool {
        self.cnn_int8.is_some()
    }

    /// The emotion class names, indexed by predicted label.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// The rung that would actually run for `want`:
    /// [`InferenceLevel::Cnn`] coerces to [`InferenceLevel::Classical`]
    /// when no CNN was trained (same for a region without a spectrogram),
    /// and [`InferenceLevel::CnnInt8`] likewise when no quantized lowering
    /// exists.
    pub fn effective_level(&self, want: InferenceLevel) -> InferenceLevel {
        match want {
            InferenceLevel::Cnn if self.cnn.is_none() => InferenceLevel::Classical,
            InferenceLevel::CnnInt8 if self.cnn_int8.is_none() => InferenceLevel::Classical,
            other => other,
        }
    }

    /// Builds the checked `[1, side, side]` CNN input from a region's
    /// spectrogram, reporting a typed error instead of the panic
    /// `Tensor::from_shape` would raise on a pixel-count mismatch.
    fn spectrogram_tensor(region: &RegionFeatures) -> Result<Tensor, EmoleakError> {
        let side = emoleak_features::spectrogram::IMAGE_SIZE;
        let pixels = &region
            .spectrogram
            .as_ref()
            .expect("callers coerce away CNN rungs when the spectrogram is absent")
            .pixels;
        if pixels.len() != side * side {
            return Err(EmoleakError::Shape(emoleak_ml::nn::ShapeError {
                layer: "ModelBundle",
                expected: format!("{side}×{side} spectrogram ({} pixels)", side * side),
                got: vec![pixels.len()],
            }));
        }
        Ok(Tensor::from_shape(&[1, side, side], pixels.clone()))
    }

    /// Classifies one detected region at the requested ladder rung,
    /// reporting a typed error when the CNN input is malformed.
    ///
    /// # Errors
    ///
    /// Returns [`EmoleakError::Shape`] when a CNN rung rejects the
    /// region's spectrogram (wrong pixel count or a layer-level shape
    /// mismatch). The cheaper rungs never error.
    pub fn try_classify(
        &self,
        want: InferenceLevel,
        region: &RegionFeatures,
    ) -> Result<Verdict, EmoleakError> {
        let is_speech = region
            .features
            .get(STD_DEV_FEATURE)
            .is_some_and(|&s| s.is_finite() && s > self.energy_threshold);
        let mut level = self.effective_level(want);
        if matches!(level, InferenceLevel::Cnn | InferenceLevel::CnnInt8)
            && region.spectrogram.is_none()
        {
            level = InferenceLevel::Classical;
        }
        let label = match level {
            InferenceLevel::Cnn => {
                let input = Self::spectrogram_tensor(region)?;
                let net = self.cnn.as_ref().expect("coerced above when absent");
                Some(net.lock().try_predict(&input).map_err(EmoleakError::Shape)?)
            }
            InferenceLevel::CnnInt8 => {
                let input = Self::spectrogram_tensor(region)?;
                let q = self.cnn_int8.as_ref().expect("coerced above when absent");
                Some(q.try_predict(&input).map_err(EmoleakError::Shape)?)
            }
            InferenceLevel::Classical => {
                let row: Vec<f64> = region
                    .features
                    .iter()
                    .zip(&self.norm)
                    .map(|(v, (mean, std))| (v - mean) / std)
                    .collect();
                Some(self.classical.predict(&row))
            }
            InferenceLevel::EnergyOnly | InferenceLevel::Shed => None,
        };
        Ok(Verdict { level, label, is_speech })
    }

    /// Classifies one detected region at the requested ladder rung. A CNN
    /// shape error (a malformed spectrogram) falls back to the classical
    /// rung instead of panicking — the region still gets a verdict.
    pub fn classify(&self, want: InferenceLevel, region: &RegionFeatures) -> Verdict {
        match self.try_classify(want, region) {
            Ok(v) => v,
            Err(_) => self
                .try_classify(InferenceLevel::Classical, region)
                .expect("classical rung cannot fail"),
        }
    }
}

/// Convenience: the feature schema the online path shares with batch
/// harvesting (re-exported so stream consumers need not depend on
/// `emoleak-features` directly).
pub fn feature_names() -> Vec<String> {
    all_feature_names()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_phone::DeviceProfile;
    use emoleak_synth::CorpusSpec;

    fn small_scenario() -> AttackScenario {
        AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(3),
            DeviceProfile::oneplus_7t(),
        )
    }

    fn restore_env(name: &str, prior: Result<String, std::env::VarError>) {
        match prior {
            Ok(v) => std::env::set_var(name, v),
            Err(_) => std::env::remove_var(name),
        }
    }

    #[test]
    fn record_plus_extract_equals_harvest() {
        let scenario = small_scenario();
        let campaign = scenario.record_windows().unwrap();
        let h = scenario.harvest().unwrap();
        let detector = scenario.setting.region_detector();
        let spec_gen = SpectrogramGenerator::for_accel();
        let mut rows = Vec::new();
        for (window, _truth, label) in &campaign.windows {
            let ex = extract_window(window, campaign.fs, &detector, Some(&spec_gen), *label);
            for rf in ex.rows {
                rows.push(rf.features);
            }
        }
        // harvest() drops NaN rows via clean_invalid; replicate.
        rows.retain(|r| r.iter().all(|v| v.is_finite()));
        assert_eq!(rows.len(), h.features.len());
        for (a, b) in rows.iter().zip(h.features.features()) {
            let bits = |x: &[f64]| x.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b));
        }
        assert_eq!(campaign.faults, h.faults);
    }

    #[test]
    fn ladder_levels_order_and_saturate() {
        use InferenceLevel::*;
        assert_eq!(Cnn.degraded(), CnnInt8);
        assert_eq!(CnnInt8.degraded(), Classical);
        assert_eq!(Classical.degraded(), EnergyOnly);
        assert_eq!(EnergyOnly.degraded(), Shed);
        assert_eq!(Shed.degraded(), Shed);
        assert_eq!(Shed.recovered(), EnergyOnly);
        assert_eq!(Classical.recovered(), CnnInt8);
        assert_eq!(CnnInt8.recovered(), Cnn);
        assert_eq!(Cnn.recovered(), Cnn);
        // degraded/recovered walk ALL in order, one rung at a time.
        for pair in InferenceLevel::ALL.windows(2) {
            assert_eq!(pair[0].degraded(), pair[1]);
            assert_eq!(pair[1].recovered(), pair[0]);
        }
        assert!(Cnn < CnnInt8 && CnnInt8 < Classical && Classical < EnergyOnly && EnergyOnly < Shed);
    }

    #[test]
    fn bundle_classifies_at_every_rung() {
        let h = small_scenario().harvest().unwrap();
        let bundle = ModelBundle::train(&h, 7).unwrap();
        assert!(!bundle.has_cnn());
        let campaign = small_scenario().record_windows().unwrap();
        let detector = RegionDetector::table_top();
        let (window, _, label) = &campaign.windows[0];
        let ex = extract_window(window, campaign.fs, &detector, None, *label);
        let region = &ex.rows[0];
        // Cnn coerces to classical without a trained CNN.
        let v = bundle.classify(InferenceLevel::Cnn, region);
        assert_eq!(v.level, InferenceLevel::Classical);
        assert!(v.label.is_some());
        let v = bundle.classify(InferenceLevel::Classical, region);
        assert!(v.label.unwrap() < bundle.class_names().len());
        let v = bundle.classify(InferenceLevel::EnergyOnly, region);
        assert_eq!(v.label, None);
        assert!(v.is_speech, "a detected region should carry speech energy");
        let v = bundle.classify(InferenceLevel::Shed, region);
        assert_eq!(v.label, None);
    }

    #[test]
    fn classical_rung_matches_direct_logistic() {
        // The bundle's classical rung must agree with training a Logistic
        // by hand on the same normalized data.
        let h = small_scenario().harvest().unwrap();
        let bundle = ModelBundle::train(&h, 7).unwrap();
        let mut normed = h.features.clone();
        normed.fit_normalization();
        let mut clf = Logistic::default();
        clf.fit(normed.features(), normed.labels(), normed.num_classes());
        for (raw, normed_row) in h.features.features().iter().zip(normed.features()) {
            let rf = RegionFeatures {
                start: 0,
                end: 0,
                features: raw.clone(),
                spectrogram: None,
            };
            let v = bundle.classify(InferenceLevel::Classical, &rf);
            assert_eq!(v.label, Some(clf.predict(normed_row)));
        }
    }

    #[test]
    fn degenerate_bundle_training_errors() {
        let h = small_scenario().harvest().unwrap();
        let mut empty = h.clone();
        empty.features =
            emoleak_features::FeatureDataset::new(feature_names(), vec!["a".into(), "b".into()]);
        assert!(matches!(
            ModelBundle::train(&empty, 1),
            Err(EmoleakError::DegenerateDataset(_))
        ));
        let mut no_specs = h.clone();
        no_specs.spectrograms.clear();
        assert!(matches!(
            ModelBundle::train_with_cnn(&no_specs, 1),
            Err(EmoleakError::DegenerateDataset(_))
        ));
    }

    #[test]
    fn cnn_bundle_trains_and_predicts() {
        // One cheap epoch on a tiny campaign: the point is the plumbing
        // (spectrogram tensors in, a label out), not accuracy.
        let h = small_scenario().harvest().unwrap();
        let bundle = {
            // Pin the CNN cost knobs for this test regardless of ambient
            // env; the lock keeps sibling tests from observing them.
            let _guard = crate::test_support::ENV_LOCK
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let prior = (std::env::var("EMOLEAK_EPOCHS"), std::env::var("EMOLEAK_CNN_DIV"));
            std::env::set_var("EMOLEAK_EPOCHS", "1");
            std::env::set_var("EMOLEAK_CNN_DIV", "8");
            let b = ModelBundle::train_with_cnn(&h, 7).unwrap();
            restore_env("EMOLEAK_EPOCHS", prior.0);
            restore_env("EMOLEAK_CNN_DIV", prior.1);
            b
        };
        assert!(bundle.has_cnn());
        let campaign = small_scenario().record_windows().unwrap();
        let detector = RegionDetector::table_top();
        let spec_gen = SpectrogramGenerator::for_accel();
        let (window, _, label) = &campaign.windows[0];
        let ex = extract_window(window, campaign.fs, &detector, Some(&spec_gen), *label);
        let with_spec = ex.rows.iter().find(|r| r.spectrogram.is_some()).unwrap();
        let v = bundle.classify(InferenceLevel::Cnn, with_spec);
        assert_eq!(v.level, InferenceLevel::Cnn);
        assert!(v.label.unwrap() < bundle.class_names().len());
    }
}
