//! Fleet-level admission types shared by the streaming service and the
//! overload-protection front end (`emoleak-admission`).
//!
//! One `emoleak-stream` session already degrades itself through the
//! [`InferenceLevel`] ladder when *it* misses deadlines. A fleet of
//! sessions needs a second, coarser state machine: when the whole service
//! is saturated, every session must cheapen at once, and at the extreme no
//! new session should be admitted at all. [`FleetState`] is that coarse
//! ladder; [`AdmissionError`] is the typed refusal a caller receives at the
//! front door; [`VerdictMeta`] tags each emission with the tenant, session,
//! and fleet state it was produced under, so multi-tenant output stays
//! attributable without touching the wire-stable [`Verdict`] type.
//!
//! [`Verdict`]: crate::online::Verdict

use crate::online::InferenceLevel;

/// The fleet-wide overload state, best first. Ordered like
/// [`InferenceLevel`]: a *greater* state is a *worse* one, so hysteresis
/// comparisons read the same way on both ladders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FleetState {
    /// Plenty of headroom: sessions run at whatever rung their own ladder
    /// allows.
    Healthy,
    /// Sustained pressure: CNN inference is capped off fleet-wide
    /// (sessions run at [`InferenceLevel::Classical`] or cheaper).
    Degraded,
    /// Serious overload: only energy-only speech flagging survives.
    Saturated,
    /// Brown-out: existing sessions shed every region, and **new sessions
    /// are refused admission** until the fleet recovers.
    BrownOut,
}

impl FleetState {
    /// All states, best first.
    pub const ALL: [FleetState; 4] = [
        FleetState::Healthy,
        FleetState::Degraded,
        FleetState::Saturated,
        FleetState::BrownOut,
    ];

    /// One state worse (saturates at [`FleetState::BrownOut`]).
    #[must_use]
    pub fn worse(self) -> FleetState {
        match self {
            FleetState::Healthy => FleetState::Degraded,
            FleetState::Degraded => FleetState::Saturated,
            _ => FleetState::BrownOut,
        }
    }

    /// One state better (saturates at [`FleetState::Healthy`]).
    #[must_use]
    pub fn better(self) -> FleetState {
        match self {
            FleetState::BrownOut => FleetState::Saturated,
            FleetState::Saturated => FleetState::Degraded,
            _ => FleetState::Healthy,
        }
    }

    /// The cheapest inference rung this state still permits. A session
    /// classifies at the *worse* of its own ladder's rung and this cap.
    pub fn level_cap(self) -> InferenceLevel {
        match self {
            FleetState::Healthy => InferenceLevel::Cnn,
            FleetState::Degraded => InferenceLevel::Classical,
            FleetState::Saturated => InferenceLevel::EnergyOnly,
            FleetState::BrownOut => InferenceLevel::Shed,
        }
    }

    /// Whether new sessions may be admitted in this state. Only
    /// [`FleetState::BrownOut`] closes the front door entirely.
    pub fn admits_sessions(self) -> bool {
        self != FleetState::BrownOut
    }
}

impl core::fmt::Display for FleetState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            FleetState::Healthy => "healthy",
            FleetState::Degraded => "degraded",
            FleetState::Saturated => "saturated",
            FleetState::BrownOut => "brown-out",
        })
    }
}

/// Per-shard *storage* health ladder, best first — the durability analogue
/// of [`FleetState`]. Where [`FleetState`] cheapens compute when the CPU
/// is saturated, this ladder cheapens the durability guarantee when the
/// disk under a shard's journal goes bad: each rung trades a little more
/// crash safety for staying up, and the bottom rung closes the write door
/// rather than ever leaking loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DurabilityLevel {
    /// Full guarantee: primary journal + replica, every append fsynced.
    Durable,
    /// The primary disk is refusing or stalling writes; appends land only
    /// on the replica. A crash now loses nothing (the replica has the
    /// stream), but the shard is one disk away from `MemoryOnly`.
    ReplicaOnly,
    /// No journal accepts writes; emissions survive only in memory. A
    /// crash in this state loses the unjournaled suffix — which the
    /// conservation books must then report as `crash_loss`, never leak.
    MemoryOnly,
    /// Even the memory guarantee is not worth offering (disk gone, no
    /// recovery in sight): new writes are refused with a typed
    /// [`AdmissionError::WritesRefused`] so callers can fail over.
    RefuseWrites,
}

impl DurabilityLevel {
    /// All levels, best first. Index order is the wire coding used by the
    /// journal's durability-transition records.
    pub const ALL: [DurabilityLevel; 4] = [
        DurabilityLevel::Durable,
        DurabilityLevel::ReplicaOnly,
        DurabilityLevel::MemoryOnly,
        DurabilityLevel::RefuseWrites,
    ];

    /// One level worse (saturates at [`DurabilityLevel::RefuseWrites`]).
    #[must_use]
    pub fn worse(self) -> DurabilityLevel {
        match self {
            DurabilityLevel::Durable => DurabilityLevel::ReplicaOnly,
            DurabilityLevel::ReplicaOnly => DurabilityLevel::MemoryOnly,
            _ => DurabilityLevel::RefuseWrites,
        }
    }

    /// One level better (saturates at [`DurabilityLevel::Durable`]).
    #[must_use]
    pub fn better(self) -> DurabilityLevel {
        match self {
            DurabilityLevel::RefuseWrites => DurabilityLevel::MemoryOnly,
            DurabilityLevel::MemoryOnly => DurabilityLevel::ReplicaOnly,
            _ => DurabilityLevel::Durable,
        }
    }

    /// Whether this level still accepts new emissions at all.
    pub fn accepts_writes(self) -> bool {
        self != DurabilityLevel::RefuseWrites
    }

    /// Whether appends still reach the primary journal.
    pub fn journals_primary(self) -> bool {
        self == DurabilityLevel::Durable
    }

    /// Whether appends still reach the replica journal (when one exists).
    pub fn journals_replica(self) -> bool {
        self <= DurabilityLevel::ReplicaOnly
    }
}

impl core::fmt::Display for DurabilityLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            DurabilityLevel::Durable => "durable",
            DurabilityLevel::ReplicaOnly => "replica-only",
            DurabilityLevel::MemoryOnly => "memory-only",
            DurabilityLevel::RefuseWrites => "refuse-writes",
        })
    }
}

/// Why the admission layer refused work. Every variant is a *deliberate*
/// refusal under an explicit budget — callers can retry later, no refusal
/// corrupts state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The tenant exhausted its token bucket (`EMOLEAK_TENANT_RPS`).
    RateLimited {
        /// The throttled tenant.
        tenant: String,
    },
    /// The tenant is already running its full concurrency bulkhead.
    TenantSaturated {
        /// The saturated tenant.
        tenant: String,
        /// The per-tenant concurrency limit that was hit.
        limit: usize,
    },
    /// The global session bulkhead is full (`EMOLEAK_MAX_SESSIONS`).
    FleetSaturated {
        /// The global concurrency limit that was hit.
        limit: usize,
    },
    /// Charging the request against the memory budget would exceed it
    /// (`EMOLEAK_MEM_BUDGET`).
    MemoryExhausted {
        /// Bytes the request wanted to charge.
        requested: u64,
        /// Bytes already charged fleet-wide.
        charged: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The fleet is in [`FleetState::BrownOut`]: no new work is admitted
    /// until the breaker recovers.
    BrownedOut,
    /// The routed shard was fenced (or removed) between routing and
    /// admission — a rebalance race, not a fault. Callers retry; the ring
    /// has already moved the tenant's home.
    ShardFenced {
        /// The shard that is no longer accepting work.
        shard: u32,
    },
    /// The shard's storage ladder sits at
    /// [`DurabilityLevel::RefuseWrites`]: its disk can no longer honor any
    /// durability guarantee, so new writes are refused instead of being
    /// accepted and silently lost. Callers retry once the coordinator has
    /// drained the shard or the disk recovered.
    WritesRefused {
        /// The shard whose storage refused the write.
        shard: u32,
    },
}

impl AdmissionError {
    /// A short stable tag for logs and JSON (`rate-limited`,
    /// `tenant-saturated`, `fleet-saturated`, `memory-exhausted`,
    /// `browned-out`, `shard-fenced`, `writes-refused`).
    pub fn tag(&self) -> &'static str {
        match self {
            AdmissionError::RateLimited { .. } => "rate-limited",
            AdmissionError::TenantSaturated { .. } => "tenant-saturated",
            AdmissionError::FleetSaturated { .. } => "fleet-saturated",
            AdmissionError::MemoryExhausted { .. } => "memory-exhausted",
            AdmissionError::BrownedOut => "browned-out",
            AdmissionError::ShardFenced { .. } => "shard-fenced",
            AdmissionError::WritesRefused { .. } => "writes-refused",
        }
    }
}

impl core::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AdmissionError::RateLimited { tenant } => {
                write!(f, "tenant {tenant} is rate-limited")
            }
            AdmissionError::TenantSaturated { tenant, limit } => {
                write!(f, "tenant {tenant} already runs {limit} concurrent unit(s)")
            }
            AdmissionError::FleetSaturated { limit } => {
                write!(f, "fleet is at its global concurrency limit of {limit}")
            }
            AdmissionError::MemoryExhausted { requested, charged, budget } => write!(
                f,
                "memory budget exhausted: {requested} B requested with {charged}/{budget} B charged"
            ),
            AdmissionError::BrownedOut => {
                write!(f, "fleet is browned out; admission is closed")
            }
            AdmissionError::ShardFenced { shard } => {
                write!(f, "shard {shard} was fenced mid-route; retry for a new placement")
            }
            AdmissionError::WritesRefused { shard } => {
                write!(f, "shard {shard}'s storage refuses writes; retry after failover")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Multi-tenant provenance for one emission: which tenant and session
/// produced it, and the fleet state it was classified under. Kept separate
/// from [`Verdict`](crate::online::Verdict) so the single-session wire
/// format (journals, golden fixtures) is untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictMeta {
    /// The tenant the session belongs to.
    pub tenant: String,
    /// The fleet-assigned session id (unique within a gate's lifetime).
    pub session: u64,
    /// The fleet state at the time the session closed.
    pub fleet_state: FleetState,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn states_order_worst_last_and_walk_both_ways() {
        assert!(FleetState::Healthy < FleetState::Degraded);
        assert!(FleetState::Saturated < FleetState::BrownOut);
        let mut s = FleetState::Healthy;
        for expect in [FleetState::Degraded, FleetState::Saturated, FleetState::BrownOut] {
            s = s.worse();
            assert_eq!(s, expect);
        }
        assert_eq!(s.worse(), FleetState::BrownOut, "saturates at the bottom");
        for expect in [FleetState::Saturated, FleetState::Degraded, FleetState::Healthy] {
            s = s.better();
            assert_eq!(s, expect);
        }
        assert_eq!(s.better(), FleetState::Healthy, "saturates at the top");
    }

    #[test]
    fn level_caps_mirror_the_inference_ladder() {
        // Four fleet states map onto the five-rung ladder; the int8 CNN
        // rung is reached by per-session latency degradation, not by a
        // fleet-wide cap (a struggling fleet wants the bigger step down).
        for (state, level) in [
            (FleetState::Healthy, InferenceLevel::Cnn),
            (FleetState::Degraded, InferenceLevel::Classical),
            (FleetState::Saturated, InferenceLevel::EnergyOnly),
            (FleetState::BrownOut, InferenceLevel::Shed),
        ] {
            assert_eq!(state.level_cap(), level);
        }
        // Applying a cap is a max(): the worse of the two rungs wins.
        assert_eq!(
            InferenceLevel::Cnn.max(FleetState::Saturated.level_cap()),
            InferenceLevel::EnergyOnly
        );
        assert_eq!(
            InferenceLevel::Shed.max(FleetState::Healthy.level_cap()),
            InferenceLevel::Shed
        );
    }

    #[test]
    fn only_brownout_closes_admission() {
        for state in FleetState::ALL {
            assert_eq!(state.admits_sessions(), state != FleetState::BrownOut);
        }
    }

    #[test]
    fn errors_render_their_budget_context() {
        let e = AdmissionError::MemoryExhausted { requested: 4096, charged: 900, budget: 1000 };
        let msg = e.to_string();
        assert!(msg.contains("4096") && msg.contains("900") && msg.contains("1000"), "{msg}");
        assert_eq!(e.tag(), "memory-exhausted");
        let e = AdmissionError::TenantSaturated { tenant: "t7".into(), limit: 3 };
        assert!(e.to_string().contains("t7"));
        assert_eq!(AdmissionError::BrownedOut.tag(), "browned-out");
        let tags: std::collections::BTreeSet<&str> = [
            AdmissionError::RateLimited { tenant: String::new() }.tag(),
            AdmissionError::TenantSaturated { tenant: String::new(), limit: 0 }.tag(),
            AdmissionError::FleetSaturated { limit: 0 }.tag(),
            AdmissionError::MemoryExhausted { requested: 0, charged: 0, budget: 0 }.tag(),
            AdmissionError::BrownedOut.tag(),
            AdmissionError::ShardFenced { shard: 0 }.tag(),
            AdmissionError::WritesRefused { shard: 0 }.tag(),
        ]
        .into();
        assert_eq!(tags.len(), 7, "tags are distinct");
    }

    #[test]
    fn durability_ladder_walks_both_ways_and_gates_writes() {
        let mut l = DurabilityLevel::Durable;
        for expect in [
            DurabilityLevel::ReplicaOnly,
            DurabilityLevel::MemoryOnly,
            DurabilityLevel::RefuseWrites,
        ] {
            l = l.worse();
            assert_eq!(l, expect);
        }
        assert_eq!(l.worse(), DurabilityLevel::RefuseWrites, "saturates at the bottom");
        for expect in [
            DurabilityLevel::MemoryOnly,
            DurabilityLevel::ReplicaOnly,
            DurabilityLevel::Durable,
        ] {
            l = l.better();
            assert_eq!(l, expect);
        }
        assert_eq!(l.better(), DurabilityLevel::Durable, "saturates at the top");
        // Each rung strictly gives up one write target.
        assert!(DurabilityLevel::Durable.journals_primary());
        assert!(DurabilityLevel::Durable.journals_replica());
        assert!(!DurabilityLevel::ReplicaOnly.journals_primary());
        assert!(DurabilityLevel::ReplicaOnly.journals_replica());
        assert!(!DurabilityLevel::MemoryOnly.journals_replica());
        assert!(DurabilityLevel::MemoryOnly.accepts_writes());
        assert!(!DurabilityLevel::RefuseWrites.accepts_writes());
        // Display tags are distinct (they key JSON counters).
        let tags: std::collections::BTreeSet<String> =
            DurabilityLevel::ALL.iter().map(|l| l.to_string()).collect();
        assert_eq!(tags.len(), 4);
    }
}
