//! Harvesting and classification: the attack's data path.
//!
//! [`AttackScenario::harvest`] plays every corpus clip through the phone
//! channel, detects speech regions, and extracts the Table II features and
//! 32×32 spectrograms with playback-time labels. [`evaluate_features`] and
//! [`evaluate_spectrograms`] then run any of the paper's classifiers under
//! the 80/20 or 10-fold protocol.

use crate::error::EmoleakError;
use crate::scenario::AttackScenario;
use emoleak_features::spectrogram::SpectrogramGenerator;
use emoleak_features::{all_feature_names, extract_all, FeatureDataset, LabeledSpectrogram};
use emoleak_ml::eval::{cross_validate, train_test_evaluate, ConfusionMatrix, Evaluation};
use emoleak_ml::nn::{spectrogram_cnn_scaled, CnnClassifier, Tensor, TrainConfig, TrainingHistory};
use emoleak_ml::{forest::RandomForest, lmt::Lmt, logistic::Logistic, one_vs_rest::OneVsRest,
    subspace::RandomSubspace, Classifier};
use emoleak_phone::session::RecordingSession;
use emoleak_phone::FaultLog;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One clip's trace window with its ground-truth speech spans and label.
type LabeledWindow = (Vec<f64>, Vec<(usize, usize)>, usize);
/// A clip queued for continuous-session recording: samples, sample rate,
/// and the (label, ground-truth spans) payload carried through the session.
type SessionClip = (Vec<f64>, f64, (usize, Vec<(usize, usize)>));

/// Everything the attacker extracts from one recording campaign.
#[derive(Debug, Clone)]
pub struct HarvestResult {
    /// Table II features per detected region, labeled by played emotion.
    pub features: FeatureDataset,
    /// 32×32 spectrogram images per detected region.
    pub spectrograms: Vec<LabeledSpectrogram>,
    /// Fraction of ground-truth speech spans recovered by the detector
    /// (paper: ≥ 90 % table-top, ≥ 45 % ear speaker).
    pub detection_rate: f64,
    /// The delivered accelerometer rate (after the Android policy).
    pub accel_fs: f64,
    /// Fault accounting per recording: table-top campaigns record clip by
    /// clip (one entry per clip); handheld campaigns record one continuous
    /// session (a single campaign-wide entry). Empty for fault-free runs.
    pub clip_faults: Vec<FaultLog>,
    /// Aggregate of `clip_faults` over the whole campaign.
    pub faults: FaultLog,
}

impl AttackScenario {
    /// Runs the full recording + extraction campaign for this scenario.
    ///
    /// Table-top campaigns record clip by clip; handheld campaigns record
    /// **one continuous session** of the grouped-by-emotion playback — the
    /// paper's protocol (§V-B: "we collected all the data in a continuous
    /// manner"), which matters because slow posture drift then spans
    /// consecutive clips.
    ///
    /// The per-clip work (synthesis, channel simulation, fault injection,
    /// region detection, feature extraction) runs in parallel on
    /// `EMOLEAK_THREADS` workers, and the result is bit-identical for any
    /// worker count: clip `i` draws from its own RNG stream
    /// `derive_seed(seed, i)` instead of a shared sequential RNG, results
    /// are collected by clip index, and float accumulators are folded in
    /// index order (see `emoleak_exec`).
    ///
    /// A heavily faulted or damped channel degrades gracefully: the result
    /// may carry few (or zero) features, and `clip_faults` accounts for
    /// every injected fault. The downstream `evaluate_*` functions report
    /// such datasets as [`EmoleakError::DegenerateDataset`] rather than
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`EmoleakError::UnknownLabel`] if a corpus clip carries an
    /// emotion missing from the corpus's own class set (a corpus-construction
    /// bug, not a channel condition).
    pub fn harvest(&self) -> Result<HarvestResult, EmoleakError> {
        let session = RecordingSession::new(
            &self.device,
            self.setting.speaker_kind(),
            self.setting.placement(),
        )
        .with_policy(self.policy)
        .with_faults(self.faults.clone());
        let detector = self.setting.region_detector();
        let spec_gen = SpectrogramGenerator::for_accel();
        let emotions = self.corpus.emotions().to_vec();
        let class_names: Vec<String> = emotions.iter().map(|e| e.to_string()).collect();
        let mut features = FeatureDataset::new(all_feature_names(), class_names);
        let fs_out = session.delivered_rate();
        let mut clip_faults = Vec::new();
        let mut faults = FaultLog::default();

        let label_of = |emotion: &emoleak_synth::Emotion| {
            emotions
                .iter()
                .position(|e| e == emotion)
                .ok_or_else(|| EmoleakError::UnknownLabel(emotion.to_string()))
        };

        // Stage 1 — record. Parallel over clip index; clip i synthesizes
        // via `clip_at(i)` and draws channel noise from stream
        // `derive_seed(seed, i)`, so scheduling cannot reorder any draw.
        // Produces (trace window, ground-truth spans within it, label).
        let clip_indices: Vec<usize> = (0..self.corpus.total_clips()).collect();
        let mut windows: Vec<LabeledWindow> = Vec::new();
        match self.setting {
            crate::scenario::Setting::TableTopLoudspeaker => {
                let recorded: Vec<Result<(LabeledWindow, FaultLog), EmoleakError>> =
                    emoleak_exec::par_map_indexed(&clip_indices, |_, &i| {
                        let clip = self.corpus.clip_at(i);
                        let label = label_of(&clip.emotion)?;
                        let mut rng = rand::rngs::StdRng::seed_from_u64(
                            emoleak_exec::derive_seed(self.seed, i as u64),
                        );
                        let (trace, log) =
                            session.record_clip_logged(&clip.samples, clip.fs, &mut rng);
                        let scale = trace.fs / clip.fs;
                        let truth = rescale_spans(&clip.voiced_spans, scale);
                        Ok(((trace.samples, truth, label), log))
                    });
                for r in recorded {
                    let (window, log) = r?;
                    faults.absorb(&log);
                    if !self.faults.is_noop() {
                        clip_faults.push(log);
                    }
                    windows.push(window);
                }
            }
            crate::scenario::Setting::HandheldEarSpeaker => {
                // Synthesis is parallel per clip; the continuous recording
                // itself derives per-clip streams internally
                // (`record_session_seeded`), since posture drift spans
                // clip boundaries and must stay a single whole-session
                // stream.
                let synthesized: Vec<Result<SessionClip, EmoleakError>> =
                    emoleak_exec::par_map_indexed(&clip_indices, |_, &i| {
                        let clip = self.corpus.clip_at(i);
                        let label = label_of(&clip.emotion)?;
                        let scale = fs_out / clip.fs;
                        let truth = rescale_spans(&clip.voiced_spans, scale);
                        Ok((clip.samples, clip.fs, (label, truth)))
                    });
                let mut clips: Vec<SessionClip> = Vec::with_capacity(synthesized.len());
                for c in synthesized {
                    clips.push(c?);
                }
                let session_seed =
                    rand::rngs::StdRng::seed_from_u64(self.seed).next_u64();
                let (st, log) = session.record_session_seeded(clips, session_seed);
                faults.absorb(&log);
                if !self.faults.is_noop() {
                    clip_faults.push(log);
                }
                for (i, span) in st.labels.iter().enumerate() {
                    let window = st.window(i).to_vec();
                    let (label, truth) = span.label.clone();
                    windows.push((window, truth, label));
                }
            }
        }

        // Stage 2 — detect + extract. Parallel over windows; pure DSP with
        // no RNG, combined strictly in window order below.
        struct WindowHarvest {
            rows: Vec<(Vec<f64>, usize)>,
            specs: Vec<LabeledSpectrogram>,
            truth_count: usize,
            hit: f64,
        }
        let processed: Vec<WindowHarvest> =
            emoleak_exec::par_map_indexed(&windows, |_, (window, truth, label)| {
                let regions = detector.detect(window, fs_out);
                let rate = emoleak_features::regions::detection_rate(&regions, truth);
                let hit =
                    if rate.is_finite() { rate * truth.len() as f64 } else { 0.0 };
                let mut rows = Vec::new();
                let mut specs = Vec::new();
                for &(start, end) in &regions {
                    let end = end.min(window.len());
                    let start = start.min(end);
                    let region = &window[start..end];
                    if region.is_empty() {
                        continue;
                    }
                    rows.push((extract_all(region, fs_out), *label));
                    if let Some(img) = spec_gen.generate(region, fs_out, *label) {
                        specs.push(img);
                    }
                }
                WindowHarvest { rows, specs, truth_count: truth.len(), hit }
            });
        let truth_total: usize = processed.iter().map(|w| w.truth_count).sum();
        // f64 addition is order-sensitive; fold the per-window hit mass in
        // index order so worker count cannot change the last bit.
        let truth_hit = emoleak_exec::sum_ordered(processed.iter().map(|w| w.hit));
        let mut spectrograms = Vec::new();
        for w in processed {
            for (row, label) in w.rows {
                features.push(row, label);
            }
            spectrograms.extend(w.specs);
        }
        features.clean_invalid();
        Ok(HarvestResult {
            features,
            spectrograms,
            detection_rate: if truth_total == 0 {
                f64::NAN
            } else {
                truth_hit / truth_total as f64
            },
            accel_fs: fs_out,
            clip_faults,
            faults,
        })
    }
}

fn rescale_spans(spans: &[(usize, usize)], scale: f64) -> Vec<(usize, usize)> {
    spans
        .iter()
        .map(|&(s, e)| ((s as f64 * scale) as usize, (e as f64 * scale) as usize))
        .collect()
}

/// The five classifier families of the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassifierKind {
    /// Weka "Logistic" — multinomial ridge logistic regression.
    Logistic,
    /// Weka "MultiClassClassifier" — one-vs-rest logistic.
    MultiClass,
    /// Weka "trees.LMT" — logistic model tree.
    Lmt,
    /// Weka "RandomForest".
    RandomForest,
    /// Weka "RandomSubSpace".
    RandomSubspace,
    /// The §IV-D.2 CNN on time–frequency features.
    Cnn,
}

impl ClassifierKind {
    /// All classifiers of the loudspeaker tables (III–V).
    pub const LOUDSPEAKER_SET: [ClassifierKind; 4] = [
        ClassifierKind::Logistic,
        ClassifierKind::MultiClass,
        ClassifierKind::Lmt,
        ClassifierKind::Cnn,
    ];

    /// All classifiers of the ear-speaker table (VI).
    pub const EAR_SPEAKER_SET: [ClassifierKind; 4] = [
        ClassifierKind::RandomForest,
        ClassifierKind::RandomSubspace,
        ClassifierKind::Lmt,
        ClassifierKind::Cnn,
    ];

    /// Display name matching the paper's tables.
    pub fn display_name(self) -> &'static str {
        match self {
            ClassifierKind::Logistic => "Logistic",
            ClassifierKind::MultiClass => "multiClassClassifier",
            ClassifierKind::Lmt => "trees.lmt",
            ClassifierKind::RandomForest => "Random Forest",
            ClassifierKind::RandomSubspace => "RandomSubspace",
            ClassifierKind::Cnn => "CNN",
        }
    }
}

/// The evaluation protocol (§IV-D.1 uses both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// Stratified 80/20 train/test split.
    Holdout8020,
    /// Stratified k-fold cross-validation (the paper uses 10).
    KFold(usize),
}

/// CNN cost controls: width divisor 1 is the paper-exact architecture; the
/// default divisor 4 keeps single-core runtimes practical with the same
/// layer structure. Overridable via `EMOLEAK_CNN_DIV` / `EMOLEAK_EPOCHS`.
pub fn cnn_train_config() -> TrainConfig {
    let epochs = std::env::var("EMOLEAK_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    TrainConfig { epochs, batch_size: 16, learning_rate: 3e-3, seed: 0xC44 }
}

/// The CNN channel-width divisor for this run (`EMOLEAK_CNN_DIV`, default 4;
/// set to 1 for the paper-exact architectures).
pub fn cnn_width_divisor() -> usize {
    std::env::var("EMOLEAK_CNN_DIV")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&d| d > 0)
        .unwrap_or(4)
}

fn make_classifier(kind: ClassifierKind, seed: u64) -> Box<dyn Classifier + Send> {
    match kind {
        ClassifierKind::Logistic => Box::new(Logistic::default()),
        ClassifierKind::MultiClass => Box::new(OneVsRest::default()),
        ClassifierKind::Lmt => Box::new(Lmt::default()),
        ClassifierKind::RandomForest => Box::new(RandomForest::new(60, 14, seed)),
        ClassifierKind::RandomSubspace => Box::new(RandomSubspace::new(30, 0.5, 12, seed)),
        ClassifierKind::Cnn => Box::new(
            CnnClassifier::new(cnn_train_config(), seed).with_width_divisor(cnn_width_divisor()),
        ),
    }
}

/// Evaluates one classifier on a harvested feature dataset under the given
/// protocol. Features are z-score normalized with training statistics.
///
/// # Errors
///
/// Returns [`EmoleakError::DegenerateDataset`] when the dataset cannot
/// support the protocol: fewer than 10 rows, fewer than 2 represented
/// classes, a class with fewer than 2 rows (holdout), or fewer rows than
/// folds (k-fold). Heavily faulted harvests routinely hit these conditions;
/// callers should score such campaigns as random-guess performance.
pub fn evaluate_features(
    features: &FeatureDataset,
    kind: ClassifierKind,
    protocol: Protocol,
    seed: u64,
) -> Result<Evaluation, EmoleakError> {
    let counts = features.class_counts();
    let represented = counts.iter().filter(|&&c| c > 0).count();
    if features.len() < 10 {
        return Err(EmoleakError::DegenerateDataset(format!(
            "{} feature rows (need at least 10)",
            features.len()
        )));
    }
    if represented < 2 {
        return Err(EmoleakError::DegenerateDataset(format!(
            "{represented} represented class(es) (need at least 2)"
        )));
    }
    let class_names = features.class_names().to_vec();
    match protocol {
        Protocol::Holdout8020 => {
            if counts.iter().any(|&c| c > 0 && c < 2) {
                return Err(EmoleakError::DegenerateDataset(
                    "a represented class has fewer than 2 rows".into(),
                ));
            }
            let (mut train, mut test) = features.stratified_split(0.8, seed);
            if train.is_empty() || test.is_empty() {
                return Err(EmoleakError::DegenerateDataset(
                    "holdout split produced an empty train or test set".into(),
                ));
            }
            let params = train.fit_normalization();
            test.apply_normalization(&params);
            let mut clf = make_classifier(kind, seed);
            Ok(train_test_evaluate(
                clf.as_mut(),
                train.features(),
                train.labels(),
                test.features(),
                test.labels(),
                &class_names,
            ))
        }
        Protocol::KFold(k) => {
            if k < 2 || features.len() < k {
                return Err(EmoleakError::DegenerateDataset(format!(
                    "{} rows cannot be split into {k} folds",
                    features.len()
                )));
            }
            let mut normed = features.clone();
            normed.fit_normalization();
            Ok(cross_validate(
                || BoxedClassifier { inner: make_classifier(kind, seed) },
                normed.features(),
                normed.labels(),
                &class_names,
                k,
                seed,
            ))
        }
    }
}

/// Adapter so `cross_validate` (generic over `C: Classifier + Send`) can
/// construct fresh boxed classifiers of a runtime-selected kind.
struct BoxedClassifier {
    inner: Box<dyn Classifier + Send>,
}

impl Classifier for BoxedClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n: usize) {
        self.inner.fit(x, y, n)
    }

    fn predict(&self, x: &[f64]) -> usize {
        self.inner.predict(x)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Evaluates every classifier in `kinds` on the same harvested dataset, in
/// parallel — the shape of the paper's per-table classifier columns.
///
/// Each `(kind, result)` pair is exactly what a sequential
/// [`evaluate_features`] loop would produce: classifiers never share RNG
/// state (each seeds from `seed`), and results are returned in `kinds`
/// order. Per-classifier inner parallelism (k-fold) automatically runs
/// serially inside these workers, so total thread count stays bounded.
pub fn evaluate_feature_grid(
    features: &FeatureDataset,
    kinds: &[ClassifierKind],
    protocol: Protocol,
    seed: u64,
) -> Vec<(ClassifierKind, Result<Evaluation, EmoleakError>)> {
    let evals = emoleak_exec::par_map_indexed(kinds, |_, &kind| {
        evaluate_features(features, kind, protocol, seed)
    });
    kinds.iter().copied().zip(evals).collect()
}

/// The spectrogram-CNN evaluation (§IV-C): stratified 80/20 over labeled
/// images, with the paper's three-conv architecture (width scaled by
/// `EMOLEAK_CNN_DIV`; divisor 1 is paper-exact). Returns the evaluation and
/// the training history.
///
/// # Errors
///
/// Returns [`EmoleakError::DegenerateDataset`] for fewer than 10 images or
/// fewer than 2 represented classes (common outcomes of heavily faulted
/// campaigns).
pub fn evaluate_spectrograms(
    spectrograms: &[LabeledSpectrogram],
    class_names: &[String],
    seed: u64,
) -> Result<(Evaluation, TrainingHistory), EmoleakError> {
    if spectrograms.len() < 10 {
        return Err(EmoleakError::DegenerateDataset(format!(
            "{} spectrograms (need at least 10)",
            spectrograms.len()
        )));
    }
    let mut class_seen = vec![false; class_names.len()];
    for s in spectrograms {
        if let Some(seen) = class_seen.get_mut(s.label) {
            *seen = true;
        }
    }
    let represented = class_seen.iter().filter(|&&s| s).count();
    if represented < 2 {
        return Err(EmoleakError::DegenerateDataset(format!(
            "{represented} represented class(es) among spectrograms (need at least 2)"
        )));
    }
    let side = emoleak_features::spectrogram::IMAGE_SIZE;
    // Large campaigns produce thousands of images; single-core training
    // cost is linear in that count, so cap the per-class sample count
    // (stratified) at EMOLEAK_MAX_IMAGES/classes, default 600 total.
    let max_images: usize = std::env::var("EMOLEAK_MAX_IMAGES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 10)
        .unwrap_or(600);
    let per_class = (max_images / class_names.len()).max(2);
    // Stratified 80/20 split by label.
    use rand::seq::SliceRandom;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for class in 0..class_names.len() {
        let mut idx: Vec<usize> = (0..spectrograms.len())
            .filter(|&i| spectrograms[i].label == class)
            .collect();
        idx.shuffle(&mut rng);
        idx.truncate(per_class);
        let n_train = (idx.len() as f64 * 0.8).round() as usize;
        train_idx.extend_from_slice(&idx[..n_train]);
        test_idx.extend_from_slice(&idx[n_train..]);
    }
    let to_tensor = |i: usize| {
        Tensor::from_shape(&[1, side, side], spectrograms[i].pixels.clone())
    };
    let train_x: Vec<Tensor> = train_idx.iter().map(|&i| to_tensor(i)).collect();
    let train_y: Vec<usize> = train_idx.iter().map(|&i| spectrograms[i].label).collect();
    let test_x: Vec<Tensor> = test_idx.iter().map(|&i| to_tensor(i)).collect();
    let test_y: Vec<usize> = test_idx.iter().map(|&i| spectrograms[i].label).collect();

    let mut net = spectrogram_cnn_scaled(class_names.len(), seed, cnn_width_divisor());
    let history = net.fit(&train_x, &train_y, &test_x, &test_y, &cnn_train_config());
    let mut confusion = ConfusionMatrix::new(class_names.to_vec());
    for (x, &y) in test_x.iter().zip(&test_y) {
        confusion.record(y, net.predict(x));
    }
    Ok((Evaluation { accuracy: confusion.accuracy(), confusion }, history))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_phone::DeviceProfile;
    use emoleak_synth::CorpusSpec;

    fn small_scenario() -> AttackScenario {
        AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(3),
            DeviceProfile::oneplus_7t(),
        )
    }

    #[test]
    fn harvest_produces_labeled_data() {
        let h = small_scenario().harvest().unwrap();
        assert!(h.features.len() > 20, "features {}", h.features.len());
        assert_eq!(h.features.dim(), 24);
        assert_eq!(h.features.num_classes(), 7);
        assert!(!h.spectrograms.is_empty());
        assert!(h.detection_rate > 0.5, "detection {}", h.detection_rate);
        assert!(h.accel_fs > 200.0);
        // Every class is represented.
        assert!(h.features.class_counts().iter().all(|&c| c > 0));
        // A fault-free campaign carries clean accounting.
        assert!(h.faults.is_clean());
        assert!(h.clip_faults.is_empty());
    }

    #[test]
    fn harvest_is_deterministic() {
        let a = small_scenario().harvest().unwrap();
        let b = small_scenario().harvest().unwrap();
        assert_eq!(a.features.features(), b.features.features());
        assert_eq!(a.detection_rate, b.detection_rate);
    }

    #[test]
    fn classical_classifier_beats_random_guess_on_small_harvest() {
        let h = AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(6),
            DeviceProfile::oneplus_7t(),
        )
        .harvest()
        .unwrap();
        let eval =
            evaluate_features(&h.features, ClassifierKind::Logistic, Protocol::Holdout8020, 1)
                .unwrap();
        assert!(
            eval.accuracy > 2.0 / 7.0,
            "accuracy {} should beat 2x random guess",
            eval.accuracy
        );
    }

    #[test]
    fn capped_policy_reduces_rate() {
        let h = small_scenario()
            .with_policy(emoleak_phone::SamplingPolicy::Capped200Hz)
            .harvest()
            .unwrap();
        assert_eq!(h.accel_fs, 200.0);
    }

    #[test]
    fn faulted_harvest_accounts_per_clip() {
        use emoleak_phone::FaultProfile;
        let h = small_scenario()
            .with_faults(FaultProfile::handheld_walking())
            .harvest()
            .unwrap();
        // Table-top records clip by clip: one log per corpus clip.
        let n_clips = small_scenario().corpus.iter().count();
        assert_eq!(h.clip_faults.len(), n_clips);
        assert!(!h.faults.is_clean());
        assert!(h.faults.dropped > 0);
        // Features still flow (moderate faults degrade, not destroy).
        assert!(h.features.len() > 10, "features {}", h.features.len());
        assert!(h.features.features().iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn extreme_faults_degrade_gracefully() {
        use emoleak_phone::FaultProfile;
        // Severity 20 on the walking profile: most samples dropped, the
        // rest clipped at a tiny full scale. The pipeline must not panic.
        let h = small_scenario()
            .with_faults(FaultProfile::handheld_walking().with_severity(20.0))
            .harvest()
            .unwrap();
        assert!(h.faults.dropped > 0);
        match evaluate_features(&h.features, ClassifierKind::Logistic, Protocol::Holdout8020, 1) {
            Ok(eval) => assert!((0.0..=1.0).contains(&eval.accuracy) || eval.accuracy.is_nan()),
            Err(EmoleakError::DegenerateDataset(_)) => {} // expected outcome
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn degenerate_datasets_error_not_panic() {
        use emoleak_features::FeatureDataset;
        let empty = FeatureDataset::new(all_feature_names(), vec!["a".into(), "b".into()]);
        assert!(matches!(
            evaluate_features(&empty, ClassifierKind::Logistic, Protocol::Holdout8020, 1),
            Err(EmoleakError::DegenerateDataset(_))
        ));
        let mut one_class = FeatureDataset::new(all_feature_names(), vec!["a".into(), "b".into()]);
        for _ in 0..12 {
            one_class.push(vec![0.0; all_feature_names().len()], 0);
        }
        assert!(matches!(
            evaluate_features(&one_class, ClassifierKind::Logistic, Protocol::Holdout8020, 1),
            Err(EmoleakError::DegenerateDataset(_))
        ));
        assert!(matches!(
            evaluate_features(&one_class, ClassifierKind::Logistic, Protocol::KFold(100), 1),
            Err(EmoleakError::DegenerateDataset(_))
        ));
        assert!(matches!(
            evaluate_spectrograms(&[], &["a".into(), "b".into()], 1),
            Err(EmoleakError::DegenerateDataset(_))
        ));
    }
}
