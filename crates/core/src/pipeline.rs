//! Harvesting and classification: the attack's data path.
//!
//! [`AttackScenario::harvest`] plays every corpus clip through the phone
//! channel, detects speech regions, and extracts the Table II features and
//! 32×32 spectrograms with playback-time labels. [`evaluate_features`] and
//! [`evaluate_spectrograms`] then run any of the paper's classifiers under
//! the 80/20 or 10-fold protocol.

use crate::error::EmoleakError;
use crate::scenario::AttackScenario;
use emoleak_features::spectrogram::SpectrogramGenerator;
use emoleak_features::{all_feature_names, FeatureDataset, LabeledSpectrogram};
use emoleak_ml::eval::{cross_validate, train_test_evaluate, ConfusionMatrix, Evaluation};
use emoleak_ml::nn::{spectrogram_cnn_scaled, CnnClassifier, Tensor, TrainConfig, TrainingHistory};
use emoleak_ml::{forest::RandomForest, lmt::Lmt, logistic::Logistic, one_vs_rest::OneVsRest,
    subspace::RandomSubspace, Classifier};
use emoleak_phone::FaultLog;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Everything the attacker extracts from one recording campaign.
#[derive(Debug, Clone)]
pub struct HarvestResult {
    /// Table II features per detected region, labeled by played emotion.
    pub features: FeatureDataset,
    /// 32×32 spectrogram images per detected region.
    pub spectrograms: Vec<LabeledSpectrogram>,
    /// Fraction of ground-truth speech spans recovered by the detector
    /// (paper: ≥ 90 % table-top, ≥ 45 % ear speaker).
    pub detection_rate: f64,
    /// The delivered accelerometer rate (after the Android policy).
    pub accel_fs: f64,
    /// Fault accounting per recording: table-top campaigns record clip by
    /// clip (one entry per clip); handheld campaigns record one continuous
    /// session (a single campaign-wide entry). Empty for fault-free runs.
    pub clip_faults: Vec<FaultLog>,
    /// Aggregate of `clip_faults` over the whole campaign.
    pub faults: FaultLog,
}

impl AttackScenario {
    /// Runs the full recording + extraction campaign for this scenario.
    ///
    /// Table-top campaigns record clip by clip; handheld campaigns record
    /// **one continuous session** of the grouped-by-emotion playback — the
    /// paper's protocol (§V-B: "we collected all the data in a continuous
    /// manner"), which matters because slow posture drift then spans
    /// consecutive clips.
    ///
    /// The per-clip work (synthesis, channel simulation, fault injection,
    /// region detection, feature extraction) runs in parallel on
    /// `EMOLEAK_THREADS` workers, and the result is bit-identical for any
    /// worker count: clip `i` draws from its own RNG stream
    /// `derive_seed(seed, i)` instead of a shared sequential RNG, results
    /// are collected by clip index, and float accumulators are folded in
    /// index order (see `emoleak_exec`).
    ///
    /// A heavily faulted or damped channel degrades gracefully: the result
    /// may carry few (or zero) features, and `clip_faults` accounts for
    /// every injected fault. The downstream `evaluate_*` functions report
    /// such datasets as [`EmoleakError::DegenerateDataset`] rather than
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`EmoleakError::UnknownLabel`] if a corpus clip carries an
    /// emotion missing from the corpus's own class set (a corpus-construction
    /// bug, not a channel condition), wrapped in [`EmoleakError::InClip`]
    /// identifying the offending clip.
    pub fn harvest(&self) -> Result<HarvestResult, EmoleakError> {
        // Stage 1 — record (see `online::record_windows`).
        let campaign = self.record_windows()?;
        let detector = self.setting.region_detector();
        let spec_gen = SpectrogramGenerator::for_accel();
        let mut features =
            FeatureDataset::new(all_feature_names(), campaign.class_names.clone());
        let fs_out = campaign.fs;

        // Stage 2 — detect + extract. Parallel over windows; pure DSP with
        // no RNG, combined strictly in window order below. The per-window
        // body is `online::extract_window`, shared verbatim with the
        // streaming service so batch and online features are identical.
        let processed: Vec<crate::online::WindowExtraction> =
            emoleak_exec::par_map_indexed(&campaign.windows, |_, (window, _truth, label)| {
                crate::online::extract_window(window, fs_out, &detector, Some(&spec_gen), *label)
            });
        let truth_total: usize = campaign.windows.iter().map(|(_, t, _)| t.len()).sum();
        // f64 addition is order-sensitive; fold the per-window hit mass in
        // index order so worker count cannot change the last bit.
        let truth_hit =
            emoleak_exec::sum_ordered(processed.iter().zip(&campaign.windows).map(
                |(ex, (_, truth, _))| {
                    let rate =
                        emoleak_features::regions::detection_rate(&ex.regions, truth);
                    if rate.is_finite() { rate * truth.len() as f64 } else { 0.0 }
                },
            ));
        let mut spectrograms = Vec::new();
        for (ex, (_, _, label)) in processed.into_iter().zip(&campaign.windows) {
            for rf in ex.rows {
                features.push(rf.features, *label);
                if let Some(img) = rf.spectrogram {
                    spectrograms.push(img);
                }
            }
        }
        features.clean_invalid();
        Ok(HarvestResult {
            features,
            spectrograms,
            detection_rate: if truth_total == 0 {
                f64::NAN
            } else {
                truth_hit / truth_total as f64
            },
            accel_fs: fs_out,
            clip_faults: campaign.clip_faults,
            faults: campaign.faults,
        })
    }
}

/// The five classifier families of the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassifierKind {
    /// Weka "Logistic" — multinomial ridge logistic regression.
    Logistic,
    /// Weka "MultiClassClassifier" — one-vs-rest logistic.
    MultiClass,
    /// Weka "trees.LMT" — logistic model tree.
    Lmt,
    /// Weka "RandomForest".
    RandomForest,
    /// Weka "RandomSubSpace".
    RandomSubspace,
    /// The §IV-D.2 CNN on time–frequency features.
    Cnn,
}

impl ClassifierKind {
    /// All classifiers of the loudspeaker tables (III–V).
    pub const LOUDSPEAKER_SET: [ClassifierKind; 4] = [
        ClassifierKind::Logistic,
        ClassifierKind::MultiClass,
        ClassifierKind::Lmt,
        ClassifierKind::Cnn,
    ];

    /// All classifiers of the ear-speaker table (VI).
    pub const EAR_SPEAKER_SET: [ClassifierKind; 4] = [
        ClassifierKind::RandomForest,
        ClassifierKind::RandomSubspace,
        ClassifierKind::Lmt,
        ClassifierKind::Cnn,
    ];

    /// Display name matching the paper's tables.
    pub fn display_name(self) -> &'static str {
        match self {
            ClassifierKind::Logistic => "Logistic",
            ClassifierKind::MultiClass => "multiClassClassifier",
            ClassifierKind::Lmt => "trees.lmt",
            ClassifierKind::RandomForest => "Random Forest",
            ClassifierKind::RandomSubspace => "RandomSubspace",
            ClassifierKind::Cnn => "CNN",
        }
    }
}

/// The evaluation protocol (§IV-D.1 uses both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// Stratified 80/20 train/test split.
    Holdout8020,
    /// Stratified k-fold cross-validation (the paper uses 10).
    KFold(usize),
}

/// CNN cost controls: width divisor 1 is the paper-exact architecture; the
/// default divisor 4 keeps single-core runtimes practical with the same
/// layer structure. Overridable via `EMOLEAK_CNN_DIV` / `EMOLEAK_EPOCHS`.
///
/// # Errors
///
/// Returns [`EmoleakError::Config`] when `EMOLEAK_EPOCHS` is set to
/// anything other than a positive integer. A set knob either applies or
/// errors — it is never silently replaced by the default (same contract as
/// `EMOLEAK_THREADS` in `emoleak_exec`).
pub fn cnn_train_config() -> Result<TrainConfig, EmoleakError> {
    let epochs =
        emoleak_exec::parse_checked::<usize>("EMOLEAK_EPOCHS", "a positive integer", |&n| {
            n > 0
        })?
        .unwrap_or(40);
    Ok(TrainConfig { epochs, batch_size: 16, learning_rate: 3e-3, seed: 0xC44 })
}

/// The CNN channel-width divisor for this run (`EMOLEAK_CNN_DIV`, default 4;
/// set to 1 for the paper-exact architectures).
///
/// # Errors
///
/// Returns [`EmoleakError::Config`] when `EMOLEAK_CNN_DIV` is set to
/// anything other than a positive integer.
pub fn cnn_width_divisor() -> Result<usize, EmoleakError> {
    Ok(
        emoleak_exec::parse_checked::<usize>("EMOLEAK_CNN_DIV", "a positive integer", |&d| {
            d > 0
        })?
        .unwrap_or(4),
    )
}

/// Builds a classifier of `kind`. CNN settings are resolved (and their env
/// knobs validated) once by the caller and passed in, so this stays
/// infallible and cheap inside per-fold factory closures.
fn make_classifier(
    kind: ClassifierKind,
    seed: u64,
    cnn: Option<(TrainConfig, usize)>,
) -> Box<dyn Classifier + Send> {
    match kind {
        ClassifierKind::Logistic => Box::new(Logistic::default()),
        ClassifierKind::MultiClass => Box::new(OneVsRest::default()),
        ClassifierKind::Lmt => Box::new(Lmt::default()),
        ClassifierKind::RandomForest => Box::new(RandomForest::new(60, 14, seed)),
        ClassifierKind::RandomSubspace => Box::new(RandomSubspace::new(30, 0.5, 12, seed)),
        ClassifierKind::Cnn => {
            let (config, divisor) = cnn.expect("CNN settings resolved by the caller");
            Box::new(CnnClassifier::new(config, seed).with_width_divisor(divisor))
        }
    }
}

/// Evaluates one classifier on a harvested feature dataset under the given
/// protocol. Features are z-score normalized with training statistics.
///
/// # Errors
///
/// Returns [`EmoleakError::DegenerateDataset`] when the dataset cannot
/// support the protocol: fewer than 10 rows, fewer than 2 represented
/// classes, a class with fewer than 2 rows (holdout), or fewer rows than
/// folds (k-fold). Heavily faulted harvests routinely hit these conditions;
/// callers should score such campaigns as random-guess performance.
///
/// For the CNN, returns [`EmoleakError::Config`] when `EMOLEAK_EPOCHS` or
/// `EMOLEAK_CNN_DIV` is set to a malformed value.
pub fn evaluate_features(
    features: &FeatureDataset,
    kind: ClassifierKind,
    protocol: Protocol,
    seed: u64,
) -> Result<Evaluation, EmoleakError> {
    let counts = features.class_counts();
    let represented = counts.iter().filter(|&&c| c > 0).count();
    if features.len() < 10 {
        return Err(EmoleakError::DegenerateDataset(format!(
            "{} feature rows (need at least 10)",
            features.len()
        )));
    }
    if represented < 2 {
        return Err(EmoleakError::DegenerateDataset(format!(
            "{represented} represented class(es) (need at least 2)"
        )));
    }
    let class_names = features.class_names().to_vec();
    // Resolve (and strictly validate) the CNN env knobs once, up front:
    // the per-fold factory below must stay infallible.
    let cnn = match kind {
        ClassifierKind::Cnn => Some((cnn_train_config()?, cnn_width_divisor()?)),
        _ => None,
    };
    match protocol {
        Protocol::Holdout8020 => {
            if counts.iter().any(|&c| c > 0 && c < 2) {
                return Err(EmoleakError::DegenerateDataset(
                    "a represented class has fewer than 2 rows".into(),
                ));
            }
            let (mut train, mut test) = features.stratified_split(0.8, seed);
            if train.is_empty() || test.is_empty() {
                return Err(EmoleakError::DegenerateDataset(
                    "holdout split produced an empty train or test set".into(),
                ));
            }
            let params = train.fit_normalization();
            test.apply_normalization(&params);
            let mut clf = make_classifier(kind, seed, cnn);
            Ok(train_test_evaluate(
                clf.as_mut(),
                train.features(),
                train.labels(),
                test.features(),
                test.labels(),
                &class_names,
            ))
        }
        Protocol::KFold(k) => {
            if k < 2 || features.len() < k {
                return Err(EmoleakError::DegenerateDataset(format!(
                    "{} rows cannot be split into {k} folds",
                    features.len()
                )));
            }
            let mut normed = features.clone();
            normed.fit_normalization();
            Ok(cross_validate(
                || BoxedClassifier { inner: make_classifier(kind, seed, cnn.clone()) },
                normed.features(),
                normed.labels(),
                &class_names,
                k,
                seed,
            ))
        }
    }
}

/// Adapter so `cross_validate` (generic over `C: Classifier + Send`) can
/// construct fresh boxed classifiers of a runtime-selected kind.
struct BoxedClassifier {
    inner: Box<dyn Classifier + Send>,
}

impl Classifier for BoxedClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n: usize) {
        self.inner.fit(x, y, n)
    }

    fn predict(&self, x: &[f64]) -> usize {
        self.inner.predict(x)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Evaluates every classifier in `kinds` on the same harvested dataset, in
/// parallel — the shape of the paper's per-table classifier columns.
///
/// Each `(kind, result)` pair is exactly what a sequential
/// [`evaluate_features`] loop would produce: classifiers never share RNG
/// state (each seeds from `seed`), and results are returned in `kinds`
/// order. Per-classifier inner parallelism (k-fold) automatically runs
/// serially inside these workers, so total thread count stays bounded.
pub fn evaluate_feature_grid(
    features: &FeatureDataset,
    kinds: &[ClassifierKind],
    protocol: Protocol,
    seed: u64,
) -> Vec<(ClassifierKind, Result<Evaluation, EmoleakError>)> {
    let evals = emoleak_exec::par_map_indexed(kinds, |_, &kind| {
        evaluate_features(features, kind, protocol, seed)
    });
    kinds.iter().copied().zip(evals).collect()
}

/// The spectrogram-CNN evaluation (§IV-C): stratified 80/20 over labeled
/// images, with the paper's three-conv architecture (width scaled by
/// `EMOLEAK_CNN_DIV`; divisor 1 is paper-exact). Returns the evaluation and
/// the training history.
///
/// # Errors
///
/// Returns [`EmoleakError::DegenerateDataset`] for fewer than 10 images or
/// fewer than 2 represented classes (common outcomes of heavily faulted
/// campaigns), and [`EmoleakError::Config`] when `EMOLEAK_MAX_IMAGES`,
/// `EMOLEAK_EPOCHS` or `EMOLEAK_CNN_DIV` is set to a malformed value.
pub fn evaluate_spectrograms(
    spectrograms: &[LabeledSpectrogram],
    class_names: &[String],
    seed: u64,
) -> Result<(Evaluation, TrainingHistory), EmoleakError> {
    if spectrograms.len() < 10 {
        return Err(EmoleakError::DegenerateDataset(format!(
            "{} spectrograms (need at least 10)",
            spectrograms.len()
        )));
    }
    let mut class_seen = vec![false; class_names.len()];
    for s in spectrograms {
        if let Some(seen) = class_seen.get_mut(s.label) {
            *seen = true;
        }
    }
    let represented = class_seen.iter().filter(|&&s| s).count();
    if represented < 2 {
        return Err(EmoleakError::DegenerateDataset(format!(
            "{represented} represented class(es) among spectrograms (need at least 2)"
        )));
    }
    let side = emoleak_features::spectrogram::IMAGE_SIZE;
    // Large campaigns produce thousands of images; single-core training
    // cost is linear in that count, so cap the per-class sample count
    // (stratified) at EMOLEAK_MAX_IMAGES/classes, default 600 total.
    let max_images: usize = emoleak_exec::parse_checked::<usize>(
        "EMOLEAK_MAX_IMAGES",
        "an integer of at least 10",
        |&n| n >= 10,
    )?
    .unwrap_or(600);
    let per_class = (max_images / class_names.len()).max(2);
    // Stratified 80/20 split by label.
    use rand::seq::SliceRandom;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for class in 0..class_names.len() {
        let mut idx: Vec<usize> = (0..spectrograms.len())
            .filter(|&i| spectrograms[i].label == class)
            .collect();
        idx.shuffle(&mut rng);
        idx.truncate(per_class);
        let n_train = (idx.len() as f64 * 0.8).round() as usize;
        train_idx.extend_from_slice(&idx[..n_train]);
        test_idx.extend_from_slice(&idx[n_train..]);
    }
    let to_tensor = |i: usize| {
        Tensor::from_shape(&[1, side, side], spectrograms[i].pixels.clone())
    };
    let train_x: Vec<Tensor> = train_idx.iter().map(|&i| to_tensor(i)).collect();
    let train_y: Vec<usize> = train_idx.iter().map(|&i| spectrograms[i].label).collect();
    let test_x: Vec<Tensor> = test_idx.iter().map(|&i| to_tensor(i)).collect();
    let test_y: Vec<usize> = test_idx.iter().map(|&i| spectrograms[i].label).collect();

    let mut net = spectrogram_cnn_scaled(class_names.len(), seed, cnn_width_divisor()?);
    let history = net.fit(&train_x, &train_y, &test_x, &test_y, &cnn_train_config()?);
    let mut confusion = ConfusionMatrix::new(class_names.to_vec());
    for (x, &y) in test_x.iter().zip(&test_y) {
        confusion.record(y, net.predict(x));
    }
    Ok((Evaluation { accuracy: confusion.accuracy(), confusion }, history))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emoleak_phone::DeviceProfile;
    use emoleak_synth::CorpusSpec;

    fn small_scenario() -> AttackScenario {
        AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(3),
            DeviceProfile::oneplus_7t(),
        )
    }

    #[test]
    fn harvest_produces_labeled_data() {
        let h = small_scenario().harvest().unwrap();
        assert!(h.features.len() > 20, "features {}", h.features.len());
        assert_eq!(h.features.dim(), 24);
        assert_eq!(h.features.num_classes(), 7);
        assert!(!h.spectrograms.is_empty());
        assert!(h.detection_rate > 0.5, "detection {}", h.detection_rate);
        assert!(h.accel_fs > 200.0);
        // Every class is represented.
        assert!(h.features.class_counts().iter().all(|&c| c > 0));
        // A fault-free campaign carries clean accounting.
        assert!(h.faults.is_clean());
        assert!(h.clip_faults.is_empty());
    }

    #[test]
    fn harvest_is_deterministic() {
        let a = small_scenario().harvest().unwrap();
        let b = small_scenario().harvest().unwrap();
        assert_eq!(a.features.features(), b.features.features());
        assert_eq!(a.detection_rate, b.detection_rate);
    }

    #[test]
    fn classical_classifier_beats_random_guess_on_small_harvest() {
        let h = AttackScenario::table_top(
            CorpusSpec::tess().with_clips_per_cell(6),
            DeviceProfile::oneplus_7t(),
        )
        .harvest()
        .unwrap();
        let eval =
            evaluate_features(&h.features, ClassifierKind::Logistic, Protocol::Holdout8020, 1)
                .unwrap();
        assert!(
            eval.accuracy > 2.0 / 7.0,
            "accuracy {} should beat 2x random guess",
            eval.accuracy
        );
    }

    #[test]
    fn capped_policy_reduces_rate() {
        let h = small_scenario()
            .with_policy(emoleak_phone::SamplingPolicy::Capped200Hz)
            .harvest()
            .unwrap();
        assert_eq!(h.accel_fs, 200.0);
    }

    #[test]
    fn faulted_harvest_accounts_per_clip() {
        use emoleak_phone::FaultProfile;
        let h = small_scenario()
            .with_faults(FaultProfile::handheld_walking())
            .harvest()
            .unwrap();
        // Table-top records clip by clip: one log per corpus clip.
        let n_clips = small_scenario().corpus.iter().count();
        assert_eq!(h.clip_faults.len(), n_clips);
        assert!(!h.faults.is_clean());
        assert!(h.faults.dropped > 0);
        // Features still flow (moderate faults degrade, not destroy).
        assert!(h.features.len() > 10, "features {}", h.features.len());
        assert!(h.features.features().iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn extreme_faults_degrade_gracefully() {
        use emoleak_phone::FaultProfile;
        // Severity 20 on the walking profile: most samples dropped, the
        // rest clipped at a tiny full scale. The pipeline must not panic.
        let h = small_scenario()
            .with_faults(FaultProfile::handheld_walking().with_severity(20.0))
            .harvest()
            .unwrap();
        assert!(h.faults.dropped > 0);
        match evaluate_features(&h.features, ClassifierKind::Logistic, Protocol::Holdout8020, 1) {
            Ok(eval) => assert!((0.0..=1.0).contains(&eval.accuracy) || eval.accuracy.is_nan()),
            Err(EmoleakError::DegenerateDataset(_)) => {} // expected outcome
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    fn restore_env(name: &str, prior: Result<String, std::env::VarError>) {
        match prior {
            Ok(v) => std::env::set_var(name, v),
            Err(_) => std::env::remove_var(name),
        }
    }

    #[test]
    fn malformed_env_knobs_error_not_default() {
        let _guard = crate::test_support::ENV_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());

        let prior = std::env::var("EMOLEAK_EPOCHS");
        for bad in ["abc", "0", "-3", "4.5", ""] {
            std::env::set_var("EMOLEAK_EPOCHS", bad);
            let err = cnn_train_config().unwrap_err();
            assert!(matches!(err, EmoleakError::Config(_)), "{bad:?}: {err}");
            assert!(err.to_string().contains("EMOLEAK_EPOCHS"), "{err}");
        }
        std::env::set_var("EMOLEAK_EPOCHS", "12");
        assert_eq!(cnn_train_config().unwrap().epochs, 12);
        restore_env("EMOLEAK_EPOCHS", prior);
        assert!(cnn_train_config().is_ok(), "ambient env must stay valid");

        let prior = std::env::var("EMOLEAK_CNN_DIV");
        std::env::set_var("EMOLEAK_CNN_DIV", "zero");
        assert!(matches!(cnn_width_divisor(), Err(EmoleakError::Config(_))));
        std::env::set_var("EMOLEAK_CNN_DIV", "2");
        assert_eq!(cnn_width_divisor().unwrap(), 2);
        restore_env("EMOLEAK_CNN_DIV", prior);

        // Malformed knobs surface through the public evaluation entry
        // points as typed Config errors, not as silently-defaulted runs.
        let prior = std::env::var("EMOLEAK_MAX_IMAGES");
        std::env::set_var("EMOLEAK_MAX_IMAGES", "lots");
        let specs: Vec<LabeledSpectrogram> = (0..12)
            .map(|i| LabeledSpectrogram {
                pixels: vec![0.5; emoleak_features::spectrogram::IMAGE_SIZE.pow(2)],
                label: i % 2,
            })
            .collect();
        let out = evaluate_spectrograms(&specs, &["a".into(), "b".into()], 1);
        assert!(matches!(out, Err(EmoleakError::Config(_))), "{out:?}");
        restore_env("EMOLEAK_MAX_IMAGES", prior);
    }

    #[test]
    fn degenerate_datasets_error_not_panic() {
        use emoleak_features::FeatureDataset;
        let empty = FeatureDataset::new(all_feature_names(), vec!["a".into(), "b".into()]);
        assert!(matches!(
            evaluate_features(&empty, ClassifierKind::Logistic, Protocol::Holdout8020, 1),
            Err(EmoleakError::DegenerateDataset(_))
        ));
        let mut one_class = FeatureDataset::new(all_feature_names(), vec!["a".into(), "b".into()]);
        for _ in 0..12 {
            one_class.push(vec![0.0; all_feature_names().len()], 0);
        }
        assert!(matches!(
            evaluate_features(&one_class, ClassifierKind::Logistic, Protocol::Holdout8020, 1),
            Err(EmoleakError::DegenerateDataset(_))
        ));
        assert!(matches!(
            evaluate_features(&one_class, ClassifierKind::Logistic, Protocol::KFold(100), 1),
            Err(EmoleakError::DegenerateDataset(_))
        ));
        assert!(matches!(
            evaluate_spectrograms(&[], &["a".into(), "b".into()], 1),
            Err(EmoleakError::DegenerateDataset(_))
        ));
    }
}
