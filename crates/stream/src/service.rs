//! The streaming inference service: source → chunks → regions → verdicts.
//!
//! Three supervised worker stages connected by bounded queues:
//!
//! ```text
//! ingest ──BoundedQueue<SourceChunk>──▶ extract ──BoundedQueue<PendingRegion>──▶ classify
//! (retry w/ backoff)                   (window assembly +                       (ModelBundle +
//!                                       region detection/features)              degradation ladder)
//! ```
//!
//! * **ingest** pulls chunks from the [`SampleSource`], absorbing transient
//!   errors with seeded-backoff retries; the chunk queue's
//!   [`OverflowPolicy`] decides whether a slow pipeline exerts lossless
//!   backpressure or sheds stale chunks.
//! * **extract** reassembles chunks into playback windows and runs the same
//!   [`extract_window`] the batch pipeline uses — on a clean stream the
//!   emitted regions are *byte-identical* to a batch harvest.
//! * **classify** runs each region through the [`ModelBundle`] at the rung
//!   the [`DegradationLadder`] currently allows, feeding the ladder each
//!   region's deadline outcome.
//!
//! All three run under [`supervise`]: panics are absorbed and the worker
//! restarted, wedged workers are abandoned and replaced, and the whole run
//! is bounded by a global timeout — the service can degrade and can fail
//! with an error, but it cannot hang and it cannot crash the caller.

use crate::ladder::{DegradationLadder, LadderConfig, LevelCap};
use crate::log::{ServiceEvent, ServiceLog};
use crate::queue::{BoundedQueue, ByteGauge, OverflowPolicy, PopOutcome, PushOutcome};
use crate::retry::{retry_with_backoff, RetryError, RetryPolicy};
use crate::source::{SampleSource, SourceChunk, SourceError, ValidatingSource};
use crate::supervisor::{supervise, Stage, StageCtx, SupervisionError, SupervisorConfig};
use emoleak_core::online::{
    extract_window, InferenceLevel, ModelBundle, RegionFeatures, Verdict,
};
use emoleak_features::regions::RegionDetector;
use emoleak_features::spectrogram::SpectrogramGenerator;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Consecutive exhausted retry cycles on one read before the service stops
/// treating the failures as transient and shuts down. Keeps a
/// permanently-failing "transient" source from spinning until the global
/// timeout.
const MAX_DRY_RETRY_CYCLES: u32 = 64;

/// Tuning for a [`StreamService`] run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Chunk size callers should use when building replay sources
    /// (samples; the service consumes whatever the source delivers).
    pub chunk_len: usize,
    /// Capacity of each inter-stage queue.
    pub queue_capacity: usize,
    /// What the chunk queue does when full. The region queue always
    /// blocks — loss, if allowed at all, happens at ingress only.
    pub overflow: OverflowPolicy,
    /// Per-region classification deadline.
    pub deadline: Duration,
    /// Granularity of every queue wait (workers re-check their token at
    /// this cadence; must be well below the supervisor watchdog).
    pub patience: Duration,
    /// The rung the service starts at and recovers toward (coerced to
    /// [`InferenceLevel::Classical`] when the bundle has no CNN).
    pub start_level: InferenceLevel,
    /// Degradation circuit-breaker tuning.
    pub ladder: LadderConfig,
    /// Transient-source-error retry tuning.
    pub retry: RetryPolicy,
    /// Worker supervision tuning.
    pub supervisor: SupervisorConfig,
    /// Synthetic per-rung classification latencies `[cnn, cnn-int8,
    /// classical, energy-only]` (shed is always instant). `Some` makes
    /// deadline outcomes — and therefore ladder transitions and emission
    /// labels — a pure function of the input, which tests and chaos runs
    /// rely on; `None` measures wall-clock latency.
    pub latency_override: Option<[Duration; 4]>,
    /// Chaos knob: the extract worker panics once after processing this
    /// many chunks, to exercise supervision end to end.
    pub panic_after_chunks: Option<u64>,
    /// Optional write-ahead journal: every emission and ladder transition
    /// is persisted (append + fsync) as it commits, so a killed run loses
    /// at most the region in flight (see [`crate::durable`]).
    pub durable: Option<crate::durable::DurableSink>,
    /// Optional shared memory accountant: when set, every queued chunk and
    /// pending region is charged against this gauge while it sits in a
    /// queue, so a fleet of sessions can be held to one byte budget
    /// (`emoleak-admission` enforces the budget at admission time).
    pub memory: Option<Arc<ByteGauge>>,
    /// Optional fleet-imposed quality ceiling: the classify stage runs each
    /// region at the worse of the session ladder's rung and this cap (see
    /// [`LevelCap`]). The fleet breaker lowers it for every session at once.
    pub fleet_cap: Option<Arc<LevelCap>>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            chunk_len: 256,
            queue_capacity: 64,
            overflow: OverflowPolicy::Block,
            deadline: Duration::from_millis(50),
            patience: Duration::from_millis(5),
            start_level: InferenceLevel::Cnn,
            ladder: LadderConfig::default(),
            retry: RetryPolicy::default(),
            supervisor: SupervisorConfig::default(),
            latency_override: None,
            panic_after_chunks: None,
            durable: None,
            memory: None,
            fleet_cap: None,
        }
    }
}

/// Resident cost of a queued chunk, bytes (samples + header).
fn chunk_cost(chunk: &SourceChunk) -> u64 {
    (chunk.samples.len() * 8 + 64) as u64
}

/// Resident cost of a pending region, bytes (features + optional
/// spectrogram + header).
fn region_cost(p: &PendingRegion) -> u64 {
    let spec = p.rf.spectrogram.as_ref().map_or(0, |s| s.pixels.len() * 8);
    (p.rf.features.len() * 8 + spec + 64) as u64
}

/// A region in flight between extract and classify.
#[derive(Debug, Clone)]
struct PendingRegion {
    window: usize,
    truth: usize,
    rf: RegionFeatures,
}

/// One classified region, as emitted by the service.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionEmission {
    /// Running region counter (1-based), the service's logical clock.
    pub region: u64,
    /// The playback window the region was detected in.
    pub window: usize,
    /// Region start within its window, samples.
    pub start: usize,
    /// Region end (exclusive) within its window, samples.
    pub end: usize,
    /// Ground-truth label of the window (scoring only).
    pub truth: usize,
    /// The classification verdict.
    pub verdict: Verdict,
    /// Whether this region missed its deadline.
    pub deadline_missed: bool,
    /// Classification latency (synthetic under `latency_override`).
    pub latency: Duration,
}

/// Counters accumulated across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Chunks successfully pulled from the source.
    pub chunks_ingested: u64,
    /// Chunks the extract stage consumed (differs from ingested only when
    /// an injected panic eats one or `DropOldest` evicts some).
    pub chunks_processed: u64,
    /// Playback windows reassembled.
    pub windows: u64,
    /// Regions classified.
    pub regions: u64,
    /// Transient source failures absorbed by retry.
    pub retries: u64,
    /// Chunks evicted by the `DropOldest` policy.
    pub dropped_chunks: u64,
    /// Deepest the chunk queue ever got (≤ capacity by construction).
    pub max_chunk_depth: usize,
    /// Deepest the region queue ever got (≤ capacity by construction).
    pub max_region_depth: usize,
    /// Regions that missed their deadline.
    pub deadline_misses: u64,
    /// Regions classified at each rung, `InferenceLevel::ALL` order.
    pub level_counts: [u64; 5],
    /// Worker restarts after panics.
    pub panic_restarts: u32,
    /// Worker replacements after watchdog timeouts.
    pub watchdog_fires: u32,
}

/// Everything a completed run produced.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// All region emissions, in classification order.
    pub emissions: Vec<RegionEmission>,
    /// The resilience event log.
    pub log: ServiceLog,
    /// Run counters.
    pub stats: StreamStats,
    /// The rung the ladder ended at.
    pub final_level: InferenceLevel,
}

/// Why a run failed (as opposed to degraded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The source failed fatally (or never stopped failing transiently).
    Source(String),
    /// Supervision gave up: restart budget exhausted or global timeout.
    Supervision(SupervisionError),
}

impl core::fmt::Display for StreamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StreamError::Source(why) => write!(f, "source failed: {why}"),
            StreamError::Supervision(e) => write!(f, "supervision failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<SupervisionError> for StreamError {
    fn from(e: SupervisionError) -> Self {
        StreamError::Supervision(e)
    }
}

/// Reassembles in-order chunks into whole playback windows.
///
/// Tolerates loss: if a window's tail chunk was evicted (`DropOldest`), the
/// next window's first chunk flushes the stale partial window so extraction
/// still sees it (truncated), and no window is ever silently swallowed.
#[derive(Debug, Default)]
struct Assembler {
    current: Option<(usize, usize, Vec<f64>)>,
}

impl Assembler {
    /// Feeds one chunk; returns the windows it completed (0, 1, or 2 — a
    /// stale partial flushed by a window change plus the chunk's own).
    fn feed(&mut self, chunk: SourceChunk) -> Vec<(usize, usize, Vec<f64>)> {
        let mut done = Vec::new();
        if let Some((w, _, _)) = &self.current {
            if *w != chunk.window {
                done.extend(self.current.take());
            }
        }
        let (_, _, buf) =
            self.current.get_or_insert((chunk.window, chunk.label, Vec::new()));
        buf.extend_from_slice(&chunk.samples);
        if chunk.last_in_window {
            done.extend(self.current.take());
        }
        done
    }

    /// Takes whatever partial window is left (end of stream).
    fn flush(&mut self) -> Option<(usize, usize, Vec<f64>)> {
        self.current.take()
    }
}

fn level_index(level: InferenceLevel) -> usize {
    match level {
        InferenceLevel::Cnn => 0,
        InferenceLevel::CnnInt8 => 1,
        InferenceLevel::Classical => 2,
        InferenceLevel::EnergyOnly => 3,
        InferenceLevel::Shed => 4,
    }
}

#[derive(Default)]
struct Counters {
    chunks_ingested: AtomicU64,
    chunks_processed: AtomicU64,
    windows: AtomicU64,
    regions: AtomicU64,
    retries: AtomicU64,
    deadline_misses: AtomicU64,
    level_counts: [AtomicU64; 5],
}

fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The online inference service. Construct once per trained bundle, run
/// once per source.
#[derive(Debug)]
pub struct StreamService {
    bundle: Arc<ModelBundle>,
    detector: RegionDetector,
    fs: f64,
    config: StreamConfig,
}

impl StreamService {
    /// A service classifying with `bundle` over regions found by
    /// `detector` in a stream sampled at `fs` Hz. The bundle is shared
    /// (`Arc`) so one trained stack can back many runs.
    pub fn new(
        bundle: Arc<ModelBundle>,
        detector: RegionDetector,
        fs: f64,
        config: StreamConfig,
    ) -> Self {
        StreamService { bundle, detector, fs, config }
    }

    /// The configuration the service runs with.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Drains `source` to completion through the supervised pipeline.
    ///
    /// # Errors
    ///
    /// [`StreamError::Source`] on a fatal (or permanently transient)
    /// source failure, [`StreamError::Supervision`] when a stage exceeds
    /// its restart budget or the run times out. Degradation is *not* an
    /// error — an overloaded run returns `Ok` with the ladder transitions
    /// in the report.
    pub fn run(&self, source: Box<dyn SampleSource>) -> Result<StreamReport, StreamError> {
        let cfg = self.config.clone();
        // Every chunk is screened for hostile input before it enters the
        // pipeline; the first defect fails the run as a fatal source error.
        let source: Box<dyn SampleSource> = Box::new(ValidatingSource::new(source));
        let mut chunk_q = BoundedQueue::new(cfg.queue_capacity, cfg.overflow);
        let mut region_q = BoundedQueue::new(cfg.queue_capacity, OverflowPolicy::Block);
        if let Some(gauge) = &cfg.memory {
            chunk_q = chunk_q.with_meter(Arc::clone(gauge), chunk_cost);
            region_q = region_q.with_meter(Arc::clone(gauge), region_cost);
        }
        let chunk_q: Arc<BoundedQueue<SourceChunk>> = Arc::new(chunk_q);
        let region_q: Arc<BoundedQueue<PendingRegion>> = Arc::new(region_q);
        let log = Arc::new(Mutex::new(ServiceLog::new()));
        let counters = Arc::new(Counters::default());
        let fatal: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let source = Arc::new(Mutex::new(source));
        let assembler = Arc::new(Mutex::new(Assembler::default()));
        let best = self.bundle.effective_level(cfg.start_level);
        let ladder = Arc::new(Mutex::new(DegradationLadder::new(cfg.ladder, best)));
        let emissions: Arc<Mutex<Vec<RegionEmission>>> = Arc::new(Mutex::new(Vec::new()));
        let panic_fired = Arc::new(AtomicBool::new(false));

        let ingest = {
            let source = Arc::clone(&source);
            let chunk_q = Arc::clone(&chunk_q);
            let region_q = Arc::clone(&region_q);
            let log = Arc::clone(&log);
            let counters = Arc::clone(&counters);
            let fatal = Arc::clone(&fatal);
            let retry = cfg.retry.clone();
            let patience = cfg.patience;
            Stage::new("ingest", move |ctx| {
                let mut dry_cycles = 0u32;
                loop {
                    if ctx.token.is_cancelled() {
                        return;
                    }
                    ctx.heartbeat.beat();
                    let outcome = {
                        let mut src = locked(&source);
                        retry_with_backoff(&retry, &ctx.token, || match src.next_chunk() {
                            Ok(v) => Ok(Ok(v)),
                            Err(SourceError::Transient(e)) => Ok(Err(e)),
                            Err(SourceError::Fatal(e)) => Err(e),
                        })
                    };
                    match outcome {
                        Ok((Some(chunk), tries)) => {
                            dry_cycles = 0;
                            if tries > 0 {
                                counters.retries.fetch_add(u64::from(tries), Ordering::Relaxed);
                                locked(&log).push(ServiceEvent::SourceRecovered {
                                    chunk: counters.chunks_ingested.load(Ordering::Relaxed),
                                    retries: tries,
                                });
                            }
                            let mut item = chunk;
                            loop {
                                if ctx.token.is_cancelled() {
                                    return;
                                }
                                match chunk_q.push(item, patience) {
                                    Ok(PushOutcome::Accepted) => break,
                                    Ok(PushOutcome::DroppedOldest) => {
                                        locked(&log).push(ServiceEvent::ChunkDropped {
                                            total: chunk_q.dropped(),
                                        });
                                        break;
                                    }
                                    Ok(PushOutcome::Closed) => return,
                                    Err(back) => {
                                        // Backpressure: consumer is busy.
                                        item = back;
                                        ctx.heartbeat.beat();
                                    }
                                }
                            }
                            counters.chunks_ingested.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((None, _)) => {
                            chunk_q.close();
                            return;
                        }
                        Err(RetryError::Cancelled) => return,
                        Err(RetryError::Exhausted(e)) => {
                            // Still transient: start a fresh backoff cycle
                            // (the source is at-least-once, nothing is
                            // lost) — but only so many times in a row.
                            counters
                                .retries
                                .fetch_add(u64::from(retry.max_attempts.max(1)), Ordering::Relaxed);
                            dry_cycles += 1;
                            if dry_cycles > MAX_DRY_RETRY_CYCLES {
                                *locked(&fatal) =
                                    Some(format!("source never stopped failing transiently: {e}"));
                                chunk_q.close();
                                region_q.close();
                                return;
                            }
                        }
                        Err(RetryError::Permanent(e)) => {
                            *locked(&fatal) = Some(e);
                            chunk_q.close();
                            region_q.close();
                            return;
                        }
                    }
                }
            })
        };

        let extract = {
            let chunk_q = Arc::clone(&chunk_q);
            let region_q = Arc::clone(&region_q);
            let counters = Arc::clone(&counters);
            let assembler = Arc::clone(&assembler);
            let panic_fired = Arc::clone(&panic_fired);
            let detector = self.detector.clone();
            let use_cnn = self.bundle.has_cnn();
            let fs = self.fs;
            let patience = cfg.patience;
            let panic_after = cfg.panic_after_chunks;
            Stage::new("extract", move |ctx| {
                let spec_gen = use_cnn.then(SpectrogramGenerator::for_accel);
                // Detect + featurize one window, pushing its regions on.
                // `false` means the region queue closed or we were
                // cancelled: stop the stage.
                let emit_window = |ctx: &StageCtx, window: usize, label: usize, buf: &[f64]| {
                    counters.windows.fetch_add(1, Ordering::Relaxed);
                    let ex = extract_window(buf, fs, &detector, spec_gen.as_ref(), label);
                    for rf in ex.rows {
                        let mut item = PendingRegion { window, truth: label, rf };
                        loop {
                            if ctx.token.is_cancelled() {
                                return false;
                            }
                            match region_q.push(item, patience) {
                                Ok(PushOutcome::Closed) => return false,
                                Ok(_) => break,
                                Err(back) => {
                                    item = back;
                                    ctx.heartbeat.beat();
                                }
                            }
                        }
                    }
                    true
                };
                loop {
                    if ctx.token.is_cancelled() {
                        return;
                    }
                    ctx.heartbeat.beat();
                    match chunk_q.pop(patience) {
                        PopOutcome::TimedOut => continue,
                        PopOutcome::Done => {
                            if let Some((w, l, buf)) = locked(&assembler).flush() {
                                emit_window(ctx, w, l, &buf);
                            }
                            region_q.close();
                            return;
                        }
                        PopOutcome::Item(chunk) => {
                            let n = counters.chunks_processed.fetch_add(1, Ordering::Relaxed);
                            if panic_after == Some(n)
                                && !panic_fired.swap(true, Ordering::Relaxed)
                            {
                                panic!("injected chaos panic in extract");
                            }
                            for (w, l, buf) in locked(&assembler).feed(chunk) {
                                if !emit_window(ctx, w, l, &buf) {
                                    return;
                                }
                            }
                        }
                    }
                }
            })
        };

        let classify = {
            let region_q = Arc::clone(&region_q);
            let counters = Arc::clone(&counters);
            let ladder = Arc::clone(&ladder);
            let log = Arc::clone(&log);
            let emissions = Arc::clone(&emissions);
            let bundle = Arc::clone(&self.bundle);
            let deadline = cfg.deadline;
            let patience = cfg.patience;
            let latency_override = cfg.latency_override;
            let durable = cfg.durable.clone();
            let fleet_cap = cfg.fleet_cap.clone();
            Stage::new("classify", move |ctx| {
                loop {
                    if ctx.token.is_cancelled() {
                        return;
                    }
                    ctx.heartbeat.beat();
                    match region_q.pop(patience) {
                        PopOutcome::TimedOut => continue,
                        PopOutcome::Done => return,
                        PopOutcome::Item(p) => {
                            let mut want = locked(&ladder).level();
                            if let Some(cap) = &fleet_cap {
                                want = cap.apply(want);
                            }
                            let (verdict, latency) = match latency_override {
                                Some(lat) => {
                                    let v = bundle.classify(want, &p.rf);
                                    let l = match v.level {
                                        InferenceLevel::Cnn => lat[0],
                                        InferenceLevel::CnnInt8 => lat[1],
                                        InferenceLevel::Classical => lat[2],
                                        InferenceLevel::EnergyOnly => lat[3],
                                        InferenceLevel::Shed => Duration::ZERO,
                                    };
                                    (v, l)
                                }
                                None => {
                                    let t0 = Instant::now();
                                    let v = bundle.classify(want, &p.rf);
                                    (v, t0.elapsed())
                                }
                            };
                            let missed = latency > deadline;
                            let region = counters.regions.fetch_add(1, Ordering::Relaxed) + 1;
                            counters.level_counts[level_index(verdict.level)]
                                .fetch_add(1, Ordering::Relaxed);
                            if missed {
                                counters.deadline_misses.fetch_add(1, Ordering::Relaxed);
                            }
                            if let Some(t) = locked(&ladder).observe(missed) {
                                if let Some(sink) = &durable {
                                    sink.record_transition(region, t);
                                }
                                locked(&log).push(if t.to > t.from {
                                    ServiceEvent::Degraded { region, transition: t }
                                } else {
                                    ServiceEvent::Recovered { region, transition: t }
                                });
                            }
                            let emission = RegionEmission {
                                region,
                                window: p.window,
                                start: p.rf.start,
                                end: p.rf.end,
                                truth: p.truth,
                                verdict,
                                deadline_missed: missed,
                                latency,
                            };
                            if let Some(sink) = &durable {
                                sink.record_emission(&emission);
                            }
                            locked(&emissions).push(emission);
                        }
                    }
                }
            })
        };

        let sup = supervise(&[ingest, extract, classify], &cfg.supervisor, &log);
        let fatal_message = locked(&fatal).take();
        let sup = match (sup, fatal_message) {
            (_, Some(message)) => return Err(StreamError::Source(message)),
            (Err(e), None) => return Err(e.into()),
            (Ok(r), None) => r,
        };

        let stats = StreamStats {
            chunks_ingested: counters.chunks_ingested.load(Ordering::Relaxed),
            chunks_processed: counters.chunks_processed.load(Ordering::Relaxed),
            windows: counters.windows.load(Ordering::Relaxed),
            regions: counters.regions.load(Ordering::Relaxed),
            retries: counters.retries.load(Ordering::Relaxed),
            dropped_chunks: chunk_q.dropped(),
            max_chunk_depth: chunk_q.max_depth(),
            max_region_depth: region_q.max_depth(),
            deadline_misses: counters.deadline_misses.load(Ordering::Relaxed),
            level_counts: [
                counters.level_counts[0].load(Ordering::Relaxed),
                counters.level_counts[1].load(Ordering::Relaxed),
                counters.level_counts[2].load(Ordering::Relaxed),
                counters.level_counts[3].load(Ordering::Relaxed),
                counters.level_counts[4].load(Ordering::Relaxed),
            ],
            panic_restarts: sup.panic_restarts,
            watchdog_fires: sup.watchdog_fires,
        };
        let final_level = locked(&ladder).level();
        let emissions = std::mem::take(&mut *locked(&emissions));
        let log = locked(&log).clone();
        if let Some(sink) = &self.config.durable {
            sink.finish(stats.regions, final_level);
        }
        Ok(StreamReport { emissions, log, stats, final_level })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FlakySource, ReplaySource};
    use emoleak_core::online::RecordedCampaign;
    use emoleak_core::AttackScenario;
    use emoleak_phone::DeviceProfile;
    use emoleak_synth::CorpusSpec;
    use std::sync::OnceLock;

    struct Fixture {
        campaign: RecordedCampaign,
        bundle: Arc<ModelBundle>,
        detector: RegionDetector,
    }

    // Record + train once; every test replays the same tiny campaign.
    fn fixture() -> &'static Fixture {
        static FIX: OnceLock<Fixture> = OnceLock::new();
        FIX.get_or_init(|| {
            let scenario = AttackScenario::table_top(
                CorpusSpec::tess().with_clips_per_cell(2),
                DeviceProfile::oneplus_7t(),
            );
            let campaign = scenario.record_windows().unwrap();
            let bundle =
                Arc::new(ModelBundle::train(&scenario.harvest().unwrap(), 7).unwrap());
            Fixture { campaign, bundle, detector: scenario.setting.region_detector() }
        })
    }

    fn service(config: StreamConfig) -> StreamService {
        let fix = fixture();
        StreamService::new(
            Arc::clone(&fix.bundle),
            fix.detector.clone(),
            fix.campaign.fs,
            config,
        )
    }

    fn fast_config() -> StreamConfig {
        StreamConfig {
            // Everything meets the deadline: no ladder motion.
            latency_override: Some([Duration::ZERO; 4]),
            ..StreamConfig::default()
        }
    }

    #[test]
    fn assembler_reassembles_and_flushes_partials() {
        let chunk = |window, samples: &[f64], last| SourceChunk {
            window,
            offset: 0,
            samples: samples.to_vec(),
            label: window,
            last_in_window: last,
        };
        let mut a = Assembler::default();
        assert!(a.feed(chunk(0, &[1.0, 2.0], false)).is_empty());
        assert_eq!(a.feed(chunk(0, &[3.0], true)), vec![(0, 0, vec![1.0, 2.0, 3.0])]);
        // A lost tail chunk: the next window's first chunk flushes the
        // stale partial ahead of its own accumulation.
        assert!(a.feed(chunk(1, &[4.0], false)).is_empty());
        assert_eq!(
            a.feed(chunk(2, &[5.0], true)),
            vec![(1, 1, vec![4.0]), (2, 2, vec![5.0])]
        );
        assert_eq!(a.flush(), None);
    }

    #[test]
    fn clean_stream_classifies_every_batch_region_in_order() {
        let fix = fixture();
        let svc = service(fast_config());
        let source = ReplaySource::from_campaign(&fix.campaign, svc.config().chunk_len);
        let report = svc.run(Box::new(source)).unwrap();

        // Exactly the batch pipeline's rows, in window order.
        let spec_gen: Option<&SpectrogramGenerator> = None; // classical bundle
        let mut expected = Vec::new();
        for (i, (window, _truth, label)) in fix.campaign.windows.iter().enumerate() {
            let ex = extract_window(window, fix.campaign.fs, &fix.detector, spec_gen, *label);
            for rf in ex.rows {
                expected.push((i, rf.start, rf.end));
            }
        }
        let got: Vec<_> =
            report.emissions.iter().map(|e| (e.window, e.start, e.end)).collect();
        assert_eq!(got, expected);
        assert_eq!(report.stats.regions, expected.len() as u64);
        assert_eq!(report.stats.windows, fix.campaign.windows.len() as u64);
        // Clean run: nothing for the resilience machinery to do.
        assert!(report.log.events().is_empty());
        assert_eq!(report.stats.retries, 0);
        assert_eq!(report.stats.dropped_chunks, 0);
        assert_eq!(report.stats.deadline_misses, 0);
        assert_eq!(report.final_level, InferenceLevel::Classical, "no CNN: coerced");
        assert!(report.stats.max_chunk_depth <= svc.config().queue_capacity);
        // Every region got a classical label.
        assert!(report.emissions.iter().all(|e| e.verdict.label.is_some()));
    }

    #[test]
    fn flaky_source_recovers_losslessly_with_logged_retries() {
        let fix = fixture();
        let clean = service(fast_config())
            .run(Box::new(ReplaySource::from_campaign(&fix.campaign, 256)))
            .unwrap();
        let svc = service(fast_config());
        let flaky = FlakySource::new(
            ReplaySource::from_campaign(&fix.campaign, 256),
            0.4,
            0xF1A6,
        );
        let report = svc.run(Box::new(flaky)).unwrap();
        assert!(report.stats.retries > 0, "flaky source must have failed sometimes");
        assert!(report.log.source_recoveries() > 0);
        // At-least-once + retry = lossless: same emissions as the clean run.
        let labels = |r: &StreamReport| {
            r.emissions
                .iter()
                .map(|e| (e.window, e.start, e.verdict.label))
                .collect::<Vec<_>>()
        };
        assert_eq!(labels(&report), labels(&clean));
    }

    #[test]
    fn fatal_source_fails_the_run_cleanly() {
        let fix = fixture();
        let svc = service(fast_config());
        let source =
            FlakySource::new(ReplaySource::from_campaign(&fix.campaign, 256), 0.0, 1)
                .with_fatal_at(3);
        let err = svc.run(Box::new(source)).unwrap_err();
        assert!(matches!(err, StreamError::Source(ref m) if m.contains("fatal")), "{err:?}");
    }

    #[test]
    fn injected_panic_is_absorbed_and_the_run_completes() {
        let fix = fixture();
        let svc = service(StreamConfig {
            panic_after_chunks: Some(2),
            ..fast_config()
        });
        let source = ReplaySource::from_campaign(&fix.campaign, 256);
        let report = svc.run(Box::new(source)).unwrap();
        assert_eq!(report.stats.panic_restarts, 1);
        assert_eq!(report.log.panics(), 1);
        assert!(matches!(
            report.log.events()[0],
            ServiceEvent::WorkerPanicked { stage: "extract", .. }
        ));
        // The panicked chunk is lost, the rest of the stream is not.
        assert!(report.stats.regions > 0);
        assert_eq!(report.stats.chunks_processed, report.stats.chunks_ingested);
    }

    #[test]
    fn slow_rung_trips_the_ladder_and_recovery_climbs_back() {
        let fix = fixture();
        let svc = service(StreamConfig {
            // Classical blows the deadline, energy-only is instant.
            deadline: Duration::from_millis(10),
            latency_override: Some([
                Duration::from_millis(100),
                Duration::from_millis(100),
                Duration::from_millis(100),
                Duration::ZERO,
            ]),
            ladder: LadderConfig { degrade_after: 2, recover_after: 3, cooldown: 1 },
            ..StreamConfig::default()
        });
        let source = ReplaySource::from_campaign(&fix.campaign, 256);
        let report = svc.run(Box::new(source)).unwrap();
        let transitions = report.log.transitions();
        assert!(!transitions.is_empty(), "misses must trip the breaker");
        assert_eq!(
            transitions[0],
            crate::ladder::Transition {
                from: InferenceLevel::Classical,
                to: InferenceLevel::EnergyOnly
            }
        );
        // Energy-only meets the deadline, so recovery fires too (given
        // enough regions), and some regions ran on each side.
        assert!(report.stats.level_counts[2] > 0);
        assert!(report.stats.level_counts[3] > 0);
        assert!(
            transitions.iter().any(|t| t.to < t.from),
            "sustained headroom must climb back up: {transitions:?}"
        );
    }

    #[test]
    fn durable_sink_journals_every_emission_as_it_commits() {
        use crate::durable::{recover_run, DurableSink};
        let fix = fixture();
        let dir = std::env::temp_dir()
            .join(format!("emoleak-service-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.log");
        let sink = DurableSink::create(&path).unwrap();
        let svc = service(StreamConfig { durable: Some(sink.clone()), ..fast_config() });
        let source = ReplaySource::from_campaign(&fix.campaign, svc.config().chunk_len);
        let report = svc.run(Box::new(source)).unwrap();
        assert!(sink.take_error().is_none());

        let (run, defects) = recover_run(&path).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert!(run.complete, "clean shutdown must write the summary record");
        assert_eq!(run.emissions, report.emissions, "journal must replay the exact run");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_gauge_and_fleet_cap_govern_a_run() {
        let fix = fixture();
        let gauge = Arc::new(ByteGauge::new());
        let cap = Arc::new(LevelCap::new());
        cap.set(InferenceLevel::EnergyOnly);
        let svc = service(StreamConfig {
            memory: Some(Arc::clone(&gauge)),
            fleet_cap: Some(Arc::clone(&cap)),
            ..fast_config()
        });
        let source = ReplaySource::from_campaign(&fix.campaign, 256);
        let report = svc.run(Box::new(source)).unwrap();
        assert!(report.stats.regions > 0);
        // The fleet cap forced every region below the ladder's rung.
        assert_eq!(report.stats.level_counts[0], 0);
        assert_eq!(report.stats.level_counts[1], 0);
        assert_eq!(report.stats.level_counts[2], 0);
        assert!(report.stats.level_counts[3] > 0);
        assert!(report
            .emissions
            .iter()
            .all(|e| e.verdict.level == InferenceLevel::EnergyOnly));
        // The gauge metered real traffic and every byte was released when
        // the queues drained.
        assert!(gauge.peak() > 0, "queued chunks must be charged");
        assert_eq!(gauge.charged(), 0, "a drained run must release everything");
    }

    #[test]
    fn drop_oldest_bounds_the_queue_and_counts_evictions() {
        let fix = fixture();
        let svc = service(StreamConfig {
            queue_capacity: 2,
            overflow: OverflowPolicy::DropOldest,
            ..fast_config()
        });
        let source = ReplaySource::from_campaign(&fix.campaign, 32);
        let report = svc.run(Box::new(source)).unwrap();
        assert!(report.stats.max_chunk_depth <= 2, "bound must hold");
        // How many drops happen is timing-dependent (on a loaded box it can
        // be almost all of them); what must hold is the accounting: every
        // ingested chunk was either processed or counted as dropped, and
        // the log saw every eviction.
        let logged = report
            .log
            .events()
            .iter()
            .filter(|e| matches!(e, ServiceEvent::ChunkDropped { .. }))
            .count();
        assert_eq!(report.stats.dropped_chunks, logged as u64);
        assert_eq!(
            report.stats.chunks_processed + report.stats.dropped_chunks,
            report.stats.chunks_ingested,
        );
        assert!(report.stats.windows <= fix.campaign.windows.len() as u64);
    }
}
