//! Worker supervision: restart crashed stages, replace wedged ones.
//!
//! The streaming pipeline's stages run as plain `std` threads, so the two
//! failure modes a long-lived service must survive are a **panic** (the
//! thread dies) and a **wedge** (the thread lives but stops making
//! progress). The supervisor handles both: every worker runs under
//! `catch_unwind` and reports a heartbeat; the supervisor polls, restarts
//! dead workers (bounded by a restart budget), and — since a `std` thread
//! cannot be killed — *abandons* wedged ones after a watchdog timeout by
//! cancelling their [`CancellationToken`] and spawning a replacement.
//!
//! Stages must therefore be written re-entrantly: all progress state lives
//! in shared structures (queues, assembler, counters), so a replacement
//! worker resumes where its predecessor stopped, and every wait is timed so
//! a cooperating worker re-checks its token even when no data flows.

use crate::log::{ServiceEvent, ServiceLog};
use emoleak_exec::CancellationToken;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Supervision tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Restarts allowed *per stage* before the service gives up.
    pub max_restarts: u32,
    /// How long a worker may go without beating its heartbeat before it is
    /// declared wedged and replaced.
    pub watchdog: Duration,
    /// Supervisor polling cadence.
    pub poll: Duration,
    /// Global bound on the whole run — the final liveness backstop: if the
    /// pipeline stops converging for any reason, the run ends with
    /// [`SupervisionError::Stalled`] instead of hanging.
    pub run_timeout: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 3,
            watchdog: Duration::from_secs(2),
            poll: Duration::from_millis(2),
            run_timeout: Duration::from_secs(120),
        }
    }
}

/// A worker's liveness signal. Cheap to clone; beat it at least once per
/// loop iteration (including idle iterations).
#[derive(Debug, Clone, Default)]
pub struct Heartbeat {
    count: Arc<AtomicU64>,
}

impl Heartbeat {
    /// Signals one unit of progress (or liveness while idle).
    pub fn beat(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Monotonic beat counter.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// What a running worker gets from the supervisor.
#[derive(Debug, Clone)]
pub struct StageCtx {
    /// Cooperative stop signal: checked by the worker between items. Fired
    /// when the worker is abandoned, or when the whole service shuts down
    /// on a fatal error.
    pub token: CancellationToken,
    /// The worker's liveness signal.
    pub heartbeat: Heartbeat,
}

/// A supervised pipeline stage: a name and a re-entrant work function.
///
/// The function is the *whole stage loop* — it runs until the stage's input
/// is exhausted (clean completion) or its token fires. On restart the same
/// function is invoked again with a fresh context.
#[derive(Clone)]
pub struct Stage {
    name: &'static str,
    work: Arc<dyn Fn(&StageCtx) + Send + Sync>,
}

impl Stage {
    /// A named stage running `work`.
    pub fn new(name: &'static str, work: impl Fn(&StageCtx) + Send + Sync + 'static) -> Self {
        Stage { name, work: Arc::new(work) }
    }

    /// The stage's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl core::fmt::Debug for Stage {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Stage").field("name", &self.name).finish()
    }
}

/// Why supervision gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisionError {
    /// One stage exceeded its restart budget.
    TooManyRestarts {
        /// The stage that kept dying.
        stage: &'static str,
        /// Restarts it consumed.
        restarts: u32,
    },
    /// The run exceeded its global timeout without completing.
    Stalled,
}

impl core::fmt::Display for SupervisionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SupervisionError::TooManyRestarts { stage, restarts } => {
                write!(f, "stage '{stage}' exceeded its restart budget ({restarts} restarts)")
            }
            SupervisionError::Stalled => write!(f, "run exceeded its global timeout"),
        }
    }
}

impl std::error::Error for SupervisionError {}

/// What supervision absorbed while keeping the pipeline alive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisionReport {
    /// Worker restarts after panics.
    pub panic_restarts: u32,
    /// Worker replacements after watchdog timeouts.
    pub watchdog_fires: u32,
}

struct Worker {
    stage: Stage,
    token: CancellationToken,
    heartbeat: Heartbeat,
    done: Arc<AtomicBool>,
    panic_message: Arc<Mutex<Option<String>>>,
    handle: Option<std::thread::JoinHandle<()>>,
    last_count: u64,
    last_progress: Instant,
    restarts: u32,
    completed: bool,
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn spawn(stage: &Stage) -> Worker {
    let token = CancellationToken::new();
    let heartbeat = Heartbeat::default();
    let done = Arc::new(AtomicBool::new(false));
    let panic_message: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let ctx = StageCtx { token: token.clone(), heartbeat: heartbeat.clone() };
    let work = Arc::clone(&stage.work);
    let done_flag = Arc::clone(&done);
    let message = Arc::clone(&panic_message);
    let handle = std::thread::spawn(move || {
        match catch_unwind(AssertUnwindSafe(|| work(&ctx))) {
            Ok(()) => done_flag.store(true, Ordering::Release),
            Err(payload) => {
                *message.lock().unwrap_or_else(|e| e.into_inner()) =
                    Some(panic_text(payload));
            }
        }
    });
    Worker {
        stage: stage.clone(),
        token,
        heartbeat,
        done,
        panic_message,
        handle: Some(handle),
        last_count: 0,
        last_progress: Instant::now(),
        restarts: 0,
        completed: false,
    }
}

/// Runs `stages` to completion under supervision.
///
/// Resilience events (panics absorbed, watchdog replacements) are appended
/// to `log`. Returns when every stage's work function has returned cleanly.
///
/// # Errors
///
/// [`SupervisionError::TooManyRestarts`] when a stage dies more than
/// `max_restarts` times, [`SupervisionError::Stalled`] when the global
/// `run_timeout` elapses first. Either way every worker token is cancelled
/// before returning, so cooperating workers wind down.
pub fn supervise(
    stages: &[Stage],
    config: &SupervisorConfig,
    log: &Arc<Mutex<ServiceLog>>,
) -> Result<SupervisionReport, SupervisionError> {
    let started = Instant::now();
    let mut report = SupervisionReport::default();
    let mut workers: Vec<Worker> = stages.iter().map(spawn).collect();
    let cancel_all = |workers: &mut [Worker]| {
        for w in workers.iter() {
            w.token.cancel();
        }
        // Join what can be joined so no cooperating worker outlives the
        // call; genuinely wedged threads are left behind by design.
        for w in workers.iter_mut() {
            if let Some(h) = w.handle.take() {
                if h.is_finished() {
                    let _ = h.join();
                }
            }
        }
    };
    loop {
        if workers.iter().all(|w| w.completed) {
            return Ok(report);
        }
        if started.elapsed() >= config.run_timeout {
            cancel_all(&mut workers);
            return Err(SupervisionError::Stalled);
        }
        for i in 0..workers.len() {
            let w = &mut workers[i];
            if w.completed {
                continue;
            }
            let finished = w.handle.as_ref().is_none_or(|h| h.is_finished());
            if finished {
                if let Some(h) = w.handle.take() {
                    let _ = h.join();
                }
                if w.done.load(Ordering::Acquire) {
                    w.completed = true;
                    continue;
                }
                // Panicked: restart if the budget allows.
                w.restarts += 1;
                report.panic_restarts += 1;
                let message = w
                    .panic_message
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .unwrap_or_default();
                log.lock().unwrap_or_else(|e| e.into_inner()).push(
                    ServiceEvent::WorkerPanicked {
                        stage: w.stage.name,
                        restarts: w.restarts,
                        message,
                    },
                );
                if w.restarts > config.max_restarts {
                    let err = SupervisionError::TooManyRestarts {
                        stage: w.stage.name,
                        restarts: w.restarts,
                    };
                    cancel_all(&mut workers);
                    return Err(err);
                }
                let restarts = w.restarts;
                let mut fresh = spawn(&w.stage);
                fresh.restarts = restarts;
                workers[i] = fresh;
            } else {
                // Watchdog: no heartbeat progress for too long → abandon.
                let count = w.heartbeat.count();
                if count != w.last_count {
                    w.last_count = count;
                    w.last_progress = Instant::now();
                } else if w.last_progress.elapsed() >= config.watchdog {
                    w.token.cancel();
                    w.restarts += 1;
                    report.watchdog_fires += 1;
                    log.lock().unwrap_or_else(|e| e.into_inner()).push(
                        ServiceEvent::WatchdogFired {
                            stage: w.stage.name,
                            restarts: w.restarts,
                        },
                    );
                    if w.restarts > config.max_restarts {
                        let err = SupervisionError::TooManyRestarts {
                            stage: w.stage.name,
                            restarts: w.restarts,
                        };
                        cancel_all(&mut workers);
                        return Err(err);
                    }
                    let restarts = w.restarts;
                    let mut fresh = spawn(&w.stage);
                    fresh.restarts = restarts;
                    workers[i] = fresh; // old handle dropped: thread abandoned
                }
            }
        }
        std::thread::sleep(config.poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn test_config() -> SupervisorConfig {
        SupervisorConfig {
            max_restarts: 3,
            watchdog: Duration::from_millis(60),
            poll: Duration::from_millis(2),
            run_timeout: Duration::from_secs(20),
        }
    }

    fn fresh_log() -> Arc<Mutex<ServiceLog>> {
        Arc::new(Mutex::new(ServiceLog::new()))
    }

    #[test]
    fn clean_stages_complete_without_events() {
        let log = fresh_log();
        let hits = Arc::new(AtomicU32::new(0));
        let stages: Vec<Stage> = (0..3)
            .map(|_| {
                let hits = Arc::clone(&hits);
                Stage::new("worker", move |ctx| {
                    ctx.heartbeat.beat();
                    hits.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let report = supervise(&stages, &test_config(), &log).unwrap();
        assert_eq!(report, SupervisionReport::default());
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        assert!(log.lock().unwrap().events().is_empty());
    }

    #[test]
    fn panicked_stage_is_restarted_and_recovers() {
        let log = fresh_log();
        let attempts = Arc::new(AtomicU32::new(0));
        let a = Arc::clone(&attempts);
        let stage = Stage::new("flaky", move |ctx| {
            ctx.heartbeat.beat();
            assert!(
                a.fetch_add(1, Ordering::Relaxed) >= 2,
                "intentional crash while warming up"
            );
        });
        let report = supervise(&[stage], &test_config(), &log).unwrap();
        assert_eq!(report.panic_restarts, 2);
        assert_eq!(attempts.load(Ordering::Relaxed), 3);
        let log = log.lock().unwrap();
        assert_eq!(log.panics(), 2);
        // The panic message is captured into the log.
        assert!(matches!(
            &log.events()[0],
            ServiceEvent::WorkerPanicked { stage: "flaky", restarts: 1, message }
                if message.contains("intentional crash")
        ));
    }

    #[test]
    fn restart_budget_is_enforced() {
        let log = fresh_log();
        let stage = Stage::new("doomed", |ctx| {
            ctx.heartbeat.beat();
            panic!("always");
        });
        let err = supervise(&[stage], &test_config(), &log).unwrap_err();
        assert_eq!(err, SupervisionError::TooManyRestarts { stage: "doomed", restarts: 4 });
        assert_eq!(log.lock().unwrap().panics(), 4);
    }

    #[test]
    fn wedged_stage_is_abandoned_and_replaced() {
        let log = fresh_log();
        let attempts = Arc::new(AtomicU32::new(0));
        let a = Arc::clone(&attempts);
        let stage = Stage::new("wedgy", move |ctx| {
            ctx.heartbeat.beat();
            if a.fetch_add(1, Ordering::Relaxed) == 0 {
                // Wedge: stop beating but keep (cooperatively) sleeping.
                // The watchdog must abandon this worker, not wait for it.
                while !ctx.token.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        });
        let report = supervise(&[stage], &test_config(), &log).unwrap();
        assert_eq!(report.watchdog_fires, 1);
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
        assert_eq!(log.lock().unwrap().watchdog_fires(), 1);
    }

    #[test]
    fn stalled_run_times_out_with_all_tokens_cancelled() {
        let log = fresh_log();
        let config = SupervisorConfig {
            run_timeout: Duration::from_millis(80),
            ..test_config()
        };
        let seen_cancel = Arc::new(AtomicU32::new(0));
        let s = Arc::clone(&seen_cancel);
        // Beats forever, never completes: only the global timeout stops it.
        let stage = Stage::new("spinner", move |ctx| {
            loop {
                ctx.heartbeat.beat();
                if ctx.token.is_cancelled() {
                    s.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let err = supervise(&[stage], &config, &log).unwrap_err();
        assert_eq!(err, SupervisionError::Stalled);
        // The worker observed cancellation (possibly just after supervise
        // returned; give it a beat).
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(seen_cancel.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn restarted_worker_resumes_shared_state() {
        // The contract stages are written against: progress lives in
        // shared state, so a replacement continues, not restarts.
        let log = fresh_log();
        let progress = Arc::new(AtomicU32::new(0));
        let p = Arc::clone(&progress);
        let stage = Stage::new("resumer", move |ctx| {
            loop {
                ctx.heartbeat.beat();
                let n = p.fetch_add(1, Ordering::Relaxed) + 1;
                assert!(n != 5, "crash mid-stream");
                if n >= 10 {
                    return;
                }
            }
        });
        supervise(&[stage], &test_config(), &log).unwrap();
        assert_eq!(progress.load(Ordering::Relaxed), 10, "no work redone from scratch");
    }
}
