//! Retry with exponential backoff and seeded jitter.
//!
//! Transient source errors ([`SourceError::Transient`](crate::source::SourceError::Transient))
//! are absorbed here: the service retries the read with exponentially
//! growing delays plus full jitter. The jitter is *seeded* — drawn from
//! `derive_seed(seed, attempt)` like every other random stream in the repo
//! — so a chaos run's retry timing is as reproducible as its data.

use emoleak_exec::CancellationToken;
use std::time::Duration;

/// Backoff schedule for transient-error retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts before giving up (the first try counts; ≥ 1).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Hard cap on any single delay.
    pub max_delay: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(40),
            seed: 0x5E7,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based): jittered
    /// `base_delay * 2^(attempt-1)`, capped at `max_delay`. Full jitter —
    /// uniform in `[0, exponential]` — derived from `(seed, attempt)`, so
    /// the schedule is a pure function of the policy.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(u32::MAX))
            .min(self.max_delay);
        let mut stream = emoleak_exec::derive_seed(self.seed, u64::from(attempt));
        let uniform =
            (emoleak_exec::splitmix64(&mut stream) >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(uniform)
    }
}

/// Why a retried operation ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryError<E> {
    /// Every allowed attempt failed transiently; the last error.
    Exhausted(E),
    /// The operation failed in a way retrying cannot fix.
    Permanent(E),
    /// The surrounding stage was cancelled mid-retry.
    Cancelled,
}

/// Runs `op` under `policy`, sleeping the backoff between transient
/// failures. `op` classifies its own errors: `Ok(Err(e))` is transient,
/// `Err(e)` is permanent. Returns the number of retries that were needed
/// alongside the success value.
///
/// # Errors
///
/// [`RetryError::Exhausted`] after `max_attempts` transient failures,
/// [`RetryError::Permanent`] immediately on a permanent failure, and
/// [`RetryError::Cancelled`] if `token` fires between attempts.
pub fn retry_with_backoff<T, E>(
    policy: &RetryPolicy,
    token: &CancellationToken,
    mut op: impl FnMut() -> Result<Result<T, E>, E>,
) -> Result<(T, u32), RetryError<E>> {
    let attempts = policy.max_attempts.max(1);
    let mut retries = 0;
    loop {
        if token.is_cancelled() {
            return Err(RetryError::Cancelled);
        }
        match op() {
            Ok(Ok(value)) => return Ok((value, retries)),
            Err(e) => return Err(RetryError::Permanent(e)),
            Ok(Err(e)) => {
                retries += 1;
                if retries >= attempts {
                    return Err(RetryError::Exhausted(e));
                }
                std::thread::sleep(policy.delay(retries));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(10),
            seed: 1,
        };
        for attempt in 1..10 {
            let exp = Duration::from_millis(2u64 << (attempt - 1)).min(p.max_delay);
            let d = p.delay(attempt);
            assert!(d <= exp, "attempt {attempt}: {d:?} within jitter envelope {exp:?}");
        }
        // Deterministic: same policy, same schedule.
        let q = p.clone();
        assert!((1..10).all(|a| p.delay(a) == q.delay(a)));
        // Jitter actually varies across attempts (full jitter, not none).
        let delays: Vec<_> = (1..10).map(|a| p.delay(a)).collect();
        assert!(delays.windows(2).any(|w| w[0] != w[1]), "{delays:?}");
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let policy = RetryPolicy { base_delay: Duration::from_micros(10), ..Default::default() };
        let token = CancellationToken::new();
        let mut calls = 0;
        let out = retry_with_backoff(&policy, &token, || {
            calls += 1;
            if calls < 3 { Ok(Err("flaky")) } else { Ok(Ok(calls)) }
        });
        assert_eq!(out, Ok((3, 2)));
    }

    #[test]
    fn exhausts_after_max_attempts() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_micros(10),
            ..Default::default()
        };
        let token = CancellationToken::new();
        let mut calls = 0u32;
        let out: Result<((), u32), _> = retry_with_backoff(&policy, &token, || {
            calls += 1;
            Ok(Err(calls))
        });
        assert_eq!(out, Err(RetryError::Exhausted(4)));
        assert_eq!(calls, 4);
    }

    #[test]
    fn permanent_errors_short_circuit() {
        let policy = RetryPolicy::default();
        let token = CancellationToken::new();
        let mut calls = 0u32;
        let out: Result<((), u32), _> = retry_with_backoff(&policy, &token, || {
            calls += 1;
            Err("dead")
        });
        assert_eq!(out, Err(RetryError::Permanent("dead")));
        assert_eq!(calls, 1);
    }

    #[test]
    fn cancellation_stops_retrying() {
        let policy = RetryPolicy { base_delay: Duration::from_micros(10), ..Default::default() };
        let token = CancellationToken::new();
        let mut calls = 0u32;
        let out: Result<((), u32), RetryError<&str>> =
            retry_with_backoff(&policy, &token, || {
                calls += 1;
                token.cancel();
                Ok(Err("flaky"))
            });
        assert_eq!(out, Err(RetryError::Cancelled));
        assert_eq!(calls, 1);
    }
}
