//! Bounded SPSC/MPSC queues with explicit backpressure policy.
//!
//! Every hop in the streaming pipeline is a [`BoundedQueue`] — depth is
//! capped by construction, so a slow consumer can never make the producer
//! hoard unbounded memory. What happens at the cap is an explicit
//! [`OverflowPolicy`], not an accident: block the producer (lossless, the
//! default) or drop the oldest queued item and count it (bounded staleness
//! for soft-real-time consumers).
//!
//! All waits are timed — there is no untimed `Condvar::wait` anywhere — so
//! workers always regain control to check their cancellation token, and a
//! lost wakeup can delay progress but never deadlock it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A shared byte gauge: the fleet-wide memory accountant that metered
/// queues charge and release against.
///
/// Every queued chunk or region costs bytes; one gauge shared by every
/// queue of every session makes "how much is the whole fleet holding?" a
/// single number with a high-water mark, and [`ByteGauge::try_charge`]
/// turns it into a hard budget: a charge that would exceed the budget is
/// refused atomically, so concurrent chargers can never conspire past it.
#[derive(Debug, Default)]
pub struct ByteGauge {
    charged: AtomicU64,
    peak: AtomicU64,
}

impl ByteGauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        ByteGauge::default()
    }

    /// Unconditionally charges `bytes` (metered queues account what they
    /// actually hold; budget *enforcement* happens at admission).
    pub fn charge(&self, bytes: u64) {
        let now = self.charged.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Atomically charges `bytes` only if the total stays within `budget`.
    /// Returns whether the charge was taken.
    pub fn try_charge(&self, bytes: u64, budget: u64) -> bool {
        let mut current = self.charged.load(Ordering::Relaxed);
        loop {
            let Some(next) = current.checked_add(bytes) else {
                return false;
            };
            if next > budget {
                return false;
            }
            match self.charged.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Releases a previous charge (saturating: a stray double-release can
    /// never wrap the gauge to astronomical values).
    pub fn release(&self, bytes: u64) {
        let _ = self.charged.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            Some(cur.saturating_sub(bytes))
        });
    }

    /// Bytes currently charged.
    pub fn charged(&self) -> u64 {
        self.charged.load(Ordering::Relaxed)
    }

    /// The most bytes ever charged at once.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// What a full queue does with a new item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the producer until space frees up (lossless backpressure).
    Block,
    /// Evict the oldest queued item to admit the new one, counting the
    /// eviction (freshness over completeness).
    DropOldest,
}

/// Outcome of a push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Item admitted without loss.
    Accepted,
    /// Item admitted; the oldest queued item was evicted to make room.
    DroppedOldest,
    /// The queue is closed; the item was discarded.
    Closed,
}

/// Outcome of a pop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PopOutcome<T> {
    /// An item.
    Item(T),
    /// Nothing arrived within the timeout; the queue is still open.
    TimedOut,
    /// The queue is closed and drained — no more items will ever arrive.
    Done,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    dropped: u64,
    max_depth: usize,
}

/// A gauge plus the cost function items charge against it.
type Meter<T> = (Arc<ByteGauge>, fn(&T) -> u64);

/// A bounded FIFO connecting two pipeline stages.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    policy: OverflowPolicy,
    not_empty: Condvar,
    not_full: Condvar,
    meter: Option<Meter<T>>,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to at least 1).
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                dropped: 0,
                max_depth: 0,
            }),
            capacity: capacity.max(1),
            policy,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            meter: None,
        }
    }

    /// Meters this queue's memory on `gauge`: every admitted item charges
    /// `cost(&item)` bytes, and every item leaving the queue — popped,
    /// evicted by [`OverflowPolicy::DropOldest`], or still queued when the
    /// queue is dropped — releases its charge. Conservation holds by
    /// construction: the gauge returns to its pre-queue level once the
    /// queue is gone.
    #[must_use]
    pub fn with_meter(mut self, gauge: Arc<ByteGauge>, cost: fn(&T) -> u64) -> Self {
        self.meter = Some((gauge, cost));
        self
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pushes an item, applying the overflow policy. Under
    /// [`OverflowPolicy::Block`] this waits at most `patience` for space
    /// and returns `Err(item)` on timeout so the caller can check its
    /// cancellation token and retry — the queue never parks a producer
    /// indefinitely.
    ///
    /// # Errors
    ///
    /// Returns the item back on a blocking-push timeout.
    pub fn push(&self, item: T, patience: Duration) -> Result<PushOutcome, T> {
        let mut state = self.lock();
        if state.closed {
            return Ok(PushOutcome::Closed);
        }
        let mut outcome = PushOutcome::Accepted;
        if state.items.len() >= self.capacity {
            match self.policy {
                OverflowPolicy::DropOldest => {
                    if let Some(evicted) = state.items.pop_front() {
                        if let Some((gauge, cost)) = &self.meter {
                            gauge.release(cost(&evicted));
                        }
                    }
                    state.dropped += 1;
                    outcome = PushOutcome::DroppedOldest;
                }
                OverflowPolicy::Block => {
                    let (s, wait) = self
                        .not_full
                        .wait_timeout_while(state, patience, |s| {
                            !s.closed && s.items.len() >= self.capacity
                        })
                        .unwrap_or_else(|e| e.into_inner());
                    state = s;
                    if state.closed {
                        return Ok(PushOutcome::Closed);
                    }
                    if wait.timed_out() && state.items.len() >= self.capacity {
                        return Err(item);
                    }
                }
            }
        }
        if let Some((gauge, cost)) = &self.meter {
            gauge.charge(cost(&item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        state.max_depth = state.max_depth.max(depth);
        drop(state);
        self.not_empty.notify_one();
        Ok(outcome)
    }

    /// Pops the next item, waiting at most `patience`.
    pub fn pop(&self, patience: Duration) -> PopOutcome<T> {
        let state = self.lock();
        let (mut state, _) = self
            .not_empty
            .wait_timeout_while(state, patience, |s| s.items.is_empty() && !s.closed)
            .unwrap_or_else(|e| e.into_inner());
        match state.items.pop_front() {
            Some(item) => {
                drop(state);
                if let Some((gauge, cost)) = &self.meter {
                    gauge.release(cost(&item));
                }
                self.not_full.notify_one();
                PopOutcome::Item(item)
            }
            None if state.closed => PopOutcome::Done,
            None => PopOutcome::TimedOut,
        }
    }

    /// Closes the queue: future pushes are discarded, pops drain what is
    /// left and then report [`PopOutcome::Done`]. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// The deepest the queue has ever been (never exceeds capacity).
    pub fn max_depth(&self) -> usize {
        self.lock().max_depth
    }

    /// Items evicted under [`OverflowPolicy::DropOldest`].
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<T> Drop for BoundedQueue<T> {
    fn drop(&mut self) {
        if let Some((gauge, cost)) = &self.meter {
            let state = self.state.get_mut().unwrap_or_else(|e| e.into_inner());
            for item in &state.items {
                gauge.release(cost(item));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    const TICK: Duration = Duration::from_millis(5);

    #[test]
    fn fifo_order_and_depth_accounting() {
        let q = BoundedQueue::new(8, OverflowPolicy::Block);
        for i in 0..5 {
            assert_eq!(q.push(i, TICK), Ok(PushOutcome::Accepted));
        }
        assert_eq!(q.depth(), 5);
        assert_eq!(q.max_depth(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(TICK), PopOutcome::Item(i));
        }
        assert_eq!(q.pop(TICK), PopOutcome::TimedOut);
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    fn drop_oldest_evicts_and_counts() {
        let q = BoundedQueue::new(3, OverflowPolicy::DropOldest);
        for i in 0..3 {
            q.push(i, TICK).unwrap();
        }
        assert_eq!(q.push(3, TICK), Ok(PushOutcome::DroppedOldest));
        assert_eq!(q.push(4, TICK), Ok(PushOutcome::DroppedOldest));
        assert_eq!(q.dropped(), 2);
        assert_eq!(q.depth(), 3, "depth never exceeds capacity");
        assert_eq!(q.max_depth(), 3);
        // Oldest went first: 0 and 1 are gone.
        assert_eq!(q.pop(TICK), PopOutcome::Item(2));
        assert_eq!(q.pop(TICK), PopOutcome::Item(3));
        assert_eq!(q.pop(TICK), PopOutcome::Item(4));
    }

    #[test]
    fn blocking_push_times_out_with_item_returned() {
        let q = BoundedQueue::new(1, OverflowPolicy::Block);
        q.push(1, TICK).unwrap();
        let start = Instant::now();
        assert_eq!(q.push(2, TICK), Err(2), "timeout hands the item back");
        assert!(start.elapsed() >= TICK);
    }

    #[test]
    fn blocking_push_wakes_when_consumer_drains() {
        let q = Arc::new(BoundedQueue::new(1, OverflowPolicy::Block));
        q.push(10, TICK).unwrap();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.pop(Duration::from_secs(1))
            })
        };
        // Generous patience: the consumer frees a slot mid-wait.
        assert_eq!(q.push(11, Duration::from_secs(5)), Ok(PushOutcome::Accepted));
        assert_eq!(consumer.join().unwrap(), PopOutcome::Item(10));
        assert_eq!(q.pop(TICK), PopOutcome::Item(11));
    }

    #[test]
    fn close_drains_then_reports_done() {
        let q = BoundedQueue::new(4, OverflowPolicy::Block);
        q.push("a", TICK).unwrap();
        q.close();
        assert_eq!(q.push("b", TICK), Ok(PushOutcome::Closed));
        assert_eq!(q.pop(TICK), PopOutcome::Item("a"));
        assert_eq!(q.pop(TICK), PopOutcome::Done);
        assert_eq!(q.pop(TICK), PopOutcome::Done);
        q.close(); // idempotent
    }

    #[test]
    fn close_wakes_blocked_parties() {
        let q = Arc::new(BoundedQueue::new(1, OverflowPolicy::Block));
        q.push(1, TICK).unwrap();
        let blocked_producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2, Duration::from_secs(10)))
        };
        let blocked_consumer = {
            let q = Arc::new(BoundedQueue::<u8>::new(1, OverflowPolicy::Block));
            let q2 = Arc::clone(&q);
            let h = std::thread::spawn(move || q2.pop(Duration::from_secs(10)));
            std::thread::sleep(Duration::from_millis(10));
            q.close();
            h
        };
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(blocked_producer.join().unwrap(), Ok(PushOutcome::Closed));
        assert_eq!(blocked_consumer.join().unwrap(), PopOutcome::Done);
    }

    #[test]
    fn gauge_budget_is_atomic_and_saturating() {
        let g = ByteGauge::new();
        assert!(g.try_charge(600, 1000));
        assert!(!g.try_charge(500, 1000), "would exceed the budget");
        assert!(g.try_charge(400, 1000));
        assert_eq!(g.charged(), 1000);
        assert_eq!(g.peak(), 1000);
        g.release(700);
        assert_eq!(g.charged(), 300);
        g.release(10_000); // stray double release
        assert_eq!(g.charged(), 0, "release saturates at zero");
        assert_eq!(g.peak(), 1000, "peak is a high-water mark");
        assert!(!g.try_charge(u64::MAX, u64::MAX - 1), "overflow is a refusal");
    }

    #[test]
    fn metered_queue_charges_and_releases_every_path() {
        let g = Arc::new(ByteGauge::new());
        let cost = |v: &Vec<u8>| v.len() as u64;
        {
            let q = BoundedQueue::new(2, OverflowPolicy::DropOldest)
                .with_meter(Arc::clone(&g), cost);
            q.push(vec![0u8; 10], TICK).unwrap();
            q.push(vec![0u8; 20], TICK).unwrap();
            assert_eq!(g.charged(), 30);
            // Eviction releases the evicted item's bytes.
            assert_eq!(q.push(vec![0u8; 5], TICK), Ok(PushOutcome::DroppedOldest));
            assert_eq!(g.charged(), 25);
            // Popping releases too.
            assert!(matches!(q.pop(TICK), PopOutcome::Item(_)));
            assert_eq!(g.charged(), 5);
            assert_eq!(g.peak(), 30);
            // One item still queued when the queue drops.
        }
        assert_eq!(g.charged(), 0, "dropping the queue releases what it held");
    }

    #[test]
    fn mpsc_contention_loses_nothing_under_block_policy() {
        let q = Arc::new(BoundedQueue::new(4, OverflowPolicy::Block));
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let mut item = p * 1000 + i;
                        loop {
                            match q.push(item, Duration::from_millis(50)) {
                                Ok(_) => break,
                                Err(back) => item = back,
                            }
                        }
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        while got.len() < 150 {
            if let PopOutcome::Item(v) = q.pop(Duration::from_millis(100)) {
                got.push(v);
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        got.sort_unstable();
        let mut expected: Vec<i32> =
            (0..3).flat_map(|p| (0..50).map(move |i| p * 1000 + i)).collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert!(q.max_depth() <= 4, "bound held under contention");
    }
}
