//! The deadline-miss degradation ladder.
//!
//! The online service promises a per-region classification deadline. When
//! the current rung keeps missing it, a circuit breaker trips the service
//! one rung down the quality ladder (CNN → int8 CNN → classical →
//! energy-only → shed); sustained headroom climbs back up — but only after a cooldown,
//! and only against a much longer streak of met deadlines than the miss
//! streak that degrades (hysteresis), so the ladder settles instead of
//! oscillating every few regions.
//!
//! The ladder is a *pure state machine*: time enters only as the boolean
//! "was the deadline missed", which the service computes (or, in tests,
//! synthesizes). That keeps every transition unit-testable and every chaos
//! run reproducible.

use emoleak_core::online::InferenceLevel;
use std::sync::atomic::{AtomicU8, Ordering};

/// A shared, fleet-imposed *ceiling* on inference quality.
///
/// The per-session [`DegradationLadder`] reacts to the session's own
/// deadline misses; a `LevelCap` is how the fleet breaker
/// (`emoleak-admission`) cheapens every session at once when the whole
/// service saturates. The classify stage runs each region at the worse of
/// the two — `want.max(cap)` in the [`InferenceLevel`] ordering, where a
/// greater rung is a cheaper one — so neither mechanism can ever *raise*
/// quality above what the other allows.
#[derive(Debug, Default)]
pub struct LevelCap {
    // Index into `InferenceLevel::ALL`; 0 (Cnn) caps nothing.
    code: AtomicU8,
}

impl LevelCap {
    /// An open cap (no restriction: everything up to CNN is allowed).
    pub fn new() -> Self {
        LevelCap::default()
    }

    /// Sets the cheapest rung sessions may exceed — [`InferenceLevel::Cnn`]
    /// lifts the cap, [`InferenceLevel::Shed`] forces every region shed.
    pub fn set(&self, cap: InferenceLevel) {
        let code = InferenceLevel::ALL.iter().position(|l| *l == cap).unwrap_or(0) as u8;
        self.code.store(code, Ordering::Relaxed);
    }

    /// The current cap.
    pub fn get(&self) -> InferenceLevel {
        InferenceLevel::ALL
            .get(usize::from(self.code.load(Ordering::Relaxed)))
            .copied()
            .unwrap_or(InferenceLevel::Cnn)
    }

    /// The rung a session wanting `want` actually runs at under this cap.
    pub fn apply(&self, want: InferenceLevel) -> InferenceLevel {
        want.max(self.get())
    }
}

/// Tuning for the degradation circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderConfig {
    /// Consecutive deadline misses that trip one rung down.
    pub degrade_after: u32,
    /// Consecutive met deadlines that climb one rung up.
    pub recover_after: u32,
    /// Regions after any transition during which recovery is frozen
    /// (degradation is never frozen — overload must always be escapable).
    pub cooldown: u32,
}

impl Default for LadderConfig {
    fn default() -> Self {
        // recover_after ≫ degrade_after: climbing back is much harder than
        // falling, the hysteresis that prevents flapping.
        LadderConfig { degrade_after: 3, recover_after: 8, cooldown: 4 }
    }
}

/// A recorded rung change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The rung before.
    pub from: InferenceLevel,
    /// The rung after.
    pub to: InferenceLevel,
}

/// The degradation state machine. Feed it one [`observe`](DegradationLadder::observe)
/// per classified region.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    config: LadderConfig,
    level: InferenceLevel,
    consecutive_misses: u32,
    consecutive_meets: u32,
    cooldown_left: u32,
    best: InferenceLevel,
}

impl DegradationLadder {
    /// A ladder starting (and topping out) at `best`.
    pub fn new(config: LadderConfig, best: InferenceLevel) -> Self {
        DegradationLadder {
            config,
            level: best,
            consecutive_misses: 0,
            consecutive_meets: 0,
            cooldown_left: 0,
            best,
        }
    }

    /// The rung the next region should be classified at.
    pub fn level(&self) -> InferenceLevel {
        self.level
    }

    /// Records one region's deadline outcome; returns the transition it
    /// caused, if any.
    pub fn observe(&mut self, deadline_missed: bool) -> Option<Transition> {
        self.cooldown_left = self.cooldown_left.saturating_sub(1);
        if deadline_missed {
            self.consecutive_meets = 0;
            self.consecutive_misses += 1;
            if self.consecutive_misses >= self.config.degrade_after
                && self.level != InferenceLevel::Shed
            {
                return Some(self.shift(self.level.degraded()));
            }
        } else {
            self.consecutive_misses = 0;
            self.consecutive_meets += 1;
            if self.consecutive_meets >= self.config.recover_after
                && self.cooldown_left == 0
                && self.level != self.best
            {
                return Some(self.shift(self.level.recovered().max(self.best)));
            }
        }
        None
    }

    fn shift(&mut self, to: InferenceLevel) -> Transition {
        let t = Transition { from: self.level, to };
        self.level = to;
        self.consecutive_misses = 0;
        self.consecutive_meets = 0;
        self.cooldown_left = self.config.cooldown;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use InferenceLevel::*;

    fn ladder() -> DegradationLadder {
        DegradationLadder::new(LadderConfig::default(), Cnn)
    }

    #[test]
    fn misses_trip_one_rung_at_a_time() {
        let mut l = ladder();
        assert_eq!(l.observe(true), None);
        assert_eq!(l.observe(true), None);
        assert_eq!(l.observe(true), Some(Transition { from: Cnn, to: CnnInt8 }));
        assert_eq!(l.level(), CnnInt8);
        // The miss streak resets after a transition.
        assert_eq!(l.observe(true), None);
        assert_eq!(l.observe(true), None);
        assert_eq!(l.observe(true), Some(Transition { from: CnnInt8, to: Classical }));
        for _ in 0..2 {
            assert_eq!(l.observe(true), None);
        }
        assert_eq!(l.observe(true), Some(Transition { from: Classical, to: EnergyOnly }));
        for _ in 0..2 {
            assert_eq!(l.observe(true), None);
        }
        assert_eq!(l.observe(true), Some(Transition { from: EnergyOnly, to: Shed }));
        // Shed is the floor: further misses change nothing.
        for _ in 0..10 {
            assert_eq!(l.observe(true), None);
        }
        assert_eq!(l.level(), Shed);
    }

    #[test]
    fn a_met_deadline_resets_the_miss_streak() {
        let mut l = ladder();
        l.observe(true);
        l.observe(true);
        assert_eq!(l.observe(false), None);
        assert_eq!(l.observe(true), None);
        assert_eq!(l.observe(true), None, "streak restarted after the meet");
        assert_eq!(l.level(), Cnn);
    }

    #[test]
    fn recovery_needs_a_long_streak_and_respects_cooldown() {
        let cfg = LadderConfig { degrade_after: 2, recover_after: 5, cooldown: 3 };
        let mut l = DegradationLadder::new(cfg, Cnn);
        l.observe(true);
        assert_eq!(l.observe(true).unwrap().to, CnnInt8);
        // Cooldown: the first `cooldown` meets cannot recover even once the
        // meet streak is long enough.
        let mut transitions = Vec::new();
        for _ in 0..20 {
            if let Some(t) = l.observe(false) {
                transitions.push(t);
            }
        }
        assert_eq!(transitions, vec![Transition { from: CnnInt8, to: Cnn }]);
        assert_eq!(l.level(), Cnn);
        // And it never climbs above its best rung.
        for _ in 0..50 {
            assert_eq!(l.observe(false), None);
        }
        assert_eq!(l.level(), Cnn);
    }

    #[test]
    fn degradation_ignores_cooldown() {
        // Overload must always be escapable: a fresh transition's cooldown
        // freezes recovery, never further degradation.
        let cfg = LadderConfig { degrade_after: 2, recover_after: 4, cooldown: 10 };
        let mut l = DegradationLadder::new(cfg, Cnn);
        l.observe(true);
        l.observe(true); // -> CnnInt8, cooldown 10
        l.observe(true);
        assert_eq!(l.observe(true).unwrap().to, Classical);
    }

    #[test]
    fn classical_best_never_climbs_to_cnn() {
        let cfg = LadderConfig { degrade_after: 1, recover_after: 1, cooldown: 0 };
        let mut l = DegradationLadder::new(cfg, Classical);
        assert_eq!(l.observe(true).unwrap().to, EnergyOnly);
        assert_eq!(l.observe(false).unwrap().to, Classical);
        assert_eq!(l.observe(false), None, "tops out at its configured best");
    }

    #[test]
    fn level_cap_only_ever_cheapens() {
        let cap = LevelCap::new();
        assert_eq!(cap.get(), Cnn, "fresh cap restricts nothing");
        assert_eq!(cap.apply(Classical), Classical);
        cap.set(EnergyOnly);
        assert_eq!(cap.apply(Cnn), EnergyOnly, "cap wins when stricter");
        assert_eq!(cap.apply(Shed), Shed, "session's own shed survives the cap");
        cap.set(Cnn);
        assert_eq!(cap.apply(Classical), Classical, "lifting the cap restores the ladder");
    }

    #[test]
    fn overload_oscillation_is_bounded_by_hysteresis() {
        // Under permanent overload (every non-shed region misses), the
        // ladder must spend almost all its time at Shed, not flap: shed
        // regions always meet the deadline, so without hysteresis it would
        // bounce Shed ↔ EnergyOnly every few regions.
        let mut l = ladder();
        let mut transitions = 0;
        for _ in 0..1000 {
            let missed = l.level() != Shed; // shedding is always fast
            if l.observe(missed).is_some() {
                transitions += 1;
            }
        }
        // 4 rungs down, then bounded Shed↔EnergyOnly cycling: each full
        // cycle needs ≥ recover_after + degrade_after observations.
        let cfg = LadderConfig::default();
        let cycle = (cfg.recover_after + cfg.degrade_after) as usize;
        assert!(
            transitions <= 4 + 2 * (1000 / cycle + 1),
            "{transitions} transitions in 1000 regions is flapping"
        );
    }
}
