//! Disk-health gauge: maps storage fault signals onto the durability
//! degradation ladder.
//!
//! A shard's disk does not fail cleanly — it runs out of space, starts
//! returning EIO intermittently, or stalls inside fsync. The gauge watches
//! every durable operation's outcome (error / success, stall ticks charged,
//! free space remaining) and walks the shard through
//! [`DurabilityLevel::Durable`] → [`DurabilityLevel::ReplicaOnly`] →
//! [`DurabilityLevel::MemoryOnly`] → [`DurabilityLevel::RefuseWrites`]
//! one rung at a time, with the same asymmetric hysteresis as the
//! inference [`DegradationLadder`](crate::ladder::DegradationLadder):
//!
//! - **Degradation is immediate-ish**: `degrade_after` *consecutive* failed
//!   operations drop one rung. Cooldown never blocks degradation.
//! - **Recovery is conservative**: `recover_after` consecutive clean
//!   operations climb one rung, and only after the post-shift cooldown has
//!   drained. A flapping disk stays degraded.
//! - **Watermarks are a floor, not a streak**: free space below
//!   `low_water` pins the shard at [`DurabilityLevel::MemoryOnly`] or
//!   worse; below `refuse_water` it pins at
//!   [`DurabilityLevel::RefuseWrites`]. Watermark floors apply instantly
//!   (a full disk must not need three failed appends to notice) and hold
//!   recovery down until space frees up.
//!
//! The gauge is pure bookkeeping — no I/O, no clock reads — so a replayed
//! sequence of outcomes produces a byte-identical transition history.

use emoleak_core::admission::DurabilityLevel;

/// One observed durable-operation outcome, as fed to [`DiskGauge::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskOutcome {
    /// The operation failed (EIO, ENOSPC, short write, …).
    pub errored: bool,
    /// Stall ticks the operation charged (0 on a healthy disk).
    pub stall_ticks: u64,
    /// Free space remaining on the device, if the VFS can report it.
    pub free_space: Option<u64>,
}

impl DiskOutcome {
    /// A clean operation on a disk with unknown (assumed ample) free space.
    pub fn clean() -> Self {
        DiskOutcome { errored: false, stall_ticks: 0, free_space: None }
    }

    /// A failed operation.
    pub fn error() -> Self {
        DiskOutcome { errored: true, stall_ticks: 0, free_space: None }
    }
}

/// Hysteresis and watermark thresholds for the [`DiskGauge`].
///
/// Plain `Eq` data so it can ride inside a fleet config compared against
/// its default by the strict-env test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiskGaugeConfig {
    /// Consecutive failed operations before dropping one rung.
    pub degrade_after: u32,
    /// Consecutive clean operations before climbing one rung.
    pub recover_after: u32,
    /// Operations after any shift during which recovery is frozen
    /// (degradation is never frozen).
    pub cooldown: u32,
    /// Free space (bytes) below which the shard is pinned at
    /// [`DurabilityLevel::MemoryOnly`] or worse.
    pub low_water: u64,
    /// Free space (bytes) below which the shard is pinned at
    /// [`DurabilityLevel::RefuseWrites`].
    pub refuse_water: u64,
    /// A single operation charging at least this many stall ticks counts
    /// as a miss even when it eventually succeeded. `0` disables
    /// stall-driven degradation.
    pub stall_miss: u64,
}

impl Default for DiskGaugeConfig {
    fn default() -> Self {
        DiskGaugeConfig {
            degrade_after: 3,
            recover_after: 8,
            cooldown: 4,
            low_water: 4096,
            refuse_water: 512,
            stall_miss: 4,
        }
    }
}

/// One durability transition, `from` strictly better or worse than `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityTransition {
    /// The level before.
    pub from: DurabilityLevel,
    /// The level after.
    pub to: DurabilityLevel,
}

/// The per-shard disk-health state machine.
#[derive(Debug, Clone)]
pub struct DiskGauge {
    config: DiskGaugeConfig,
    level: DurabilityLevel,
    misses: u32,
    meets: u32,
    cooldown_left: u32,
}

impl DiskGauge {
    /// A gauge starting at full durability.
    pub fn new(config: DiskGaugeConfig) -> Self {
        DiskGauge {
            config,
            level: DurabilityLevel::Durable,
            misses: 0,
            meets: 0,
            cooldown_left: 0,
        }
    }

    /// The current durability level.
    pub fn level(&self) -> DurabilityLevel {
        self.level
    }

    /// Feeds one operation outcome; returns the transition if the gauge
    /// moved.
    ///
    /// Watermark floors are checked first and apply instantly (possibly
    /// jumping multiple rungs); streak-driven moves go one rung at a time.
    pub fn observe(&mut self, outcome: DiskOutcome) -> Option<DurabilityTransition> {
        self.cooldown_left = self.cooldown_left.saturating_sub(1);

        // Watermark floor: a full disk is not a streak, it is a fact.
        let floor = self.config.floor(outcome.free_space);
        if floor > self.level {
            let from = self.level;
            self.shift(floor);
            return Some(DurabilityTransition { from, to: floor });
        }

        let miss = outcome.errored
            || (self.config.stall_miss > 0 && outcome.stall_ticks >= self.config.stall_miss);
        if miss {
            self.meets = 0;
            self.misses += 1;
            // Degradation is never blocked by cooldown: a disk that keeps
            // failing right after a shift must keep falling.
            if self.misses >= self.config.degrade_after
                && self.level != DurabilityLevel::RefuseWrites
            {
                let from = self.level;
                let to = self.level.worse();
                self.shift(to);
                return Some(DurabilityTransition { from, to });
            }
        } else {
            self.misses = 0;
            self.meets += 1;
            if self.meets >= self.config.recover_after
                && self.cooldown_left == 0
                && self.level != DurabilityLevel::Durable
            {
                let to = self.level.better();
                // Recovery cannot climb above the watermark floor: clean
                // appends on a still-full disk do not restore durability.
                if floor <= to {
                    let from = self.level;
                    self.shift(to);
                    return Some(DurabilityTransition { from, to });
                }
                // Hold the streak ready; the climb fires once space frees.
                self.meets = self.config.recover_after;
            }
        }
        None
    }

    fn shift(&mut self, to: DurabilityLevel) {
        self.level = to;
        self.misses = 0;
        self.meets = 0;
        self.cooldown_left = self.config.cooldown;
    }
}

impl DiskGaugeConfig {
    /// The worst level `free_space` forces, independent of streaks.
    fn floor(&self, free_space: Option<u64>) -> DurabilityLevel {
        match free_space {
            Some(free) if free < self.refuse_water => DurabilityLevel::RefuseWrites,
            Some(free) if free < self.low_water => DurabilityLevel::MemoryOnly,
            _ => DurabilityLevel::Durable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DurabilityLevel::*;

    fn cfg() -> DiskGaugeConfig {
        DiskGaugeConfig {
            degrade_after: 3,
            recover_after: 4,
            cooldown: 2,
            low_water: 1000,
            refuse_water: 100,
            stall_miss: 5,
        }
    }

    #[test]
    fn consecutive_errors_degrade_one_rung_at_a_time() {
        let mut g = DiskGauge::new(cfg());
        for _ in 0..2 {
            assert_eq!(g.observe(DiskOutcome::error()), None);
        }
        assert_eq!(
            g.observe(DiskOutcome::error()),
            Some(DurabilityTransition { from: Durable, to: ReplicaOnly })
        );
        // Streak resets after a shift; three more misses drop the next rung
        // even though cooldown has not drained (cooldown only gates
        // recovery).
        for _ in 0..2 {
            assert_eq!(g.observe(DiskOutcome::error()), None);
        }
        assert_eq!(
            g.observe(DiskOutcome::error()),
            Some(DurabilityTransition { from: ReplicaOnly, to: MemoryOnly })
        );
        for _ in 0..2 {
            assert_eq!(g.observe(DiskOutcome::error()), None);
        }
        assert_eq!(
            g.observe(DiskOutcome::error()),
            Some(DurabilityTransition { from: MemoryOnly, to: RefuseWrites })
        );
        // The floor is absorbing under continued errors.
        for _ in 0..10 {
            assert_eq!(g.observe(DiskOutcome::error()), None);
        }
        assert_eq!(g.level(), RefuseWrites);
    }

    #[test]
    fn interleaved_success_resets_the_miss_streak() {
        let mut g = DiskGauge::new(cfg());
        g.observe(DiskOutcome::error());
        g.observe(DiskOutcome::error());
        g.observe(DiskOutcome::clean());
        g.observe(DiskOutcome::error());
        g.observe(DiskOutcome::error());
        assert_eq!(g.level(), Durable, "non-consecutive errors must not trip");
    }

    #[test]
    fn recovery_needs_streak_plus_cooldown() {
        let mut g = DiskGauge::new(cfg());
        for _ in 0..3 {
            g.observe(DiskOutcome::error());
        }
        assert_eq!(g.level(), ReplicaOnly);
        // 4 clean ops would satisfy recover_after, but cooldown (2) eats
        // into the window: with cooldown_left decremented first, op 4 has
        // cooldown drained and the streak full.
        let mut transitions = Vec::new();
        for _ in 0..4 {
            transitions.extend(g.observe(DiskOutcome::clean()));
        }
        assert_eq!(
            transitions,
            vec![DurabilityTransition { from: ReplicaOnly, to: Durable }]
        );
        assert_eq!(g.level(), Durable);
    }

    #[test]
    fn stalls_count_as_misses_above_threshold() {
        let mut g = DiskGauge::new(cfg());
        for _ in 0..2 {
            g.observe(DiskOutcome { errored: false, stall_ticks: 5, free_space: None });
        }
        assert_eq!(g.level(), Durable);
        let t = g.observe(DiskOutcome { errored: false, stall_ticks: 7, free_space: None });
        assert_eq!(t, Some(DurabilityTransition { from: Durable, to: ReplicaOnly }));
        // Below-threshold stalls are clean.
        let mut g2 = DiskGauge::new(cfg());
        for _ in 0..10 {
            g2.observe(DiskOutcome { errored: false, stall_ticks: 4, free_space: None });
        }
        assert_eq!(g2.level(), Durable);
    }

    #[test]
    fn watermarks_pin_instantly_and_hold_recovery_down() {
        let mut g = DiskGauge::new(cfg());
        // Clean op, but the disk is nearly full: the floor applies at once.
        let t = g.observe(DiskOutcome { errored: false, stall_ticks: 0, free_space: Some(999) });
        assert_eq!(t, Some(DurabilityTransition { from: Durable, to: MemoryOnly }));
        // Still under low_water: clean streaks cannot climb past the floor.
        for _ in 0..20 {
            assert_eq!(
                g.observe(DiskOutcome { errored: false, stall_ticks: 0, free_space: Some(999) }),
                None
            );
        }
        assert_eq!(g.level(), MemoryOnly);
        // Space exhausts further: straight to the refuse floor.
        let t = g.observe(DiskOutcome { errored: false, stall_ticks: 0, free_space: Some(50) });
        assert_eq!(t, Some(DurabilityTransition { from: MemoryOnly, to: RefuseWrites }));
        // Space frees: the held recovery streak climbs back one rung per
        // observation window.
        let mut seen = Vec::new();
        for _ in 0..40 {
            seen.extend(
                g.observe(DiskOutcome { errored: false, stall_ticks: 0, free_space: Some(5000) }),
            );
        }
        assert_eq!(
            seen,
            vec![
                DurabilityTransition { from: RefuseWrites, to: MemoryOnly },
                DurabilityTransition { from: MemoryOnly, to: ReplicaOnly },
                DurabilityTransition { from: ReplicaOnly, to: Durable },
            ]
        );
    }

    #[test]
    fn ladder_is_monotone_under_sustained_pressure() {
        // Under a pure-degradation input sequence the level never improves.
        let mut g = DiskGauge::new(cfg());
        let mut prev = g.level();
        for i in 0..50u64 {
            let free = 2000u64.saturating_sub(i * 100);
            g.observe(DiskOutcome { errored: i % 2 == 0, stall_ticks: 0, free_space: Some(free) });
            assert!(
                g.level() >= prev,
                "level improved under sustained pressure: {prev} -> {}",
                g.level()
            );
            prev = g.level();
        }
        assert_eq!(g.level(), RefuseWrites);
    }
}
