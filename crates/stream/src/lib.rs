//! `emoleak-stream`: a resilient online inference service for the EmoLeak
//! attack pipeline.
//!
//! Where `emoleak-core`'s batch pipeline harvests a whole recorded campaign
//! at once, this crate classifies emotions *as the accelerometer stream
//! arrives*: fixed-size chunks flow through bounded queues into incremental
//! region detection, feature extraction, and per-region classification
//! under a configurable deadline.
//!
//! The crate is built around the failure modes a long-lived service meets
//! in the wild, each handled by a dedicated module:
//!
//! | failure | mechanism | module |
//! |---|---|---|
//! | transient source errors | seeded exponential backoff | [`retry`] |
//! | slow consumers | bounded queues + explicit overflow policy | [`queue`] |
//! | sustained overload | deadline-miss degradation ladder with hysteresis | [`ladder`] |
//! | worker panics / wedges | supervision: restart, watchdog, abandon | [`supervisor`] |
//!
//! Everything the resilience machinery does is recorded in a deterministic
//! [`ServiceLog`], and on a clean stream the service's emissions are
//! byte-identical to a batch harvest of the same recording — degradation
//! is observable and optional, never silent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod durable;
pub mod ladder;
pub mod log;
pub mod queue;
pub mod retry;
pub mod service;
pub mod source;
pub mod supervisor;

pub use disk::{DiskGauge, DiskGaugeConfig, DiskOutcome, DurabilityTransition};
pub use durable::{
    recover_run, ChunkAdmit, ChunkServe, DurableSink, LedgerRecord, RecoveredRun,
    REC_CHUNK_ADMIT, REC_CHUNK_SERVE, REC_DURABILITY, REC_EMISSION, REC_FLEET_TRANSITION,
    REC_LOAD_SHED, REC_RUN_SUMMARY, REC_SHARD_LEDGER, REC_TRANSITION,
};
pub use ladder::{DegradationLadder, LadderConfig, LevelCap, Transition};
pub use log::{ServiceEvent, ServiceLog};
pub use queue::{BoundedQueue, ByteGauge, OverflowPolicy, PopOutcome, PushOutcome};
pub use retry::{retry_with_backoff, RetryError, RetryPolicy};
pub use service::{
    RegionEmission, StreamConfig, StreamError, StreamReport, StreamService, StreamStats,
};
pub use source::{
    FlakySource, ReplaySource, SampleSource, SourceChunk, SourceError, ValidatingSource,
};
pub use supervisor::{
    supervise, Heartbeat, Stage, StageCtx, SupervisionError, SupervisionReport,
    SupervisorConfig,
};

/// Commonly used types for streaming consumers.
pub mod prelude {
    pub use crate::ladder::{LadderConfig, LevelCap};
    pub use crate::queue::{ByteGauge, OverflowPolicy};
    pub use crate::service::{StreamConfig, StreamError, StreamReport, StreamService};
    pub use crate::source::{FlakySource, ReplaySource, SampleSource, ValidatingSource};
    pub use emoleak_core::online::{InferenceLevel, ModelBundle, Verdict};
}
