//! Durable verdict journaling for the streaming service.
//!
//! A long-lived capture service is routinely killed — by the OS, a battery
//! manager, or a chaos harness. [`DurableSink`] writes every committed
//! [`RegionEmission`] and every degradation-ladder [`Transition`] to a
//! write-ahead journal (`emoleak-durable`) *at the moment it commits*, so a
//! kill loses at most the region being classified. [`recover_run`] replays
//! a journal — including one torn by a kill mid-append — back into typed
//! emissions and transitions.
//!
//! Journaling happens on the classify worker thread, where an `Err` has no
//! caller to land in; the sink therefore latches its first failure and
//! stops journaling, and [`DurableSink::take_error`] surfaces the failure
//! after the run. Classification itself never blocks on a broken disk.

use crate::disk::{DiskGauge, DiskGaugeConfig, DiskOutcome, DurabilityTransition};
use crate::ladder::Transition;
use crate::service::RegionEmission;
use emoleak_core::admission::{DurabilityLevel, FleetState};
use emoleak_core::online::{InferenceLevel, Verdict};
use emoleak_durable::{
    compare_streams, rebuild_journal_with, Dec, Defect, DurableError, Enc, Journal, OsVfs,
    StreamDiff, Vfs, WireError,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Journal record kind: one committed region emission.
pub const REC_EMISSION: u8 = 1;
/// Journal record kind: one degradation-ladder transition.
pub const REC_TRANSITION: u8 = 2;
/// Journal record kind: end-of-run summary (its presence marks a run that
/// shut down cleanly rather than being killed).
pub const REC_RUN_SUMMARY: u8 = 3;
/// Journal record kind: one fleet-breaker state transition.
pub const REC_FLEET_TRANSITION: u8 = 4;
/// Journal record kind: one CoDel load shed.
pub const REC_LOAD_SHED: u8 = 5;
/// Journal record kind: one periodic shard admission ledger snapshot.
pub const REC_SHARD_LEDGER: u8 = 6;
/// Journal record kind: one chunk admitted into the shard queue
/// (write-ahead: journaled *before* the enqueue, so a crash between the
/// two replays a chunk that was never queued — harmless at-least-once).
pub const REC_CHUNK_ADMIT: u8 = 7;
/// Journal record kind: one queued chunk served.
pub const REC_CHUNK_SERVE: u8 = 8;
/// Journal record kind: the writer's fencing-token stamp. Written when a
/// coordinator hands a journal to a shard incarnation; recovery surfaces
/// the last stamp so a successor can prove which incarnation wrote the
/// tail.
pub const REC_FENCE_EPOCH: u8 = 9;
/// Journal record kind: one disk-gauge durability transition. Journaled
/// best-effort at the *new* level (a transition into `MemoryOnly` or
/// `RefuseWrites` has nowhere durable to land and is carried only in
/// memory), so recovery can see when and how far the writer's storage had
/// degraded.
pub const REC_DURABILITY: u8 = 10;

/// One snapshot of a shard's admission counters, journaled periodically so
/// a fleet coordinator can reconcile a crash-killed shard: the last ledger
/// plus the journaled sheds after it bound exactly how many routed chunks
/// the shard can account for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerRecord {
    /// The logical tick the snapshot was taken at.
    pub tick: u64,
    /// Chunks offered to the shard so far.
    pub offered: u64,
    /// Chunks served so far.
    pub served: u64,
    /// Chunks rejected at the front door so far.
    pub rejected: u64,
    /// Chunks CoDel shed so far.
    pub shed: u64,
    /// Chunks queued at snapshot time.
    pub queued: u64,
    /// Chunks evacuated to other shards so far.
    pub migrated: u64,
}

/// One chunk admission, journaled write-ahead of the enqueue. Together
/// with [`ChunkServe`] and the shed records, these reconstruct a crashed
/// shard's exact queue: `queued = admits − serves − sheds` by
/// `(tenant, seq)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkAdmit {
    /// The logical tick the chunk was admitted at.
    pub tick: u64,
    /// The owning tenant.
    pub tenant: String,
    /// The coordinator-assigned per-tenant sequence number.
    pub seq: u64,
    /// The chunk's admission cost (token/memory units).
    pub cost: u64,
}

/// One chunk leaving the queue as served work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkServe {
    /// The logical tick the chunk was served at.
    pub tick: u64,
    /// The owning tenant.
    pub tenant: String,
    /// The coordinator-assigned per-tenant sequence number.
    pub seq: u64,
}

fn fleet_code(state: FleetState) -> u8 {
    FleetState::ALL.iter().position(|s| *s == state).map(|i| i as u8).unwrap_or(u8::MAX)
}

fn fleet_from(code: u8, offset: u64) -> Result<FleetState, WireError> {
    FleetState::ALL.get(usize::from(code)).copied().ok_or_else(|| WireError {
        offset,
        detail: format!("unknown fleet state code {code}"),
    })
}

fn durability_code(level: DurabilityLevel) -> u8 {
    DurabilityLevel::ALL.iter().position(|l| *l == level).map(|i| i as u8).unwrap_or(u8::MAX)
}

fn durability_from(code: u8, offset: u64) -> Result<DurabilityLevel, WireError> {
    DurabilityLevel::ALL.get(usize::from(code)).copied().ok_or_else(|| WireError {
        offset,
        detail: format!("unknown durability level code {code}"),
    })
}

fn level_code(level: InferenceLevel) -> u8 {
    InferenceLevel::ALL
        .iter()
        .position(|l| *l == level)
        .map(|i| i as u8)
        .unwrap_or(u8::MAX)
}

fn level_from(code: u8, offset: u64) -> Result<InferenceLevel, WireError> {
    InferenceLevel::ALL.get(usize::from(code)).copied().ok_or_else(|| WireError {
        offset,
        detail: format!("unknown inference level code {code}"),
    })
}

fn encode_emission(e: &RegionEmission) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u64(e.window as u64)
        .u64(e.start as u64)
        .u64(e.end as u64)
        .u64(e.truth as u64)
        .u8(level_code(e.verdict.level))
        .u8(u8::from(e.verdict.is_speech))
        .u8(u8::from(e.verdict.label.is_some()))
        .u64(e.verdict.label.unwrap_or(0) as u64)
        .u8(u8::from(e.deadline_missed))
        .u64(e.latency.as_nanos() as u64);
    enc.into_bytes()
}

fn decode_emission(region: u64, data: &[u8]) -> Result<RegionEmission, WireError> {
    let mut dec = Dec::new(data);
    let window = dec.u64()? as usize;
    let start = dec.u64()? as usize;
    let end = dec.u64()? as usize;
    let truth = dec.u64()? as usize;
    let level_at = dec.offset();
    let level = level_from(dec.u8()?, level_at)?;
    let is_speech = dec.u8()? != 0;
    let has_label = dec.u8()? != 0;
    let label_raw = dec.u64()? as usize;
    let deadline_missed = dec.u8()? != 0;
    let latency = Duration::from_nanos(dec.u64()?);
    dec.finish()?;
    Ok(RegionEmission {
        region,
        window,
        start,
        end,
        truth,
        verdict: Verdict { level, label: has_label.then_some(label_raw), is_speech },
        deadline_missed,
        latency,
    })
}

fn encode_transition(region: u64, t: Transition) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u64(region).u8(level_code(t.from)).u8(level_code(t.to));
    enc.into_bytes()
}

/// The sink's fencing guard: the writer's incarnation token checked
/// against a shared storage-side authority on every append. The authority
/// holds the minimum token it still accepts; a coordinator bumps it past a
/// fenced incarnation's token at failover, so a resurrected stale writer's
/// appends are refused before they touch the file.
#[derive(Debug, Clone)]
struct FenceGuard {
    token: u64,
    authority: Arc<AtomicU64>,
}

struct SinkInner {
    journal: Journal,
    /// Synchronous replica journal (the follower shard's copy). `None`
    /// when replication is off.
    replica: Option<Journal>,
    seq: u64,
    error: Option<DurableError>,
    /// Replica failures latch separately: a dead follower must never stop
    /// the primary from committing.
    replica_error: Option<DurableError>,
    /// Armed nemesis: tear the next replica append after this fraction of
    /// its frame bytes (a kill landing mid-ship).
    tear_replica: Option<f64>,
    /// Fencing guard; `None` when the sink's writer is not fenced (solo
    /// deployments, direct-mode fleets).
    fence: Option<FenceGuard>,
    /// The VFS every durable byte of this sink crosses — `OsVfs` in
    /// production, a `FaultVfs` under the disk nemesis.
    vfs: Arc<dyn Vfs>,
    /// The disk-health gauge driving the durability ladder. `None` keeps
    /// the classic latch-on-first-error semantics.
    gauge: Option<DiskGauge>,
    /// Records that committed in memory but reached no journal because the
    /// gauge had degraded (or the degraded-mode write failed) — the honest
    /// would-be-lost-on-crash count.
    unjournaled: u64,
    /// Gauge transitions as `(seq, from, to)`, drained by the shard for
    /// service-log events and tick accounting.
    durability_log: Vec<(u64, DurabilityLevel, DurabilityLevel)>,
}

/// A thread-safe handle journaling service events as they commit. Cloning
/// shares the underlying journal.
#[derive(Clone)]
pub struct DurableSink {
    inner: Arc<Mutex<SinkInner>>,
}

impl core::fmt::Debug for DurableSink {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("DurableSink")
            .field("path", &inner.journal.path())
            .field("seq", &inner.seq)
            .field("error", &inner.error)
            .finish()
    }
}

/// The classic append path: first failure latches and journaling stops.
fn append_direct(inner: &mut SinkInner, kind: u8, data: &[u8]) {
    let seq = inner.seq;
    if let Err(e) = inner.journal.append(kind, seq, data) {
        inner.error = Some(e);
        return; // the record never committed: do not ship it
    }
    inner.seq += 1;
    // Synchronous ship to the follower. The replica trails the primary
    // by at most the record currently in flight.
    let tear = inner.tear_replica.take();
    if inner.replica_error.is_some() {
        return; // replica latched: the scrubber will re-ship
    }
    if let Some(replica) = inner.replica.as_mut() {
        let result = match tear {
            Some(frac) => replica.append_torn(kind, seq, data, frac).and(Err(
                DurableError::Injected {
                    op: seq,
                    detail: "replica ship torn mid-write".into(),
                },
            )),
            None => replica.append(kind, seq, data),
        };
        if let Err(e) = result {
            inner.replica_error = Some(e);
        }
    }
}

/// The gauge-armed append path: journaling follows the current durability
/// level, failures feed the gauge instead of latching, and records that
/// reach no journal are counted as unjournaled.
fn append_gauged(inner: &mut SinkInner, kind: u8, data: &[u8]) {
    let level = inner.gauge.as_ref().map(|g| g.level()).unwrap_or(DurabilityLevel::Durable);
    let free = inner.vfs.free_space(inner.journal.path());
    let seq = inner.seq;
    inner.seq += 1;
    let mut outcome = DiskOutcome { errored: false, stall_ticks: 0, free_space: free };
    let mut journaled = false;
    if level.journals_primary() {
        let result = inner.journal.append(kind, seq, data);
        outcome.stall_ticks += inner.journal.take_stalled_ticks();
        match result {
            Ok(()) => journaled = true,
            Err(_) => outcome.errored = true,
        }
    }
    if level.journals_replica() && inner.replica_error.is_none() {
        let tear = inner.tear_replica.take();
        if let Some(replica) = inner.replica.as_mut() {
            let result = match tear {
                Some(frac) => replica.append_torn(kind, seq, data, frac).and(Err(
                    DurableError::Injected {
                        op: seq,
                        detail: "replica ship torn mid-write".into(),
                    },
                )),
                None => replica.append(kind, seq, data),
            };
            outcome.stall_ticks += replica.take_stalled_ticks();
            match result {
                Ok(()) => journaled = true,
                Err(e) => {
                    // At ReplicaOnly the replica *is* the shard's
                    // durability, so its failure drives the gauge; at
                    // Durable a dead follower stays the follower's problem.
                    if level > DurabilityLevel::Durable {
                        outcome.errored = true;
                    }
                    inner.replica_error = Some(e);
                }
            }
        }
    }
    if !journaled {
        inner.unjournaled += 1;
    }
    let transition = inner.gauge.as_mut().and_then(|g| g.observe(outcome));
    if let Some(t) = transition {
        apply_transition(inner, seq, t);
    }
}

/// Bookkeeping for one gauge transition: log it, reopen any journal the
/// climb re-enables (its handle may be poisoned by the very faults that
/// degraded it, and reopen truncates a torn tail), and journal the
/// transition record best-effort at the *new* level.
fn apply_transition(inner: &mut SinkInner, tick: u64, t: DurabilityTransition) {
    inner.durability_log.push((tick, t.from, t.to));
    if t.to < t.from {
        if t.to.journals_primary() {
            let path = inner.journal.path().to_path_buf();
            if let Ok((journal, _, _)) = Journal::open_with(&path, inner.vfs.as_ref()) {
                inner.journal = journal;
            }
            // A failed reopen leaves the old handle; the next append's
            // error feeds the gauge and degrades again.
        }
        if t.to.journals_replica() {
            if let Some(path) = inner.replica.as_ref().map(|r| r.path().to_path_buf()) {
                if let Ok((journal, _, _)) = Journal::open_with(&path, inner.vfs.as_ref()) {
                    inner.replica = Some(journal);
                    inner.replica_error = None;
                }
            }
        }
    }
    let mut enc = Enc::new();
    enc.u64(tick).u8(durability_code(t.from)).u8(durability_code(t.to));
    let data = enc.into_bytes();
    let seq = inner.seq;
    if t.to.journals_primary() {
        if inner.journal.append(REC_DURABILITY, seq, &data).is_ok() {
            inner.seq += 1;
            let _ = inner.journal.take_stalled_ticks();
            if inner.replica_error.is_none() {
                if let Some(replica) = inner.replica.as_mut() {
                    if let Err(e) = replica.append(REC_DURABILITY, seq, &data) {
                        inner.replica_error = Some(e);
                    }
                    let _ = replica.take_stalled_ticks();
                }
            }
        }
    } else if t.to.journals_replica() && inner.replica_error.is_none() {
        if let Some(replica) = inner.replica.as_mut() {
            if replica.append(REC_DURABILITY, seq, &data).is_ok() {
                inner.seq += 1;
            }
            let _ = replica.take_stalled_ticks();
        }
    }
}

impl DurableSink {
    /// Creates a fresh journal at `path` (truncating an existing one — each
    /// service run is its own journal).
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] when the journal cannot be created.
    pub fn create(path: &Path) -> Result<DurableSink, DurableError> {
        DurableSink::create_with(path, Arc::new(OsVfs), None)
    }

    /// [`DurableSink::create`] with every durable byte routed through `vfs`
    /// and, when `gauge` is set, the disk-health gauge armed: journaling
    /// failures feed the gauge and walk the sink down the durability
    /// ladder instead of latching on the first error.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] when the journal cannot be created.
    pub fn create_with(
        path: &Path,
        vfs: Arc<dyn Vfs>,
        gauge: Option<DiskGaugeConfig>,
    ) -> Result<DurableSink, DurableError> {
        let journal = Journal::create_with(path, vfs.as_ref())?;
        Ok(DurableSink {
            inner: Arc::new(Mutex::new(SinkInner {
                journal,
                replica: None,
                seq: 0,
                error: None,
                replica_error: None,
                tear_replica: None,
                fence: None,
                vfs,
                gauge: gauge.map(DiskGauge::new),
                unjournaled: 0,
                durability_log: Vec::new(),
            })),
        })
    }

    /// Creates a fresh journal at `path` plus a synchronous replica at
    /// `replica_path`. Every committed record is shipped to the replica
    /// immediately after the primary fsync; a replica failure latches
    /// separately ([`DurableSink::take_replica_error`]) and never blocks
    /// the primary.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] when either journal cannot be created.
    pub fn create_replicated(path: &Path, replica_path: &Path) -> Result<DurableSink, DurableError> {
        DurableSink::create_replicated_with(path, replica_path, Arc::new(OsVfs), None)
    }

    /// [`DurableSink::create_replicated`] with every durable byte routed
    /// through `vfs` and an optionally armed disk-health gauge (see
    /// [`DurableSink::create_with`]).
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] when either journal cannot be created.
    pub fn create_replicated_with(
        path: &Path,
        replica_path: &Path,
        vfs: Arc<dyn Vfs>,
        gauge: Option<DiskGaugeConfig>,
    ) -> Result<DurableSink, DurableError> {
        let journal = Journal::create_with(path, vfs.as_ref())?;
        let replica = Journal::create_with(replica_path, vfs.as_ref())?;
        Ok(DurableSink {
            inner: Arc::new(Mutex::new(SinkInner {
                journal,
                replica: Some(replica),
                seq: 0,
                error: None,
                replica_error: None,
                tear_replica: None,
                fence: None,
                vfs,
                gauge: gauge.map(DiskGauge::new),
                unjournaled: 0,
                durability_log: Vec::new(),
            })),
        })
    }

    /// Arms the fencing guard: every later append checks `token` against
    /// the shared `authority` (the storage-side minimum-valid token) and
    /// refuses with [`DurableError::Fenced`] once the authority moves past
    /// it. The stamp itself is journaled (`REC_FENCE_EPOCH`) so recovery
    /// can prove which incarnation wrote the tail.
    pub fn set_fence(&self, token: u64, authority: Arc<AtomicU64>) {
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.fence = Some(FenceGuard { token, authority });
        }
        let mut enc = Enc::new();
        enc.u64(token);
        self.append(REC_FENCE_EPOCH, &enc.into_bytes());
    }

    /// The fencing token this sink writes under, when fenced.
    pub fn fence_token(&self) -> Option<u64> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.fence.as_ref().map(|f| f.token)
    }

    fn append(&self, kind: u8, data: &[u8]) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.error.is_some() {
            return; // latched: first failure wins, journaling stops
        }
        if let Some(fence) = inner.fence.as_ref() {
            let current = fence.authority.load(Ordering::SeqCst);
            if current > fence.token {
                // A stale incarnation: refuse before touching the file so
                // the successor's replay sees exactly the bytes this
                // writer committed while it was still the valid holder.
                inner.error = Some(DurableError::Fenced {
                    path: inner.journal.path().display().to_string(),
                    held: fence.token,
                    current,
                });
                return;
            }
        }
        if inner.gauge.is_some() {
            append_gauged(&mut inner, kind, data);
        } else {
            append_direct(&mut inner, kind, data);
        }
    }

    /// Journals one committed region emission (append + fsync).
    pub fn record_emission(&self, emission: &RegionEmission) {
        self.append(REC_EMISSION, &encode_emission(emission));
    }

    /// Journals one degradation-ladder transition, tagged with the region
    /// counter it fired at.
    pub fn record_transition(&self, region: u64, transition: Transition) {
        self.append(REC_TRANSITION, &encode_transition(region, transition));
    }

    /// Journals one fleet-breaker transition at logical tick `tick`.
    pub fn record_fleet_transition(&self, tick: u64, from: FleetState, to: FleetState) {
        let mut enc = Enc::new();
        enc.u64(tick).u8(fleet_code(from)).u8(fleet_code(to));
        self.append(REC_FLEET_TRANSITION, &enc.into_bytes());
    }

    /// Journals one CoDel load shed: `tenant`'s chunk `seq`, queued for
    /// `sojourn` ticks, dropped at tick `tick`.
    pub fn record_shed(&self, tick: u64, tenant: &str, sojourn: u64, seq: u64) {
        let mut enc = Enc::new();
        enc.u64(tick).str(tenant).u64(sojourn).u64(seq);
        self.append(REC_LOAD_SHED, &enc.into_bytes());
    }

    /// Journals one chunk admission (write-ahead of the enqueue).
    pub fn record_admit(&self, admit: &ChunkAdmit) {
        let mut enc = Enc::new();
        enc.u64(admit.tick).str(&admit.tenant).u64(admit.seq).u64(admit.cost);
        self.append(REC_CHUNK_ADMIT, &enc.into_bytes());
    }

    /// Journals one chunk leaving the queue as served work.
    pub fn record_serve(&self, serve: &ChunkServe) {
        let mut enc = Enc::new();
        enc.u64(serve.tick).str(&serve.tenant).u64(serve.seq);
        self.append(REC_CHUNK_SERVE, &enc.into_bytes());
    }

    /// Journals one shard admission-ledger snapshot.
    pub fn record_ledger(&self, ledger: &LedgerRecord) {
        let mut enc = Enc::new();
        enc.u64(ledger.tick)
            .u64(ledger.offered)
            .u64(ledger.served)
            .u64(ledger.rejected)
            .u64(ledger.shed)
            .u64(ledger.queued)
            .u64(ledger.migrated);
        self.append(REC_SHARD_LEDGER, &enc.into_bytes());
    }

    /// Journals the end-of-run summary. A journal ending without one was
    /// killed mid-run.
    pub fn finish(&self, regions: u64, final_level: InferenceLevel) {
        let mut enc = Enc::new();
        enc.u64(regions).u8(level_code(final_level));
        self.append(REC_RUN_SUMMARY, &enc.into_bytes());
    }

    /// The gauge's current durability level; `None` when no gauge is armed
    /// (classic latch semantics).
    pub fn durability_level(&self) -> Option<DurabilityLevel> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.gauge.as_ref().map(|g| g.level())
    }

    /// Records that committed in memory but reached no journal because the
    /// gauge had degraded — the honest would-be-lost-on-crash count.
    pub fn unjournaled(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).unjournaled
    }

    /// Drains the gauge transitions observed so far, as `(seq, from, to)`
    /// (the sink's record sequence is its logical clock).
    pub fn take_durability_transitions(
        &self,
    ) -> Vec<(u64, DurabilityLevel, DurabilityLevel)> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut inner.durability_log)
    }

    /// The first journaling failure, if any (taking it resets the latch but
    /// journaling does not resume for this run).
    pub fn take_error(&self) -> Option<DurableError> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).error.take()
    }

    /// The first replica-shipping failure, if any. A latched replica stops
    /// receiving ships until a scrub pass repairs it; the primary is
    /// unaffected.
    pub fn take_replica_error(&self) -> Option<DurableError> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).replica_error.take()
    }

    /// The replica journal's path, when replication is on.
    pub fn replica_path(&self) -> Option<PathBuf> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.replica.as_ref().map(|r| r.path().to_path_buf())
    }

    /// Whether the replica is currently latched (a ship failed and nothing
    /// has repaired it yet). A non-consuming peek for health aggregation;
    /// [`DurableSink::take_replica_error`] consumes the underlying error.
    pub fn replica_latched(&self) -> bool {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).replica_error.is_some()
    }

    /// Re-homes the replica: drops the old copy (deleting its file) and —
    /// when `new_path` is `Some` — rebuilds a byte-identical copy of the
    /// primary there. The coordinator calls this when a rebalance changes
    /// the shard's follower; `None` turns replication off (the follower
    /// chain has no peer left).
    ///
    /// A rebuild failure latches [`DurableSink::take_replica_error`]
    /// instead of erroring out: a dead follower must never stop the
    /// primary, and the next scrub pass retries the rebuild.
    pub fn rehome_replica(&self, new_path: Option<&Path>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(old) = inner.replica.take() {
            let old_path = old.path().to_path_buf();
            drop(old);
            let _ = std::fs::remove_file(old_path);
        }
        inner.replica_error = None;
        let Some(new_path) = new_path else { return };
        let vfs = Arc::clone(&inner.vfs);
        let rebuilt = Journal::verify_with(inner.journal.path(), vfs.as_ref())
            .and_then(|(records, _defects)| rebuild_journal_with(new_path, &records, vfs.as_ref()));
        match rebuilt {
            Ok(fresh) => inner.replica = Some(fresh),
            Err(e) => inner.replica_error = Some(e),
        }
    }

    /// Arms the nemesis: the next replica ship is torn after `frac` of its
    /// frame bytes and the replica latches — a kill landing mid-ship. The
    /// primary record still commits.
    pub fn tear_replica_next(&self, frac: f64) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).tear_replica = Some(frac);
    }

    /// Anti-entropy scrub: CRC-verifies the replica against the primary,
    /// classifies the difference, and performs deterministic read-repair.
    ///
    /// Runs entirely inside the sink lock, so the single-writer invariant
    /// holds: no ship can interleave with the repair, and the replica
    /// handle is atomically replaced on rebuild. Returns the defects found
    /// (detection first — [`Defect::ReplicaLag`] / [`Defect::ReplicaDiverged`]
    /// or the scan's own corruption defects — then a [`Defect::ScrubRepaired`]
    /// for the repair). Empty when the replica is identical or replication
    /// is off.
    pub fn scrub_replica(&self) -> Vec<Defect> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // While the gauge holds the sink below full durability the primary
        // is *behind the replica by policy* — "repairing" the replica back
        // to the primary's stream would destroy the very records degraded
        // mode preserved. Scrubbing resumes once the gauge climbs back.
        if inner.gauge.as_ref().is_some_and(|g| g.level() != DurabilityLevel::Durable) {
            return Vec::new();
        }
        let vfs = Arc::clone(&inner.vfs);
        let Some(replica) = inner.replica.as_ref() else {
            return Vec::new();
        };
        let replica_path = replica.path().to_path_buf();
        let primary_path = inner.journal.path().to_path_buf();
        // The primary handle has fsynced every committed record, so the
        // file content *is* the committed stream.
        let primary = match Journal::verify_with(&primary_path, vfs.as_ref()) {
            Ok((records, _defects)) => records,
            // An unreadable primary is the crash-failover path's problem,
            // not the scrubber's; leave the replica alone.
            Err(_) => return Vec::new(),
        };
        let mut defects = Vec::new();
        let replica_display = replica_path.display().to_string();
        let (replica_records, scan_clean) = match Journal::verify_with(&replica_path, vfs.as_ref())
        {
            Ok((records, scan_defects)) => {
                let clean = scan_defects.is_empty();
                defects.extend(scan_defects);
                (records, clean)
            }
            Err(_) => {
                // Missing or header-trashed replica: nothing of it is
                // trustworthy — diverged from record 0, full rebuild.
                (Vec::new(), false)
            }
        };
        match (scan_clean, compare_streams(&primary, &replica_records)) {
            (true, StreamDiff::Identical) => {
                return defects; // healthy replica, nothing to repair
            }
            // A clean strict prefix is ordinary lag (crash between primary
            // commit and ship, or a fresh follower catching up).
            (true, StreamDiff::ReplicaLag { missing }) => {
                defects.push(Defect::ReplicaLag { path: replica_display.clone(), missing });
            }
            // A record-level mismatch is divergence wherever the scan stood.
            (_, StreamDiff::Diverged { at }) => {
                defects.push(Defect::ReplicaDiverged { path: replica_display.clone(), at });
            }
            // Damage on disk (torn ship, bit rot, trashed header): nothing
            // past the valid prefix is trustworthy — divergence at the
            // damage point.
            (false, _) => {
                defects.push(Defect::ReplicaDiverged {
                    path: replica_display.clone(),
                    at: replica_records.len() as u64,
                });
            }
        }
        // Deterministic read-repair. Pure lag over a clean tail could
        // append just the suffix, but a single rebuild path keeps repair
        // byte-reproducible in every case (the journal format is
        // append-deterministic, so rebuild == re-ship).
        match rebuild_journal_with(&replica_path, &primary, vfs.as_ref()) {
            Ok(fresh) => {
                inner.replica = Some(fresh);
                inner.replica_error = None; // repaired: shipping resumes
                defects.push(Defect::ScrubRepaired {
                    path: replica_display,
                    records: primary.len() as u64,
                });
            }
            Err(e) => {
                inner.replica_error = Some(e);
            }
        }
        defects
    }
}

/// A service run replayed from its journal.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredRun {
    /// Committed emissions, in commit order (region counters are 1-based
    /// and contiguous).
    pub emissions: Vec<RegionEmission>,
    /// Committed ladder transitions as `(region, transition)` pairs.
    pub transitions: Vec<(u64, Transition)>,
    /// Committed fleet-breaker transitions as `(tick, from, to)` triples.
    pub fleet_transitions: Vec<(u64, FleetState, FleetState)>,
    /// Committed CoDel sheds as `(tick, tenant, sojourn, seq)` tuples.
    pub sheds: Vec<(u64, String, u64, u64)>,
    /// Committed shard admission-ledger snapshots, in commit order.
    pub ledgers: Vec<LedgerRecord>,
    /// Committed chunk admissions, in admission order.
    pub admits: Vec<ChunkAdmit>,
    /// Committed chunk serves, in serve order.
    pub serves: Vec<ChunkServe>,
    /// Committed disk-gauge durability transitions as `(seq, from, to)`
    /// triples. Only transitions that had somewhere durable to land appear
    /// here (see [`REC_DURABILITY`]).
    pub durability_transitions: Vec<(u64, DurabilityLevel, DurabilityLevel)>,
    /// The last fencing-token stamp in the journal, when the writer was
    /// fenced (`None` for unfenced writers).
    pub fence_token: Option<u64>,
    /// Whether the run wrote its end-of-run summary (`false` = killed).
    pub complete: bool,
}

/// Replays a service journal, repairing a torn tail if the writer was
/// killed mid-append.
///
/// # Errors
///
/// [`DurableError::Format`]/[`DurableError::Version`] for a file that is
/// not (or is a future) journal, [`DurableError::Corrupt`] for a record
/// whose payload passes the CRC but does not decode — that is real damage,
/// never served silently.
pub fn recover_run(path: &Path) -> Result<(RecoveredRun, Vec<Defect>), DurableError> {
    let (_journal, records, defects) = Journal::open(path)?;
    let corrupt = |e: WireError| DurableError::Corrupt {
        path: path.display().to_string(),
        offset: e.offset,
        detail: e.detail,
    };
    let mut run = RecoveredRun {
        emissions: Vec::new(),
        transitions: Vec::new(),
        fleet_transitions: Vec::new(),
        sheds: Vec::new(),
        ledgers: Vec::new(),
        admits: Vec::new(),
        serves: Vec::new(),
        durability_transitions: Vec::new(),
        fence_token: None,
        complete: false,
    };
    for record in records {
        match record.kind {
            REC_EMISSION => {
                let region = run.emissions.len() as u64 + 1;
                run.emissions.push(decode_emission(region, &record.data).map_err(corrupt)?);
            }
            REC_TRANSITION => {
                let mut dec = Dec::new(&record.data);
                let region = dec.u64().map_err(corrupt)?;
                let from_at = dec.offset();
                let from = dec.u8().map_err(corrupt).and_then(|c| {
                    level_from(c, from_at).map_err(corrupt)
                })?;
                let to_at = dec.offset();
                let to =
                    dec.u8().map_err(corrupt).and_then(|c| level_from(c, to_at).map_err(corrupt))?;
                dec.finish().map_err(corrupt)?;
                run.transitions.push((region, Transition { from, to }));
            }
            REC_FLEET_TRANSITION => {
                let mut dec = Dec::new(&record.data);
                let tick = dec.u64().map_err(corrupt)?;
                let from_at = dec.offset();
                let from = dec.u8().map_err(corrupt).and_then(|c| {
                    fleet_from(c, from_at).map_err(corrupt)
                })?;
                let to_at = dec.offset();
                let to =
                    dec.u8().map_err(corrupt).and_then(|c| fleet_from(c, to_at).map_err(corrupt))?;
                dec.finish().map_err(corrupt)?;
                run.fleet_transitions.push((tick, from, to));
            }
            REC_LOAD_SHED => {
                let mut dec = Dec::new(&record.data);
                let tick = dec.u64().map_err(corrupt)?;
                let tenant = dec.str().map_err(corrupt)?;
                let sojourn = dec.u64().map_err(corrupt)?;
                let seq = dec.u64().map_err(corrupt)?;
                dec.finish().map_err(corrupt)?;
                run.sheds.push((tick, tenant, sojourn, seq));
            }
            REC_CHUNK_ADMIT => {
                let mut dec = Dec::new(&record.data);
                let admit = ChunkAdmit {
                    tick: dec.u64().map_err(corrupt)?,
                    tenant: dec.str().map_err(corrupt)?,
                    seq: dec.u64().map_err(corrupt)?,
                    cost: dec.u64().map_err(corrupt)?,
                };
                dec.finish().map_err(corrupt)?;
                run.admits.push(admit);
            }
            REC_CHUNK_SERVE => {
                let mut dec = Dec::new(&record.data);
                let serve = ChunkServe {
                    tick: dec.u64().map_err(corrupt)?,
                    tenant: dec.str().map_err(corrupt)?,
                    seq: dec.u64().map_err(corrupt)?,
                };
                dec.finish().map_err(corrupt)?;
                run.serves.push(serve);
            }
            REC_SHARD_LEDGER => {
                let mut dec = Dec::new(&record.data);
                let ledger = LedgerRecord {
                    tick: dec.u64().map_err(corrupt)?,
                    offered: dec.u64().map_err(corrupt)?,
                    served: dec.u64().map_err(corrupt)?,
                    rejected: dec.u64().map_err(corrupt)?,
                    shed: dec.u64().map_err(corrupt)?,
                    queued: dec.u64().map_err(corrupt)?,
                    migrated: dec.u64().map_err(corrupt)?,
                };
                dec.finish().map_err(corrupt)?;
                run.ledgers.push(ledger);
            }
            REC_DURABILITY => {
                let mut dec = Dec::new(&record.data);
                let tick = dec.u64().map_err(corrupt)?;
                let from_at = dec.offset();
                let from = dec
                    .u8()
                    .map_err(corrupt)
                    .and_then(|c| durability_from(c, from_at).map_err(corrupt))?;
                let to_at = dec.offset();
                let to = dec
                    .u8()
                    .map_err(corrupt)
                    .and_then(|c| durability_from(c, to_at).map_err(corrupt))?;
                dec.finish().map_err(corrupt)?;
                run.durability_transitions.push((tick, from, to));
            }
            REC_FENCE_EPOCH => {
                let mut dec = Dec::new(&record.data);
                let token = dec.u64().map_err(corrupt)?;
                dec.finish().map_err(corrupt)?;
                run.fence_token = Some(token);
            }
            REC_RUN_SUMMARY => run.complete = true,
            other => {
                return Err(DurableError::Corrupt {
                    path: path.display().to_string(),
                    offset: 0,
                    detail: format!("unknown service record kind {other}"),
                })
            }
        }
    }
    Ok((run, defects))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "emoleak-sink-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn emission(region: u64) -> RegionEmission {
        RegionEmission {
            region,
            window: 3,
            start: 10,
            end: 250,
            truth: 2,
            verdict: Verdict {
                level: InferenceLevel::Classical,
                label: Some(5),
                is_speech: true,
            },
            deadline_missed: region.is_multiple_of(2),
            latency: Duration::from_micros(123 + region),
        }
    }

    #[test]
    fn emissions_and_transitions_round_trip() {
        let dir = scratch("roundtrip");
        let path = dir.join("run.log");
        let sink = DurableSink::create(&path).unwrap();
        sink.record_emission(&emission(1));
        sink.record_transition(
            1,
            Transition { from: InferenceLevel::Classical, to: InferenceLevel::EnergyOnly },
        );
        sink.record_emission(&emission(2));
        sink.finish(2, InferenceLevel::EnergyOnly);
        assert!(sink.take_error().is_none());

        let (run, defects) = recover_run(&path).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert!(run.complete);
        assert_eq!(run.emissions, vec![emission(1), emission(2)]);
        assert_eq!(
            run.transitions,
            vec![(1, Transition { from: InferenceLevel::Classical, to: InferenceLevel::EnergyOnly })]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fleet_events_round_trip() {
        let dir = scratch("fleet");
        let path = dir.join("run.log");
        let sink = DurableSink::create(&path).unwrap();
        sink.record_fleet_transition(17, FleetState::Healthy, FleetState::Degraded);
        sink.record_shed(21, "tenant-b", 9, 4);
        sink.record_fleet_transition(40, FleetState::Degraded, FleetState::Healthy);
        sink.finish(0, InferenceLevel::Cnn);
        assert!(sink.take_error().is_none());

        let (run, defects) = recover_run(&path).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert!(run.complete);
        assert!(run.emissions.is_empty());
        assert_eq!(
            run.fleet_transitions,
            vec![
                (17, FleetState::Healthy, FleetState::Degraded),
                (40, FleetState::Degraded, FleetState::Healthy),
            ]
        );
        assert_eq!(run.sheds, vec![(21, "tenant-b".to_string(), 9, 4)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_ledgers_round_trip() {
        let dir = scratch("ledger");
        let path = dir.join("run.log");
        let sink = DurableSink::create(&path).unwrap();
        let a = LedgerRecord {
            tick: 100,
            offered: 40,
            served: 25,
            rejected: 5,
            shed: 3,
            queued: 7,
            migrated: 0,
        };
        let b = LedgerRecord { tick: 200, offered: 80, served: 60, migrated: 7, ..a };
        sink.record_ledger(&a);
        sink.record_shed(150, "tenant-a", 12, 0);
        sink.record_ledger(&b);
        assert!(sink.take_error().is_none());

        let (run, defects) = recover_run(&path).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert_eq!(run.ledgers, vec![a, b]);
        assert_eq!(run.sheds.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn none_label_round_trips() {
        let dir = scratch("shed");
        let path = dir.join("run.log");
        let sink = DurableSink::create(&path).unwrap();
        let shed = RegionEmission {
            verdict: Verdict { level: InferenceLevel::Shed, label: None, is_speech: false },
            ..emission(1)
        };
        sink.record_emission(&shed);
        let (run, _) = recover_run(&path).unwrap();
        assert_eq!(run.emissions, vec![shed]);
        assert!(!run.complete, "no summary record: the run was cut short");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_loses_only_the_last_record() {
        let dir = scratch("torn");
        let path = dir.join("run.log");
        let sink = DurableSink::create(&path).unwrap();
        sink.record_emission(&emission(1));
        sink.record_emission(&emission(2));
        drop(sink);
        // Chop the last record in half: a kill mid-append.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 20]).unwrap();

        let (run, defects) = recover_run(&path).unwrap();
        assert_eq!(run.emissions, vec![emission(1)]);
        assert_eq!(defects.len(), 1, "{defects:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunk_records_round_trip() {
        let dir = scratch("chunks");
        let path = dir.join("run.log");
        let sink = DurableSink::create(&path).unwrap();
        let admit = ChunkAdmit { tick: 5, tenant: "amber".into(), seq: 17, cost: 3 };
        let serve = ChunkServe { tick: 8, tenant: "amber".into(), seq: 17 };
        sink.record_admit(&admit);
        sink.record_serve(&serve);
        assert!(sink.take_error().is_none());
        let (run, defects) = recover_run(&path).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert_eq!(run.admits, vec![admit]);
        assert_eq!(run.serves, vec![serve]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replica_receives_every_committed_record_byte_identically() {
        let dir = scratch("replica");
        let path = dir.join("run.log");
        let replica = dir.join("run.replica.log");
        let sink = DurableSink::create_replicated(&path, &replica).unwrap();
        sink.record_emission(&emission(1));
        sink.record_shed(3, "amber", 2, 0);
        sink.finish(1, InferenceLevel::Classical);
        assert!(sink.take_error().is_none());
        assert!(sink.take_replica_error().is_none());
        assert_eq!(sink.replica_path().as_deref(), Some(replica.as_path()));
        drop(sink);
        assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&replica).unwrap());
        let (run, defects) = recover_run(&replica).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert!(run.complete);
        assert_eq!(run.emissions.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_ship_latches_replica_and_scrub_repairs_it() {
        let dir = scratch("torn-ship");
        let path = dir.join("run.log");
        let replica = dir.join("run.replica.log");
        let sink = DurableSink::create_replicated(&path, &replica).unwrap();
        sink.record_emission(&emission(1));
        sink.tear_replica_next(0.5);
        sink.record_emission(&emission(2)); // primary commits, ship tears
        sink.record_emission(&emission(3)); // replica latched: not shipped
        assert!(sink.take_error().is_none());
        let err = sink.take_replica_error().expect("torn ship must latch");
        assert!(err.is_injected(), "{err}");

        // Primary has all three records; replica holds a valid one-record
        // prefix plus torn bytes.
        let (primary, _) = Journal::verify(&path).unwrap();
        assert_eq!(primary.len(), 3);
        let defects = sink.scrub_replica();
        assert!(
            defects.iter().any(|d| matches!(d, Defect::ReplicaDiverged { .. })),
            "{defects:?}"
        );
        assert!(
            defects.iter().any(|d| matches!(d, Defect::ScrubRepaired { records: 3, .. })),
            "{defects:?}"
        );
        // Repair restores byte identity and shipping resumes.
        assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&replica).unwrap());
        sink.record_emission(&emission(4));
        assert!(sink.take_replica_error().is_none());
        assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&replica).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_detects_lag_and_bit_rot() {
        let dir = scratch("scrub");
        let path = dir.join("run.log");
        let replica = dir.join("run.replica.log");
        let sink = DurableSink::create_replicated(&path, &replica).unwrap();
        sink.record_emission(&emission(1));
        sink.record_emission(&emission(2));
        // Healthy replica: scrub is a no-op.
        assert!(sink.scrub_replica().is_empty());

        // Chop the replica's last record: pure lag.
        let bytes = std::fs::read(&replica).unwrap();
        let (one_record, _) = {
            let sink2 = DurableSink::create(&dir.join("probe.log")).unwrap();
            sink2.record_emission(&emission(1));
            drop(sink2);
            Journal::verify(&dir.join("probe.log")).unwrap()
        };
        let _ = one_record;
        // A record frame is identical for both appends of the same payload;
        // trim the replica back to half its records by byte length of the
        // primary's first append.
        let first_len = std::fs::metadata(dir.join("probe.log")).unwrap().len();
        std::fs::write(&replica, &bytes[..first_len as usize]).unwrap();
        let defects = sink.scrub_replica();
        assert!(
            defects.iter().any(|d| matches!(d, Defect::ReplicaLag { missing: 1, .. })),
            "{defects:?}"
        );
        assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&replica).unwrap());

        // Flip a bit mid-replica: divergence, repaired.
        let mut bytes = std::fs::read(&replica).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&replica, &bytes).unwrap();
        let defects = sink.scrub_replica();
        assert!(
            defects.iter().any(|d| matches!(d, Defect::ReplicaDiverged { .. })),
            "{defects:?}"
        );
        assert!(
            defects.iter().any(|d| matches!(d, Defect::ScrubRepaired { .. })),
            "{defects:?}"
        );
        assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&replica).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fence_stamp_round_trips_and_stale_writer_is_refused_bytes_untouched() {
        let dir = scratch("fence");
        let path = dir.join("shard-0.log");
        let authority = Arc::new(AtomicU64::new(1));
        let sink = DurableSink::create(&path).unwrap();
        sink.set_fence(1, Arc::clone(&authority));
        let admit = ChunkAdmit { tick: 2, tenant: "amber".into(), seq: 0, cost: 4 };
        sink.record_admit(&admit);
        assert!(sink.take_error().is_none());
        assert_eq!(sink.fence_token(), Some(1));
        let committed = std::fs::read(&path).unwrap();

        // The coordinator fences incarnation 1 and hands the journal to a
        // successor; the resurrected stale writer's append is refused with
        // a typed error and the bytes on disk do not move.
        authority.store(2, Ordering::SeqCst);
        sink.record_admit(&ChunkAdmit { tick: 9, tenant: "amber".into(), seq: 1, cost: 4 });
        let err = sink.take_error().expect("stale append must latch");
        assert!(
            matches!(err, DurableError::Fenced { held: 1, current: 2, .. }),
            "{err:?}"
        );
        assert_eq!(std::fs::read(&path).unwrap(), committed, "journal bytes moved");

        // Recovery replays exactly the valid incarnation's records and
        // surfaces the stamp.
        let (run, defects) = recover_run(&path).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert_eq!(run.fence_token, Some(1));
        assert_eq!(run.admits, vec![admit]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fence_stamp_ships_to_the_replica() {
        let dir = scratch("fence-repl");
        let path = dir.join("run.log");
        let replica = dir.join("run.replica.log");
        let sink = DurableSink::create_replicated(&path, &replica).unwrap();
        sink.set_fence(3, Arc::new(AtomicU64::new(3)));
        sink.record_emission(&emission(1));
        assert!(sink.take_error().is_none());
        assert!(sink.take_replica_error().is_none());
        assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&replica).unwrap());
        let (run, _) = recover_run(&replica).unwrap();
        assert_eq!(run.fence_token, Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durability_transitions_round_trip() {
        let dir = scratch("durability-codec");
        let path = dir.join("run.log");
        {
            let mut j = Journal::create(&path).unwrap();
            let mut enc = Enc::new();
            enc.u64(7)
                .u8(durability_code(DurabilityLevel::ReplicaOnly))
                .u8(durability_code(DurabilityLevel::Durable));
            j.append(REC_DURABILITY, 0, &enc.into_bytes()).unwrap();
        }
        let (run, defects) = recover_run(&path).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert_eq!(
            run.durability_transitions,
            vec![(7, DurabilityLevel::ReplicaOnly, DurabilityLevel::Durable)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quiet_gauged_sink_is_byte_identical_to_the_default_sink() {
        use emoleak_durable::{FaultPlan, FaultVfs};
        let dir = scratch("quiet-gauge");
        let plain = dir.join("plain.log");
        let gauged = dir.join("gauged.log");
        let a = DurableSink::create(&plain).unwrap();
        let b = DurableSink::create_with(
            &gauged,
            Arc::new(FaultVfs::new(FaultPlan::quiet(42))),
            Some(DiskGaugeConfig::default()),
        )
        .unwrap();
        for sink in [&a, &b] {
            sink.record_emission(&emission(1));
            sink.record_shed(3, "amber", 2, 0);
            sink.finish(1, InferenceLevel::Classical);
            assert!(sink.take_error().is_none());
        }
        assert_eq!(std::fs::read(&plain).unwrap(), std::fs::read(&gauged).unwrap());
        assert_eq!(b.durability_level(), Some(DurabilityLevel::Durable));
        assert_eq!(b.unjournaled(), 0);
        assert!(b.take_durability_transitions().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gauged_sink_degrades_under_stalls_and_climbs_back_without_latching() {
        use emoleak_durable::{FaultPlan, FaultVfs};
        let dir = scratch("gauge-walk");
        let path = dir.join("run.log");
        // Every fsync stalls 9 ticks (≥ stall_miss), so appends at the
        // Durable rung are misses; at ReplicaOnly (no replica configured)
        // no I/O happens, the probes run clean, and the gauge climbs back —
        // a deterministic degrade/recover oscillation.
        let plan = FaultPlan {
            stall_every: 1,
            stall_ticks: 9,
            stall_budget: u64::MAX,
            ..FaultPlan::quiet(7)
        };
        let gauge = DiskGaugeConfig {
            degrade_after: 2,
            recover_after: 2,
            cooldown: 0,
            low_water: 0,
            refuse_water: 0,
            stall_miss: 5,
        };
        let sink =
            DurableSink::create_with(&path, Arc::new(FaultVfs::new(plan)), Some(gauge)).unwrap();
        for region in 1..=10 {
            sink.record_emission(&emission(region));
        }
        assert!(sink.take_error().is_none(), "the gauge must absorb faults, not latch");
        assert!(sink.unjournaled() > 0, "ReplicaOnly appends without a replica are unjournaled");
        let transitions = sink.take_durability_transitions();
        assert!(
            transitions
                .iter()
                .any(|(_, from, to)| *from == DurabilityLevel::Durable
                    && *to == DurabilityLevel::ReplicaOnly),
            "{transitions:?}"
        );
        assert!(
            transitions
                .iter()
                .any(|(_, from, to)| *from == DurabilityLevel::ReplicaOnly
                    && *to == DurabilityLevel::Durable),
            "{transitions:?}"
        );
        // The climb transitions had a working primary to land in, so
        // recovery sees them.
        let (run, _) = recover_run(&path).unwrap();
        assert!(
            run.durability_transitions
                .iter()
                .any(|(_, _, to)| *to == DurabilityLevel::Durable),
            "{:?}",
            run.durability_transitions
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_pins_the_gauge_at_refuse_writes() {
        use emoleak_durable::{FaultPlan, FaultVfs};
        let dir = scratch("gauge-enospc");
        let path = dir.join("run.log");
        let plan = FaultPlan { byte_budget: 256, ..FaultPlan::quiet(11) };
        let gauge = DiskGaugeConfig {
            low_water: 70,
            refuse_water: 64,
            ..DiskGaugeConfig::default()
        };
        let sink =
            DurableSink::create_with(&path, Arc::new(FaultVfs::new(plan)), Some(gauge)).unwrap();
        for region in 1..=20 {
            sink.record_emission(&emission(region));
        }
        assert_eq!(sink.durability_level(), Some(DurabilityLevel::RefuseWrites));
        assert!(sink.take_error().is_none());
        assert!(sink.unjournaled() > 0);
        // Monotone under sustained pressure: the transition history only
        // ever worsens.
        let transitions = sink.take_durability_transitions();
        assert!(!transitions.is_empty());
        for (_, from, to) in &transitions {
            assert!(to > from, "improved under a full disk: {from} -> {to}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sink_latches_failure_instead_of_blocking_classification() {
        let dir = scratch("latch");
        let path = dir.join("run.log");
        let sink = DurableSink::create(&path).unwrap();
        sink.record_emission(&emission(1));
        // Replace the journal file with a directory so the next fsync-ed
        // append fails at the OS level.
        std::fs::remove_file(&path).unwrap();
        std::fs::create_dir(&path).unwrap();
        sink.record_emission(&emission(2));
        sink.record_emission(&emission(3));
        let err = sink.take_error();
        assert!(
            matches!(err, Some(DurableError::Io { .. })) || err.is_none(),
            "either the OS surfaces the swap or appends keep landing on the \
             open handle; a panic is the only wrong answer: {err:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
