//! Durable verdict journaling for the streaming service.
//!
//! A long-lived capture service is routinely killed — by the OS, a battery
//! manager, or a chaos harness. [`DurableSink`] writes every committed
//! [`RegionEmission`] and every degradation-ladder [`Transition`] to a
//! write-ahead journal (`emoleak-durable`) *at the moment it commits*, so a
//! kill loses at most the region being classified. [`recover_run`] replays
//! a journal — including one torn by a kill mid-append — back into typed
//! emissions and transitions.
//!
//! Journaling happens on the classify worker thread, where an `Err` has no
//! caller to land in; the sink therefore latches its first failure and
//! stops journaling, and [`DurableSink::take_error`] surfaces the failure
//! after the run. Classification itself never blocks on a broken disk.

use crate::ladder::Transition;
use crate::service::RegionEmission;
use emoleak_core::admission::FleetState;
use emoleak_core::online::{InferenceLevel, Verdict};
use emoleak_durable::{Dec, Defect, DurableError, Enc, Journal, WireError};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Journal record kind: one committed region emission.
pub const REC_EMISSION: u8 = 1;
/// Journal record kind: one degradation-ladder transition.
pub const REC_TRANSITION: u8 = 2;
/// Journal record kind: end-of-run summary (its presence marks a run that
/// shut down cleanly rather than being killed).
pub const REC_RUN_SUMMARY: u8 = 3;
/// Journal record kind: one fleet-breaker state transition.
pub const REC_FLEET_TRANSITION: u8 = 4;
/// Journal record kind: one CoDel load shed.
pub const REC_LOAD_SHED: u8 = 5;
/// Journal record kind: one periodic shard admission ledger snapshot.
pub const REC_SHARD_LEDGER: u8 = 6;

/// One snapshot of a shard's admission counters, journaled periodically so
/// a fleet coordinator can reconcile a crash-killed shard: the last ledger
/// plus the journaled sheds after it bound exactly how many routed chunks
/// the shard can account for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerRecord {
    /// The logical tick the snapshot was taken at.
    pub tick: u64,
    /// Chunks offered to the shard so far.
    pub offered: u64,
    /// Chunks served so far.
    pub served: u64,
    /// Chunks rejected at the front door so far.
    pub rejected: u64,
    /// Chunks CoDel shed so far.
    pub shed: u64,
    /// Chunks queued at snapshot time.
    pub queued: u64,
    /// Chunks evacuated to other shards so far.
    pub migrated: u64,
}

fn fleet_code(state: FleetState) -> u8 {
    FleetState::ALL.iter().position(|s| *s == state).map(|i| i as u8).unwrap_or(u8::MAX)
}

fn fleet_from(code: u8, offset: u64) -> Result<FleetState, WireError> {
    FleetState::ALL.get(usize::from(code)).copied().ok_or_else(|| WireError {
        offset,
        detail: format!("unknown fleet state code {code}"),
    })
}

fn level_code(level: InferenceLevel) -> u8 {
    InferenceLevel::ALL
        .iter()
        .position(|l| *l == level)
        .map(|i| i as u8)
        .unwrap_or(u8::MAX)
}

fn level_from(code: u8, offset: u64) -> Result<InferenceLevel, WireError> {
    InferenceLevel::ALL.get(usize::from(code)).copied().ok_or_else(|| WireError {
        offset,
        detail: format!("unknown inference level code {code}"),
    })
}

fn encode_emission(e: &RegionEmission) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u64(e.window as u64)
        .u64(e.start as u64)
        .u64(e.end as u64)
        .u64(e.truth as u64)
        .u8(level_code(e.verdict.level))
        .u8(u8::from(e.verdict.is_speech))
        .u8(u8::from(e.verdict.label.is_some()))
        .u64(e.verdict.label.unwrap_or(0) as u64)
        .u8(u8::from(e.deadline_missed))
        .u64(e.latency.as_nanos() as u64);
    enc.into_bytes()
}

fn decode_emission(region: u64, data: &[u8]) -> Result<RegionEmission, WireError> {
    let mut dec = Dec::new(data);
    let window = dec.u64()? as usize;
    let start = dec.u64()? as usize;
    let end = dec.u64()? as usize;
    let truth = dec.u64()? as usize;
    let level_at = dec.offset();
    let level = level_from(dec.u8()?, level_at)?;
    let is_speech = dec.u8()? != 0;
    let has_label = dec.u8()? != 0;
    let label_raw = dec.u64()? as usize;
    let deadline_missed = dec.u8()? != 0;
    let latency = Duration::from_nanos(dec.u64()?);
    dec.finish()?;
    Ok(RegionEmission {
        region,
        window,
        start,
        end,
        truth,
        verdict: Verdict { level, label: has_label.then_some(label_raw), is_speech },
        deadline_missed,
        latency,
    })
}

fn encode_transition(region: u64, t: Transition) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u64(region).u8(level_code(t.from)).u8(level_code(t.to));
    enc.into_bytes()
}

struct SinkInner {
    journal: Journal,
    seq: u64,
    error: Option<DurableError>,
}

/// A thread-safe handle journaling service events as they commit. Cloning
/// shares the underlying journal.
#[derive(Clone)]
pub struct DurableSink {
    inner: Arc<Mutex<SinkInner>>,
}

impl core::fmt::Debug for DurableSink {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("DurableSink")
            .field("path", &inner.journal.path())
            .field("seq", &inner.seq)
            .field("error", &inner.error)
            .finish()
    }
}

impl DurableSink {
    /// Creates a fresh journal at `path` (truncating an existing one — each
    /// service run is its own journal).
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] when the journal cannot be created.
    pub fn create(path: &Path) -> Result<DurableSink, DurableError> {
        let journal = Journal::create(path)?;
        Ok(DurableSink { inner: Arc::new(Mutex::new(SinkInner { journal, seq: 0, error: None })) })
    }

    fn append(&self, kind: u8, data: &[u8]) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.error.is_some() {
            return; // latched: first failure wins, journaling stops
        }
        let seq = inner.seq;
        if let Err(e) = inner.journal.append(kind, seq, data) {
            inner.error = Some(e);
        } else {
            inner.seq += 1;
        }
    }

    /// Journals one committed region emission (append + fsync).
    pub fn record_emission(&self, emission: &RegionEmission) {
        self.append(REC_EMISSION, &encode_emission(emission));
    }

    /// Journals one degradation-ladder transition, tagged with the region
    /// counter it fired at.
    pub fn record_transition(&self, region: u64, transition: Transition) {
        self.append(REC_TRANSITION, &encode_transition(region, transition));
    }

    /// Journals one fleet-breaker transition at logical tick `tick`.
    pub fn record_fleet_transition(&self, tick: u64, from: FleetState, to: FleetState) {
        let mut enc = Enc::new();
        enc.u64(tick).u8(fleet_code(from)).u8(fleet_code(to));
        self.append(REC_FLEET_TRANSITION, &enc.into_bytes());
    }

    /// Journals one CoDel load shed: `tenant`'s item, queued for
    /// `sojourn` ticks, dropped at tick `tick`.
    pub fn record_shed(&self, tick: u64, tenant: &str, sojourn: u64) {
        let mut enc = Enc::new();
        enc.u64(tick).str(tenant).u64(sojourn);
        self.append(REC_LOAD_SHED, &enc.into_bytes());
    }

    /// Journals one shard admission-ledger snapshot.
    pub fn record_ledger(&self, ledger: &LedgerRecord) {
        let mut enc = Enc::new();
        enc.u64(ledger.tick)
            .u64(ledger.offered)
            .u64(ledger.served)
            .u64(ledger.rejected)
            .u64(ledger.shed)
            .u64(ledger.queued)
            .u64(ledger.migrated);
        self.append(REC_SHARD_LEDGER, &enc.into_bytes());
    }

    /// Journals the end-of-run summary. A journal ending without one was
    /// killed mid-run.
    pub fn finish(&self, regions: u64, final_level: InferenceLevel) {
        let mut enc = Enc::new();
        enc.u64(regions).u8(level_code(final_level));
        self.append(REC_RUN_SUMMARY, &enc.into_bytes());
    }

    /// The first journaling failure, if any (taking it resets the latch but
    /// journaling does not resume for this run).
    pub fn take_error(&self) -> Option<DurableError> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).error.take()
    }
}

/// A service run replayed from its journal.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredRun {
    /// Committed emissions, in commit order (region counters are 1-based
    /// and contiguous).
    pub emissions: Vec<RegionEmission>,
    /// Committed ladder transitions as `(region, transition)` pairs.
    pub transitions: Vec<(u64, Transition)>,
    /// Committed fleet-breaker transitions as `(tick, from, to)` triples.
    pub fleet_transitions: Vec<(u64, FleetState, FleetState)>,
    /// Committed CoDel sheds as `(tick, tenant, sojourn)` triples.
    pub sheds: Vec<(u64, String, u64)>,
    /// Committed shard admission-ledger snapshots, in commit order.
    pub ledgers: Vec<LedgerRecord>,
    /// Whether the run wrote its end-of-run summary (`false` = killed).
    pub complete: bool,
}

/// Replays a service journal, repairing a torn tail if the writer was
/// killed mid-append.
///
/// # Errors
///
/// [`DurableError::Format`]/[`DurableError::Version`] for a file that is
/// not (or is a future) journal, [`DurableError::Corrupt`] for a record
/// whose payload passes the CRC but does not decode — that is real damage,
/// never served silently.
pub fn recover_run(path: &Path) -> Result<(RecoveredRun, Vec<Defect>), DurableError> {
    let (_journal, records, defects) = Journal::open(path)?;
    let corrupt = |e: WireError| DurableError::Corrupt {
        path: path.display().to_string(),
        offset: e.offset,
        detail: e.detail,
    };
    let mut run = RecoveredRun {
        emissions: Vec::new(),
        transitions: Vec::new(),
        fleet_transitions: Vec::new(),
        sheds: Vec::new(),
        ledgers: Vec::new(),
        complete: false,
    };
    for record in records {
        match record.kind {
            REC_EMISSION => {
                let region = run.emissions.len() as u64 + 1;
                run.emissions.push(decode_emission(region, &record.data).map_err(corrupt)?);
            }
            REC_TRANSITION => {
                let mut dec = Dec::new(&record.data);
                let region = dec.u64().map_err(corrupt)?;
                let from_at = dec.offset();
                let from = dec.u8().map_err(corrupt).and_then(|c| {
                    level_from(c, from_at).map_err(corrupt)
                })?;
                let to_at = dec.offset();
                let to =
                    dec.u8().map_err(corrupt).and_then(|c| level_from(c, to_at).map_err(corrupt))?;
                dec.finish().map_err(corrupt)?;
                run.transitions.push((region, Transition { from, to }));
            }
            REC_FLEET_TRANSITION => {
                let mut dec = Dec::new(&record.data);
                let tick = dec.u64().map_err(corrupt)?;
                let from_at = dec.offset();
                let from = dec.u8().map_err(corrupt).and_then(|c| {
                    fleet_from(c, from_at).map_err(corrupt)
                })?;
                let to_at = dec.offset();
                let to =
                    dec.u8().map_err(corrupt).and_then(|c| fleet_from(c, to_at).map_err(corrupt))?;
                dec.finish().map_err(corrupt)?;
                run.fleet_transitions.push((tick, from, to));
            }
            REC_LOAD_SHED => {
                let mut dec = Dec::new(&record.data);
                let tick = dec.u64().map_err(corrupt)?;
                let tenant = dec.str().map_err(corrupt)?;
                let sojourn = dec.u64().map_err(corrupt)?;
                dec.finish().map_err(corrupt)?;
                run.sheds.push((tick, tenant, sojourn));
            }
            REC_SHARD_LEDGER => {
                let mut dec = Dec::new(&record.data);
                let ledger = LedgerRecord {
                    tick: dec.u64().map_err(corrupt)?,
                    offered: dec.u64().map_err(corrupt)?,
                    served: dec.u64().map_err(corrupt)?,
                    rejected: dec.u64().map_err(corrupt)?,
                    shed: dec.u64().map_err(corrupt)?,
                    queued: dec.u64().map_err(corrupt)?,
                    migrated: dec.u64().map_err(corrupt)?,
                };
                dec.finish().map_err(corrupt)?;
                run.ledgers.push(ledger);
            }
            REC_RUN_SUMMARY => run.complete = true,
            other => {
                return Err(DurableError::Corrupt {
                    path: path.display().to_string(),
                    offset: 0,
                    detail: format!("unknown service record kind {other}"),
                })
            }
        }
    }
    Ok((run, defects))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "emoleak-sink-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn emission(region: u64) -> RegionEmission {
        RegionEmission {
            region,
            window: 3,
            start: 10,
            end: 250,
            truth: 2,
            verdict: Verdict {
                level: InferenceLevel::Classical,
                label: Some(5),
                is_speech: true,
            },
            deadline_missed: region.is_multiple_of(2),
            latency: Duration::from_micros(123 + region),
        }
    }

    #[test]
    fn emissions_and_transitions_round_trip() {
        let dir = scratch("roundtrip");
        let path = dir.join("run.log");
        let sink = DurableSink::create(&path).unwrap();
        sink.record_emission(&emission(1));
        sink.record_transition(
            1,
            Transition { from: InferenceLevel::Classical, to: InferenceLevel::EnergyOnly },
        );
        sink.record_emission(&emission(2));
        sink.finish(2, InferenceLevel::EnergyOnly);
        assert!(sink.take_error().is_none());

        let (run, defects) = recover_run(&path).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert!(run.complete);
        assert_eq!(run.emissions, vec![emission(1), emission(2)]);
        assert_eq!(
            run.transitions,
            vec![(1, Transition { from: InferenceLevel::Classical, to: InferenceLevel::EnergyOnly })]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fleet_events_round_trip() {
        let dir = scratch("fleet");
        let path = dir.join("run.log");
        let sink = DurableSink::create(&path).unwrap();
        sink.record_fleet_transition(17, FleetState::Healthy, FleetState::Degraded);
        sink.record_shed(21, "tenant-b", 9);
        sink.record_fleet_transition(40, FleetState::Degraded, FleetState::Healthy);
        sink.finish(0, InferenceLevel::Cnn);
        assert!(sink.take_error().is_none());

        let (run, defects) = recover_run(&path).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert!(run.complete);
        assert!(run.emissions.is_empty());
        assert_eq!(
            run.fleet_transitions,
            vec![
                (17, FleetState::Healthy, FleetState::Degraded),
                (40, FleetState::Degraded, FleetState::Healthy),
            ]
        );
        assert_eq!(run.sheds, vec![(21, "tenant-b".to_string(), 9)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_ledgers_round_trip() {
        let dir = scratch("ledger");
        let path = dir.join("run.log");
        let sink = DurableSink::create(&path).unwrap();
        let a = LedgerRecord {
            tick: 100,
            offered: 40,
            served: 25,
            rejected: 5,
            shed: 3,
            queued: 7,
            migrated: 0,
        };
        let b = LedgerRecord { tick: 200, offered: 80, served: 60, migrated: 7, ..a };
        sink.record_ledger(&a);
        sink.record_shed(150, "tenant-a", 12);
        sink.record_ledger(&b);
        assert!(sink.take_error().is_none());

        let (run, defects) = recover_run(&path).unwrap();
        assert!(defects.is_empty(), "{defects:?}");
        assert_eq!(run.ledgers, vec![a, b]);
        assert_eq!(run.sheds.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn none_label_round_trips() {
        let dir = scratch("shed");
        let path = dir.join("run.log");
        let sink = DurableSink::create(&path).unwrap();
        let shed = RegionEmission {
            verdict: Verdict { level: InferenceLevel::Shed, label: None, is_speech: false },
            ..emission(1)
        };
        sink.record_emission(&shed);
        let (run, _) = recover_run(&path).unwrap();
        assert_eq!(run.emissions, vec![shed]);
        assert!(!run.complete, "no summary record: the run was cut short");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_loses_only_the_last_record() {
        let dir = scratch("torn");
        let path = dir.join("run.log");
        let sink = DurableSink::create(&path).unwrap();
        sink.record_emission(&emission(1));
        sink.record_emission(&emission(2));
        drop(sink);
        // Chop the last record in half: a kill mid-append.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 20]).unwrap();

        let (run, defects) = recover_run(&path).unwrap();
        assert_eq!(run.emissions, vec![emission(1)]);
        assert_eq!(defects.len(), 1, "{defects:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sink_latches_failure_instead_of_blocking_classification() {
        let dir = scratch("latch");
        let path = dir.join("run.log");
        let sink = DurableSink::create(&path).unwrap();
        sink.record_emission(&emission(1));
        // Replace the journal file with a directory so the next fsync-ed
        // append fails at the OS level.
        std::fs::remove_file(&path).unwrap();
        std::fs::create_dir(&path).unwrap();
        sink.record_emission(&emission(2));
        sink.record_emission(&emission(3));
        let err = sink.take_error();
        assert!(
            matches!(err, Some(DurableError::Io { .. })) || err.is_none(),
            "either the OS surfaces the swap or appends keep landing on the \
             open handle; a panic is the only wrong answer: {err:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
