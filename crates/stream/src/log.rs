//! The service log: a structured record of everything the resilience
//! machinery did.
//!
//! Chaos assertions and operators both need to know *what the service did
//! to survive* — which rungs it degraded through, how often retries saved a
//! read, which workers panicked and were restarted. [`ServiceLog`] records
//! those as typed events ordered by a logical clock (the running region /
//! chunk counters), not wall-clock timestamps, so a clean-path run produces
//! a byte-identical log every time.

use crate::ladder::Transition;
use emoleak_core::admission::{DurabilityLevel, FleetState};
use emoleak_core::online::InferenceLevel;

/// One resilience event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceEvent {
    /// The ladder tripped one rung down after consecutive deadline misses.
    Degraded {
        /// Region counter when the breaker tripped.
        region: u64,
        /// The transition taken.
        transition: Transition,
    },
    /// The ladder climbed one rung back up after sustained headroom.
    Recovered {
        /// Region counter when recovery fired.
        region: u64,
        /// The transition taken.
        transition: Transition,
    },
    /// A transient source failure was retried into a success.
    SourceRecovered {
        /// Chunk counter at the affected read.
        chunk: u64,
        /// Retries the read needed.
        retries: u32,
    },
    /// A worker stage panicked and was restarted.
    WorkerPanicked {
        /// Stage name.
        stage: &'static str,
        /// Restarts of this stage so far (this one included).
        restarts: u32,
        /// The panic message, if it carried one.
        message: String,
    },
    /// A worker stopped heartbeating and was abandoned + replaced.
    WatchdogFired {
        /// Stage name.
        stage: &'static str,
        /// Restarts of this stage so far (this one included).
        restarts: u32,
    },
    /// A full queue evicted its oldest item (`DropOldest` policy).
    ChunkDropped {
        /// Total evictions on that queue so far.
        total: u64,
    },
    /// The fleet breaker moved the whole fleet to a new overload state.
    FleetTransition {
        /// Logical tick (admission-layer clock) of the transition.
        tick: u64,
        /// The state before.
        from: FleetState,
        /// The state after.
        to: FleetState,
    },
    /// The admission layer refused a request or session at the front door.
    AdmissionRejected {
        /// Logical tick of the refusal.
        tick: u64,
        /// The refused tenant.
        tenant: String,
        /// The stable refusal tag (see
        /// [`AdmissionError::tag`](emoleak_core::admission::AdmissionError::tag)).
        reason: String,
    },
    /// A shard's disk gauge moved the shard to a new durability level.
    DurabilityTransition {
        /// Logical tick (admission-layer clock) of the transition.
        tick: u64,
        /// The shard whose storage moved.
        shard: u32,
        /// The durability level before.
        from: DurabilityLevel,
        /// The durability level after.
        to: DurabilityLevel,
    },
    /// CoDel shed an already-admitted item whose queue sojourn exceeded
    /// the target for a sustained interval.
    LoadShed {
        /// Logical tick of the shed.
        tick: u64,
        /// The tenant whose item was shed.
        tenant: String,
        /// How long the item had been queued, ticks.
        sojourn: u64,
    },
}

/// An append-only, deterministic event log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceLog {
    events: Vec<ServiceEvent>,
}

impl ServiceLog {
    /// An empty log.
    pub fn new() -> Self {
        ServiceLog::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: ServiceEvent) {
        self.events.push(event);
    }

    /// All events, in order.
    pub fn events(&self) -> &[ServiceEvent] {
        &self.events
    }

    /// The ladder transitions, in order.
    pub fn transitions(&self) -> Vec<Transition> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ServiceEvent::Degraded { transition, .. }
                | ServiceEvent::Recovered { transition, .. } => Some(*transition),
                _ => None,
            })
            .collect()
    }

    /// The lowest (worst) rung the ladder ever reached, if it ever moved.
    pub fn worst_level(&self) -> Option<InferenceLevel> {
        self.transitions().iter().map(|t| t.to).max()
    }

    /// Count of worker panics absorbed.
    pub fn panics(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ServiceEvent::WorkerPanicked { .. }))
            .count()
    }

    /// Count of watchdog-driven worker replacements.
    pub fn watchdog_fires(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ServiceEvent::WatchdogFired { .. }))
            .count()
    }

    /// Count of reads saved by retry.
    pub fn source_recoveries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ServiceEvent::SourceRecovered { .. }))
            .count()
    }

    /// The fleet-state transitions, in order, as `(tick, from, to)`.
    pub fn fleet_transitions(&self) -> Vec<(u64, FleetState, FleetState)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ServiceEvent::FleetTransition { tick, from, to } => Some((*tick, *from, *to)),
                _ => None,
            })
            .collect()
    }

    /// The worst fleet state the breaker ever reached, if it ever moved.
    pub fn worst_fleet_state(&self) -> Option<FleetState> {
        self.fleet_transitions().iter().map(|(_, _, to)| *to).max()
    }

    /// The durability transitions, in order, as `(tick, shard, from, to)`.
    pub fn durability_transitions(&self) -> Vec<(u64, u32, DurabilityLevel, DurabilityLevel)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ServiceEvent::DurabilityTransition { tick, shard, from, to } => {
                    Some((*tick, *shard, *from, *to))
                }
                _ => None,
            })
            .collect()
    }

    /// The worst durability level any shard ever reached, if one moved.
    pub fn worst_durability(&self) -> Option<DurabilityLevel> {
        self.durability_transitions().iter().map(|(_, _, _, to)| *to).max()
    }

    /// Count of admission refusals.
    pub fn rejections(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ServiceEvent::AdmissionRejected { .. }))
            .count()
    }

    /// Count of CoDel sheds.
    pub fn sheds(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, ServiceEvent::LoadShed { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use InferenceLevel::*;

    #[test]
    fn log_summarizes_by_event_kind() {
        let mut log = ServiceLog::new();
        log.push(ServiceEvent::SourceRecovered { chunk: 3, retries: 2 });
        log.push(ServiceEvent::Degraded {
            region: 10,
            transition: Transition { from: Cnn, to: Classical },
        });
        log.push(ServiceEvent::Degraded {
            region: 14,
            transition: Transition { from: Classical, to: EnergyOnly },
        });
        log.push(ServiceEvent::WorkerPanicked {
            stage: "extract",
            restarts: 1,
            message: "boom".into(),
        });
        log.push(ServiceEvent::Recovered {
            region: 40,
            transition: Transition { from: EnergyOnly, to: Classical },
        });
        assert_eq!(log.events().len(), 5);
        assert_eq!(log.transitions().len(), 3);
        assert_eq!(log.worst_level(), Some(EnergyOnly));
        assert_eq!(log.panics(), 1);
        assert_eq!(log.watchdog_fires(), 0);
        assert_eq!(log.source_recoveries(), 1);
    }

    #[test]
    fn untouched_log_reports_nothing() {
        let log = ServiceLog::new();
        assert!(log.events().is_empty());
        assert_eq!(log.worst_level(), None);
        assert_eq!(log.transitions(), Vec::new());
        assert_eq!(log.worst_fleet_state(), None);
        assert_eq!(log.worst_durability(), None);
        assert_eq!(log.rejections(), 0);
        assert_eq!(log.sheds(), 0);
    }

    #[test]
    fn fleet_events_summarize_separately_from_session_events() {
        let mut log = ServiceLog::new();
        log.push(ServiceEvent::FleetTransition {
            tick: 10,
            from: FleetState::Healthy,
            to: FleetState::Degraded,
        });
        log.push(ServiceEvent::AdmissionRejected {
            tick: 11,
            tenant: "t1".into(),
            reason: "rate-limited".into(),
        });
        log.push(ServiceEvent::LoadShed { tick: 12, tenant: "t2".into(), sojourn: 9 });
        log.push(ServiceEvent::DurabilityTransition {
            tick: 20,
            shard: 1,
            from: DurabilityLevel::Durable,
            to: DurabilityLevel::ReplicaOnly,
        });
        log.push(ServiceEvent::FleetTransition {
            tick: 30,
            from: FleetState::Degraded,
            to: FleetState::Saturated,
        });
        log.push(ServiceEvent::FleetTransition {
            tick: 90,
            from: FleetState::Saturated,
            to: FleetState::Degraded,
        });
        assert_eq!(
            log.fleet_transitions(),
            vec![
                (10, FleetState::Healthy, FleetState::Degraded),
                (30, FleetState::Degraded, FleetState::Saturated),
                (90, FleetState::Saturated, FleetState::Degraded),
            ]
        );
        assert_eq!(log.worst_fleet_state(), Some(FleetState::Saturated));
        assert_eq!(
            log.durability_transitions(),
            vec![(20, 1, DurabilityLevel::Durable, DurabilityLevel::ReplicaOnly)]
        );
        assert_eq!(log.worst_durability(), Some(DurabilityLevel::ReplicaOnly));
        assert_eq!(log.rejections(), 1);
        assert_eq!(log.sheds(), 1);
        // Fleet events do not leak into the per-session ladder summaries.
        assert_eq!(log.transitions(), Vec::new());
        assert_eq!(log.worst_level(), None);
    }
}
