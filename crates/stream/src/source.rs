//! Sample sources: where the online service's accelerometer chunks come
//! from.
//!
//! The service is source-agnostic — it consumes any [`SampleSource`]. The
//! repo ships replay sources backed by the phone simulator
//! ([`ReplaySource`]), including fault-injected recordings, plus a
//! [`FlakySource`] decorator that makes any source fail transiently with a
//! seeded probability (the stream-level counterpart of
//! [`emoleak_phone::FlakyReplay`]).

use emoleak_core::online::RecordedCampaign;
use emoleak_phone::replay::{ChunkValidator, ReplayChunk};
use emoleak_phone::session::{LabeledSpan, SessionTrace};
use emoleak_phone::AccelTrace;

/// The chunk type the service consumes: a [`ReplayChunk`] whose label is
/// the ground-truth class index (carried along for scoring only — the
/// service never uses it for inference).
pub type SourceChunk = ReplayChunk<usize>;

/// Why a source read failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// Retry with backoff: the read may succeed next time, without loss
    /// (sources are at-least-once across transient failures).
    Transient(String),
    /// The stream is dead; the service shuts down with an error.
    Fatal(String),
}

impl core::fmt::Display for SourceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SourceError::Transient(why) => write!(f, "transient source error: {why}"),
            SourceError::Fatal(why) => write!(f, "fatal source error: {why}"),
        }
    }
}

impl std::error::Error for SourceError {}

/// A pull-based feed of accelerometer chunks.
///
/// `Ok(None)` means end of stream (delivered reliably — a source must not
/// fail the end-of-stream read). A [`SourceError::Transient`] read must be
/// lossless: the service retries it with backoff and expects the chunk it
/// would have gotten.
pub trait SampleSource: Send {
    /// Pulls the next chunk.
    ///
    /// # Errors
    ///
    /// [`SourceError::Transient`] for retryable failures,
    /// [`SourceError::Fatal`] when the stream cannot continue.
    fn next_chunk(&mut self) -> Result<Option<SourceChunk>, SourceError>;
}

impl<S: SampleSource + ?Sized> SampleSource for Box<S> {
    fn next_chunk(&mut self) -> Result<Option<SourceChunk>, SourceError> {
        (**self).next_chunk()
    }
}

/// Decorates any source with hostile-input screening: every delivered chunk
/// passes through a [`ChunkValidator`] (NaN/Inf samples, non-monotonic or
/// duplicate timestamps, reopened windows), and the first defect kills the
/// stream with [`SourceError::Fatal`].
///
/// Fatal, not transient, on purpose: a poisoned or replayed stream is an
/// integrity failure, and retrying would hand the attacker-controlled chunk
/// straight back to the retry loop. Transient errors and end-of-stream pass
/// through unvalidated — there is no chunk to screen.
#[derive(Debug)]
pub struct ValidatingSource<S> {
    inner: S,
    validator: ChunkValidator,
}

impl<S: SampleSource> ValidatingSource<S> {
    /// Wraps `inner` with a fresh validator.
    pub fn new(inner: S) -> Self {
        ValidatingSource { inner, validator: ChunkValidator::default() }
    }
}

impl<S: SampleSource> SampleSource for ValidatingSource<S> {
    fn next_chunk(&mut self) -> Result<Option<SourceChunk>, SourceError> {
        match self.inner.next_chunk() {
            Ok(Some(chunk)) => match self.validator.check(&chunk) {
                Ok(()) => Ok(Some(chunk)),
                Err(defect) => {
                    Err(SourceError::Fatal(format!("hostile input rejected: {defect}")))
                }
            },
            other => other,
        }
    }
}

/// Replays a recorded campaign or session as a clean chunk stream.
///
/// Chunking matches [`SessionTrace::chunks`]: windows in playback order,
/// `chunk_len`-sample chunks, one empty flagged chunk for a window emptied
/// by fault injection. Draining a `ReplaySource` therefore visits exactly
/// the windows the batch pipeline iterates.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    chunks: std::vec::IntoIter<SourceChunk>,
}

impl ReplaySource {
    /// Replays a labeled session trace.
    pub fn from_session(session: &SessionTrace<usize>, chunk_len: usize) -> Self {
        ReplaySource { chunks: session.chunks(chunk_len).collect::<Vec<_>>().into_iter() }
    }

    /// Replays the stage-1 output of a batch campaign
    /// ([`emoleak_core::AttackScenario::record_windows`]) — the source used
    /// to prove streaming/batch equivalence, since both sides then see the
    /// very same windows.
    pub fn from_campaign(campaign: &RecordedCampaign, chunk_len: usize) -> Self {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for (window, _truth, label) in &campaign.windows {
            let start = samples.len();
            samples.extend_from_slice(window);
            labels.push(LabeledSpan { start, end: samples.len(), label: *label });
        }
        let session =
            SessionTrace { trace: AccelTrace { samples, fs: campaign.fs }, labels };
        Self::from_session(&session, chunk_len)
    }

    /// Chunks remaining to deliver.
    pub fn remaining(&self) -> usize {
        self.chunks.len()
    }
}

impl SampleSource for ReplaySource {
    fn next_chunk(&mut self) -> Result<Option<SourceChunk>, SourceError> {
        Ok(self.chunks.next())
    }
}

/// Decorates any source with seeded transient failures (and optionally a
/// single fatal failure), for retry and chaos testing.
///
/// Failure draws are a pure function of `(seed, attempt_index)`, so a chaos
/// run is reproducible end to end. Transient failures are lossless — the
/// inner source is only pulled on success paths.
#[derive(Debug)]
pub struct FlakySource<S> {
    inner: S,
    fail_rate: f64,
    seed: u64,
    draws: u64,
    /// Fail fatally on the n-th read (0-based), if set.
    fatal_at: Option<u64>,
    reads: u64,
}

impl<S: SampleSource> FlakySource<S> {
    /// Wraps `inner`; each read fails transiently with probability
    /// `fail_rate` (clamped to `[0, 0.95]` so liveness stays falsifiable).
    pub fn new(inner: S, fail_rate: f64, seed: u64) -> Self {
        FlakySource {
            inner,
            fail_rate: fail_rate.clamp(0.0, 0.95),
            seed,
            draws: 0,
            fatal_at: None,
            reads: 0,
        }
    }

    /// Makes the `n`-th read (0-based, counting successful and transiently
    /// failed reads alike) fail fatally.
    #[must_use]
    pub fn with_fatal_at(mut self, n: u64) -> Self {
        self.fatal_at = Some(n);
        self
    }
}

impl<S: SampleSource> SampleSource for FlakySource<S> {
    fn next_chunk(&mut self) -> Result<Option<SourceChunk>, SourceError> {
        let read = self.reads;
        self.reads += 1;
        if self.fatal_at == Some(read) {
            return Err(SourceError::Fatal("injected fatal source failure".into()));
        }
        let mut stream = emoleak_exec::derive_seed(self.seed, self.draws);
        self.draws += 1;
        let uniform =
            (emoleak_exec::splitmix64(&mut stream) >> 11) as f64 / (1u64 << 53) as f64;
        if uniform < self.fail_rate {
            return Err(SourceError::Transient("injected sensor read failure".into()));
        }
        self.inner.next_chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> SessionTrace<usize> {
        let samples: Vec<f64> = (0..40).map(f64::from).collect();
        SessionTrace {
            trace: AccelTrace { samples, fs: 420.0 },
            labels: vec![
                LabeledSpan { start: 0, end: 17, label: 2 },
                LabeledSpan { start: 17, end: 40, label: 5 },
            ],
        }
    }

    fn drain(source: &mut dyn SampleSource) -> (Vec<SourceChunk>, u64) {
        let mut out = Vec::new();
        let mut transients = 0;
        loop {
            match source.next_chunk() {
                Ok(Some(c)) => out.push(c),
                Ok(None) => return (out, transients),
                Err(SourceError::Transient(_)) => transients += 1,
                Err(SourceError::Fatal(e)) => panic!("unexpected fatal: {e}"),
            }
        }
    }

    #[test]
    fn replay_source_delivers_the_whole_session() {
        let st = session();
        let mut src = ReplaySource::from_session(&st, 8);
        assert_eq!(src.remaining(), 3 + 3);
        let (chunks, _) = drain(&mut src);
        let rebuilt: Vec<f64> = chunks
            .iter()
            .filter(|c| c.window == 1)
            .flat_map(|c| c.samples.iter().copied())
            .collect();
        assert_eq!(rebuilt, st.window(1));
        // End of stream is stable.
        assert_eq!(src.next_chunk(), Ok(None));
        assert_eq!(src.next_chunk(), Ok(None));
    }

    #[test]
    fn flaky_source_is_lossless_and_seed_deterministic() {
        let st = session();
        let (clean, _) = drain(&mut ReplaySource::from_session(&st, 8));
        let run = |seed| {
            let mut src = FlakySource::new(ReplaySource::from_session(&st, 8), 0.6, seed);
            drain(&mut src)
        };
        let (a, ta) = run(11);
        assert_eq!(a, clean, "transient failures must not lose chunks");
        assert!(ta > 0);
        let (b, tb) = run(11);
        assert_eq!((a, ta), (b, tb), "failure pattern is a function of the seed");
        let (_, tc) = run(12);
        assert_ne!(ta, tc, "different seeds give different failure patterns");
    }

    #[test]
    fn validating_source_passes_honest_streams_untouched() {
        let st = session();
        let (clean, _) = drain(&mut ReplaySource::from_session(&st, 8));
        let mut src = ValidatingSource::new(ReplaySource::from_session(&st, 8));
        let (screened, _) = drain(&mut src);
        assert_eq!(screened, clean);
        assert_eq!(src.next_chunk(), Ok(None));
    }

    #[test]
    fn validating_source_kills_poisoned_streams() {
        struct Poisoned(u64);
        impl SampleSource for Poisoned {
            fn next_chunk(&mut self) -> Result<Option<SourceChunk>, SourceError> {
                let read = self.0;
                self.0 += 1;
                let samples = if read == 1 { vec![f64::NAN] } else { vec![1.0, 2.0] };
                Ok(Some(ReplayChunk {
                    window: read as usize,
                    offset: 0,
                    samples,
                    label: 0,
                    last_in_window: true,
                }))
            }
        }
        let mut src = ValidatingSource::new(Poisoned(0));
        assert!(src.next_chunk().is_ok());
        match src.next_chunk() {
            Err(SourceError::Fatal(msg)) => {
                assert!(msg.contains("hostile input"), "{msg}");
                assert!(msg.contains("non-finite"), "{msg}");
            }
            other => panic!("poisoned chunk must be fatal, got {other:?}"),
        }
    }

    #[test]
    fn fatal_read_surfaces_as_fatal() {
        let st = session();
        let mut src =
            FlakySource::new(ReplaySource::from_session(&st, 8), 0.0, 1).with_fatal_at(2);
        assert!(src.next_chunk().is_ok());
        assert!(src.next_chunk().is_ok());
        assert!(matches!(src.next_chunk(), Err(SourceError::Fatal(_))));
    }
}
