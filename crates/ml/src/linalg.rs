//! Small dense linear-algebra helpers shared by the classical classifiers.

/// Dot product.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Numerically stable softmax (in place).
pub fn softmax_inplace(z: &mut [f64]) {
    if z.is_empty() {
        return;
    }
    let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in z.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in z.iter_mut() {
        *v /= sum;
    }
}

/// Index of the maximum element; 0 for an empty slice.
#[inline]
pub fn argmax(z: &[f64]) -> usize {
    z.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// The logistic sigmoid `1 / (1 + e^{-z})`, saturating safely.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut z = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut z);
        assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(z[2] > z[1] && z[1] > z[0]);
    }

    #[test]
    fn softmax_is_stable_for_huge_logits() {
        let mut z = vec![1000.0, 1001.0];
        softmax_inplace(&mut z);
        assert!(z.iter().all(|v| v.is_finite()));
        assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_picks_first_max() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn sigmoid_saturates_safely() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }
}
