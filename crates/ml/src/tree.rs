//! Information-gain decision trees (the base learner for LMT, random forest
//! and random-subspace ensembles).
//!
//! Numeric features only (the EmoLeak features all are), binary splits at
//! the midpoint between sorted neighbouring values, entropy-based gain.

use crate::{validate_fit_inputs, Classifier};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for growing a [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_split: usize,
    /// If `Some(k)`, only a random subset of `k` features is considered per
    /// split (random-forest style). `None` considers every feature.
    pub features_per_split: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 12, min_split: 4, features_per_split: None }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Class-probability distribution at the leaf.
        dist: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A single decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    config: TreeConfig,
    seed: u64,
    root: Option<Node>,
    num_classes: usize,
}

impl DecisionTree {
    /// Creates a tree with the given configuration and split-sampling seed.
    pub fn new(config: TreeConfig, seed: u64) -> Self {
        DecisionTree { config, seed, root: None, num_classes: 0 }
    }

    /// The leaf class distribution for a sample.
    ///
    /// # Panics
    ///
    /// Panics if called before fitting.
    pub fn predict_dist(&self, x: &[f64]) -> &[f64] {
        let mut node = self.root.as_ref().expect("tree is not fitted");
        loop {
            match node {
                Node::Leaf { dist } => return dist,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Number of leaves (diagnostic).
    pub fn num_leaves(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    fn grow<R: Rng + ?Sized>(
        &self,
        x: &[Vec<f64>],
        y: &[usize],
        indices: &[usize],
        depth: usize,
        rng: &mut R,
    ) -> Node {
        let dist = class_distribution(y, indices, self.num_classes);
        let ent = entropy(&dist);
        if depth >= self.config.max_depth
            || indices.len() < self.config.min_split
            || ent <= 1e-12
        {
            return Node::Leaf { dist };
        }
        let dim = x[0].len();
        let candidate_features: Vec<usize> = match self.config.features_per_split {
            Some(k) => {
                let mut all: Vec<usize> = (0..dim).collect();
                all.shuffle(rng);
                all.truncate(k.max(1).min(dim));
                all
            }
            None => (0..dim).collect(),
        };
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        for &f in &candidate_features {
            if let Some((gain, thr)) = best_split(x, y, indices, f, self.num_classes) {
                if best.is_none_or(|(g, _, _)| gain > g) {
                    best = Some((gain, f, thr));
                }
            }
        }
        // Note: a zero-gain split is still taken when the node is impure —
        // greedy gain is blind to XOR-style interactions where the payoff
        // only appears one level deeper. Termination is guaranteed because
        // both children are strictly smaller and depth is bounded.
        let Some((_gain, feature, threshold)) = best else {
            return Node::Leaf { dist };
        };
        let (li, ri): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x[i][feature] <= threshold);
        if li.is_empty() || ri.is_empty() {
            return Node::Leaf { dist };
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.grow(x, y, &li, depth + 1, rng)),
            right: Box::new(self.grow(x, y, &ri, depth + 1, rng)),
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], num_classes: usize) {
        validate_fit_inputs(x, y, num_classes);
        self.num_classes = num_classes;
        let indices: Vec<usize> = (0..x.len()).collect();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        self.root = Some(self.grow(x, y, &indices, 0, &mut rng));
    }

    fn predict(&self, x: &[f64]) -> usize {
        crate::linalg::argmax(self.predict_dist(x))
    }

    fn name(&self) -> &str {
        "DecisionTree"
    }
}

/// Normalized class distribution over `indices`.
pub(crate) fn class_distribution(y: &[usize], indices: &[usize], num_classes: usize) -> Vec<f64> {
    let mut dist = vec![0.0; num_classes];
    for &i in indices {
        dist[y[i]] += 1.0;
    }
    let total: f64 = dist.iter().sum();
    if total > 0.0 {
        for d in dist.iter_mut() {
            *d /= total;
        }
    }
    dist
}

fn entropy(dist: &[f64]) -> f64 {
    -dist
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f64>()
}

/// Best (gain, threshold) for one feature over `indices`, or `None` if the
/// feature is constant there.
fn best_split(
    x: &[Vec<f64>],
    y: &[usize],
    indices: &[usize],
    feature: usize,
    num_classes: usize,
) -> Option<(f64, f64)> {
    let mut order: Vec<usize> = indices.to_vec();
    order.sort_by(|&a, &b| x[a][feature].total_cmp(&x[b][feature]));
    let n = order.len() as f64;
    let parent = entropy(&class_distribution(y, indices, num_classes));
    // Incremental left/right class counts.
    let mut left = vec![0.0f64; num_classes];
    let mut right = vec![0.0f64; num_classes];
    for &i in &order {
        right[y[i]] += 1.0;
    }
    let mut best: Option<(f64, f64)> = None;
    for w in 0..order.len() - 1 {
        let i = order[w];
        left[y[i]] += 1.0;
        right[y[i]] -= 1.0;
        let v0 = x[i][feature];
        let v1 = x[order[w + 1]][feature];
        if v1 <= v0 {
            continue; // ties cannot split here
        }
        let nl = (w + 1) as f64;
        let nr = n - nl;
        let el = entropy(&normalize(&left, nl));
        let er = entropy(&normalize(&right, nr));
        let gain = parent - (nl / n) * el - (nr / n) * er;
        let thr = (v0 + v1) / 2.0;
        if best.is_none_or(|(g, _)| gain > g) {
            best = Some((gain, thr));
        }
    }
    best
}

fn normalize(counts: &[f64], total: f64) -> Vec<f64> {
    counts.iter().map(|c| c / total.max(1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            let jitter = i as f64 * 0.01;
            for &(a, b) in &[(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                x.push(vec![a + jitter, b - jitter]);
                y.push(usize::from((a > 0.5) != (b > 0.5)));
            }
        }
        (x, y)
    }

    #[test]
    fn learns_xor_exactly() {
        // XOR defeats linear models; a depth-2 tree nails it.
        let (x, y) = xor_data();
        let mut tree = DecisionTree::new(TreeConfig::default(), 0);
        tree.fit(&x, &y, 2);
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(tree.predict(xi), yi);
        }
    }

    #[test]
    fn depth_limit_caps_leaves() {
        let (x, y) = xor_data();
        let mut stump = DecisionTree::new(
            TreeConfig { max_depth: 1, ..Default::default() },
            0,
        );
        stump.fit(&x, &y, 2);
        assert!(stump.num_leaves() <= 2);
    }

    #[test]
    fn pure_node_stops_early() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![1, 1, 1];
        let mut tree = DecisionTree::new(TreeConfig::default(), 0);
        tree.fit(&x, &y, 2);
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.predict(&[5.0]), 1);
    }

    #[test]
    fn leaf_distribution_reflects_impurity() {
        let x = vec![vec![0.0], vec![0.0], vec![0.0], vec![0.0]];
        let y = vec![0, 0, 0, 1];
        let mut tree = DecisionTree::new(TreeConfig::default(), 0);
        tree.fit(&x, &y, 2);
        let d = tree.predict_dist(&[0.0]);
        assert!((d[0] - 0.75).abs() < 1e-12);
        assert!((d[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn feature_subsampling_still_learns_separable_data() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![if i < 20 { 0.0 } else { 1.0 }, (i % 7) as f64])
            .collect();
        let y: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let mut tree = DecisionTree::new(
            TreeConfig { features_per_split: Some(1), ..Default::default() },
            7,
        );
        tree.fit(&x, &y, 2);
        let acc = x.iter().zip(&y).filter(|(xi, &yi)| tree.predict(xi) == yi).count();
        assert!(acc >= 36, "accuracy {acc}/40");
    }
}
