//! Random-subspace ensemble — Weka's "RandomSubSpace" (Table VI).
//!
//! Each member tree is trained on the full sample set but sees only a random
//! subset of the features; predictions are averaged.

use crate::tree::{DecisionTree, TreeConfig};
use crate::{linalg::argmax, validate_fit_inputs, Classifier};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A random-subspace ensemble of decision trees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomSubspace {
    /// Number of ensemble members.
    pub num_members: usize,
    /// Fraction of features each member sees (Weka default 0.5).
    pub subspace_fraction: f64,
    /// Maximum depth per member tree.
    pub max_depth: usize,
    /// Ensemble seed.
    pub seed: u64,
    members: Vec<(Vec<usize>, DecisionTree)>,
    num_classes: usize,
}

impl Default for RandomSubspace {
    fn default() -> Self {
        RandomSubspace {
            num_members: 30,
            subspace_fraction: 0.5,
            max_depth: 12,
            seed: 0x5B5_ACE,
            members: Vec::new(),
            num_classes: 0,
        }
    }
}

impl RandomSubspace {
    /// Creates an ensemble with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `subspace_fraction` is outside `(0, 1]`.
    pub fn new(num_members: usize, subspace_fraction: f64, max_depth: usize, seed: u64) -> Self {
        assert!(
            subspace_fraction > 0.0 && subspace_fraction <= 1.0,
            "subspace fraction must be in (0, 1]"
        );
        RandomSubspace { num_members, subspace_fraction, max_depth, seed, ..Default::default() }
    }

    /// Averaged class-probability distribution.
    ///
    /// # Panics
    ///
    /// Panics if called before fitting.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert!(!self.members.is_empty(), "ensemble is not fitted");
        let mut acc = vec![0.0; self.num_classes];
        for (features, tree) in &self.members {
            let sub: Vec<f64> = features.iter().map(|&f| x[f]).collect();
            for (a, p) in acc.iter_mut().zip(tree.predict_dist(&sub)) {
                *a += p;
            }
        }
        for a in acc.iter_mut() {
            *a /= self.members.len() as f64;
        }
        acc
    }
}

impl Classifier for RandomSubspace {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], num_classes: usize) {
        validate_fit_inputs(x, y, num_classes);
        self.num_classes = num_classes;
        let dim = x[0].len();
        let k = ((dim as f64 * self.subspace_fraction).round() as usize).clamp(1, dim);
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        self.members = (0..self.num_members)
            .map(|m| {
                let mut features: Vec<usize> = (0..dim).collect();
                features.shuffle(&mut rng);
                features.truncate(k);
                features.sort_unstable();
                let sub_x: Vec<Vec<f64>> = x
                    .iter()
                    .map(|row| features.iter().map(|&f| row[f]).collect())
                    .collect();
                let cfg = TreeConfig {
                    max_depth: self.max_depth,
                    min_split: 2,
                    features_per_split: None,
                };
                let mut tree = DecisionTree::new(cfg, self.seed ^ ((m as u64) << 13));
                tree.fit(&sub_x, y, num_classes);
                (features, tree)
            })
            .collect();
    }

    fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.predict_proba(x))
    }

    fn name(&self) -> &str {
        "RandomSubSpace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn redundant_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Label depends on features 0 and 3; 1, 2 are noise.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut state = 5u64;
        let mut unit = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        for _ in 0..160 {
            let a = unit() * 2.0;
            let b = unit() * 2.0;
            x.push(vec![a, unit(), unit(), b]);
            y.push(usize::from(a + b > 0.0));
        }
        (x, y)
    }

    #[test]
    fn learns_with_redundant_features() {
        let (x, y) = redundant_data();
        let mut rs = RandomSubspace::new(30, 0.5, 10, 3);
        rs.fit(&x, &y, 2);
        let acc = x.iter().zip(&y).filter(|(xi, &yi)| rs.predict(xi) == yi).count() as f64
            / x.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn members_use_distinct_subspaces() {
        let (x, y) = redundant_data();
        let mut rs = RandomSubspace::new(10, 0.5, 5, 3);
        rs.fit(&x, &y, 2);
        let distinct: std::collections::HashSet<Vec<usize>> =
            rs.members.iter().map(|(f, _)| f.clone()).collect();
        assert!(distinct.len() > 1, "subspaces should differ");
        // Each subspace has round(4 * 0.5) = 2 features.
        assert!(rs.members.iter().all(|(f, _)| f.len() == 2));
    }

    #[test]
    #[should_panic(expected = "subspace fraction")]
    fn rejects_bad_fraction() {
        RandomSubspace::new(10, 0.0, 5, 1);
    }
}
