//! # emoleak-ml
//!
//! From-scratch machine learning for the EmoLeak reproduction.
//!
//! The paper classifies emotions with two tool stacks, both reimplemented
//! here in pure Rust:
//!
//! **Weka classical classifiers** (§IV-D.1):
//! - [`logistic::Logistic`] — multinomial ridge logistic regression
//!   (Weka's "Logistic"),
//! - [`one_vs_rest::OneVsRest`] — one-vs-rest meta classifier
//!   (Weka's "MultiClassClassifier"),
//! - [`lmt::Lmt`] — logistic model tree (Weka's "trees.LMT"),
//! - [`forest::RandomForest`] — bagged trees with feature subsampling,
//! - [`subspace::RandomSubspace`] — ensemble over random feature subspaces.
//!
//! **Keras CNNs** (§IV-C/D.2): the [`nn`] module is a small neural-network
//! library (tensors, Conv1d/Conv2d, Dense, ReLU, MaxPool, Dropout,
//! BatchNorm, softmax cross-entropy, SGD/Adam) sufficient to realize the
//! paper's two architectures exactly, with per-epoch loss/accuracy history
//! for the Figure 7 training curves.
//!
//! [`eval`] provides accuracy, confusion matrices, stratified k-fold
//! cross-validation and the 80/20 evaluation protocol.
//!
//! # Example
//!
//! ```
//! use emoleak_ml::logistic::Logistic;
//! use emoleak_ml::Classifier;
//!
//! let x = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0], vec![5.1, 4.9]];
//! let y = vec![0, 0, 1, 1];
//! let mut clf = Logistic::default();
//! clf.fit(&x, &y, 2);
//! assert_eq!(clf.predict(&[0.05, 0.02]), 0);
//! assert_eq!(clf.predict(&[5.0, 5.0]), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod forest;
pub mod linalg;
pub mod lmt;
pub mod logistic;
pub mod nn;
pub mod one_vs_rest;
pub mod subspace;
pub mod tree;

/// A trainable multi-class classifier over dense feature vectors.
///
/// All EmoLeak classifiers implement this, so the evaluation harness
/// ([`eval`]) can sweep them uniformly.
pub trait Classifier {
    /// Trains on feature rows `x` with labels `y` in `0..num_classes`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x` and `y` lengths differ, `x` is empty, or
    /// a label is out of range.
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], num_classes: usize);

    /// Predicts the class of one feature vector.
    fn predict(&self, x: &[f64]) -> usize;

    /// Predicts a batch (default: per-row [`Classifier::predict`]).
    fn predict_batch(&self, x: &[Vec<f64>]) -> Vec<usize> {
        x.iter().map(|row| self.predict(row)).collect()
    }

    /// A short display name for result tables.
    fn name(&self) -> &str;
}

pub(crate) fn validate_fit_inputs(x: &[Vec<f64>], y: &[usize], num_classes: usize) {
    assert!(!x.is_empty(), "training set must be non-empty");
    assert_eq!(x.len(), y.len(), "feature/label count mismatch");
    assert!(num_classes >= 2, "need at least two classes");
    let dim = x[0].len();
    assert!(dim > 0, "features must be non-empty");
    assert!(
        x.iter().all(|r| r.len() == dim),
        "all feature rows must have the same dimension"
    );
    assert!(
        y.iter().all(|&l| l < num_classes),
        "label out of range"
    );
}
