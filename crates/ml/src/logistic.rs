//! Multinomial ridge logistic regression — Weka's "Logistic" classifier.
//!
//! Trained by full-batch gradient descent with Nesterov momentum and a
//! ridge penalty, matching the behaviour (not the exact optimizer) of the
//! Weka implementation the paper uses.

use crate::linalg::{argmax, dot, softmax_inplace};
use crate::{validate_fit_inputs, Classifier};
use serde::{Deserialize, Serialize};

/// Multinomial logistic regression with L2 (ridge) regularization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Logistic {
    /// Ridge penalty (Weka default 1e-8; we default to 1e-4 for stability on
    /// small noisy datasets).
    pub ridge: f64,
    /// Gradient-descent iterations.
    pub max_iter: usize,
    /// Learning rate.
    pub learning_rate: f64,
    weights: Vec<Vec<f64>>, // per class: dim + 1 (bias last)
    num_classes: usize,
}

impl Default for Logistic {
    fn default() -> Self {
        Logistic {
            ridge: 1e-4,
            max_iter: 400,
            learning_rate: 0.5,
            weights: Vec::new(),
            num_classes: 0,
        }
    }
}

impl Logistic {
    /// Creates a classifier with explicit hyperparameters.
    pub fn new(ridge: f64, max_iter: usize, learning_rate: f64) -> Self {
        Logistic { ridge, max_iter, learning_rate, ..Default::default() }
    }

    /// Class-probability estimates for one sample (after [`Classifier::fit`]).
    ///
    /// # Panics
    ///
    /// Panics if called before fitting or with a wrong feature dimension.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert!(!self.weights.is_empty(), "classifier is not fitted");
        let mut logits: Vec<f64> = self
            .weights
            .iter()
            .map(|w| dot(&w[..w.len() - 1], x) + w[w.len() - 1])
            .collect();
        softmax_inplace(&mut logits);
        logits
    }
}

impl Classifier for Logistic {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], num_classes: usize) {
        validate_fit_inputs(x, y, num_classes);
        let n = x.len();
        let dim = x[0].len();
        self.num_classes = num_classes;
        self.weights = vec![vec![0.0; dim + 1]; num_classes];
        let mut velocity = vec![vec![0.0; dim + 1]; num_classes];
        let momentum = 0.9;
        let lr = self.learning_rate / n as f64;

        let mut probs = vec![0.0; num_classes];
        for _ in 0..self.max_iter {
            let mut grads = vec![vec![0.0; dim + 1]; num_classes];
            for (xi, &yi) in x.iter().zip(y) {
                for (c, w) in self.weights.iter().enumerate() {
                    probs[c] = dot(&w[..dim], xi) + w[dim];
                }
                softmax_inplace(&mut probs);
                for c in 0..num_classes {
                    let err = probs[c] - if c == yi { 1.0 } else { 0.0 };
                    let g = &mut grads[c];
                    for (gj, xj) in g[..dim].iter_mut().zip(xi) {
                        *gj += err * xj;
                    }
                    g[dim] += err;
                }
            }
            for c in 0..num_classes {
                for j in 0..=dim {
                    let reg = if j < dim { self.ridge * self.weights[c][j] } else { 0.0 };
                    velocity[c][j] = momentum * velocity[c][j] - lr * (grads[c][j] + reg * n as f64);
                    self.weights[c][j] += velocity[c][j];
                }
            }
        }
    }

    fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.predict_proba(x))
    }

    fn name(&self) -> &str {
        "Logistic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, centers: &[(f64, f64)], spread: f64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut state = 0x1234_5678_u64;
        let mut unit = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n {
                x.push(vec![cx + spread * unit(), cy + spread * unit()]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn separable_blobs_are_learned_perfectly() {
        let (x, y) = blobs(30, &[(0.0, 0.0), (4.0, 4.0), (0.0, 4.0)], 0.5);
        let mut clf = Logistic::default();
        clf.fit(&x, &y, 3);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| clf.predict(xi) == yi)
            .count();
        assert_eq!(correct, x.len());
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = blobs(20, &[(0.0, 0.0), (3.0, 3.0)], 0.5);
        let mut clf = Logistic::default();
        clf.fit(&x, &y, 2);
        let p = clf.predict_proba(&[1.5, 1.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let (x, y) = blobs(30, &[(0.0, 0.0), (1.0, 1.0)], 0.3);
        let mut free = Logistic::new(0.0, 300, 0.5);
        let mut ridged = Logistic::new(1.0, 300, 0.5);
        free.fit(&x, &y, 2);
        ridged.fit(&x, &y, 2);
        let norm = |c: &Logistic| -> f64 {
            c.weights.iter().flatten().map(|w| w * w).sum()
        };
        assert!(norm(&ridged) < norm(&free));
    }

    #[test]
    fn overlapping_classes_stay_finite() {
        let (x, y) = blobs(50, &[(0.0, 0.0), (0.2, 0.2)], 2.0);
        let mut clf = Logistic::default();
        clf.fit(&x, &y, 2);
        assert!(clf.weights.iter().flatten().all(|w| w.is_finite()));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_set_panics() {
        Logistic::default().fit(&[], &[], 2);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        Logistic::default().predict(&[1.0]);
    }
}
