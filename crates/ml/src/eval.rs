//! Evaluation protocols: accuracy, confusion matrices, 80/20 holdout and
//! stratified k-fold cross-validation (the paper uses both, §IV-D.1).

use crate::Classifier;
use serde::{Deserialize, Serialize};

/// A confusion matrix: `matrix[truth][predicted]` counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
    class_names: Vec<String>,
}

impl ConfusionMatrix {
    /// Creates an all-zero matrix for the given classes.
    pub fn new(class_names: Vec<String>) -> Self {
        let k = class_names.len();
        ConfusionMatrix { counts: vec![vec![0; k]; k], class_names }
    }

    /// Records one (truth, predicted) pair.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        self.counts[truth][predicted] += 1;
    }

    /// Merges another matrix into this one (for k-fold accumulation).
    ///
    /// # Panics
    ///
    /// Panics if the matrices have different shapes.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.counts.len(), other.counts.len(), "shape mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// The raw counts, `[truth][predicted]`.
    pub fn counts(&self) -> &[Vec<usize>] {
        &self.counts
    }

    /// The class names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Total recorded samples.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy; NaN if empty.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        let total = self.total();
        if total == 0 {
            f64::NAN
        } else {
            correct as f64 / total as f64
        }
    }

    /// Per-class recall; NaN for classes with no samples.
    pub fn recalls(&self) -> Vec<f64> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let total: usize = row.iter().sum();
                if total == 0 {
                    f64::NAN
                } else {
                    row[i] as f64 / total as f64
                }
            })
            .collect()
    }

    /// Renders the matrix as an aligned text table (Figure 6 style).
    pub fn render(&self) -> String {
        let w = self
            .class_names
            .iter()
            .map(|n| n.len())
            .chain(self.counts.iter().flatten().map(|c| c.to_string().len()))
            .max()
            .unwrap_or(4)
            + 2;
        let mut out = String::new();
        out.push_str(&" ".repeat(w));
        for name in &self.class_names {
            out.push_str(&format!("{name:>w$}"));
        }
        out.push('\n');
        for (i, row) in self.counts.iter().enumerate() {
            out.push_str(&format!("{:>w$}", self.class_names[i]));
            for c in row {
                out.push_str(&format!("{c:>w$}"));
            }
            out.push('\n');
        }
        out
    }
}

/// The outcome of an evaluation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Overall accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// The confusion matrix.
    pub confusion: ConfusionMatrix,
}

/// Trains `clf` on the train split and evaluates on the test split.
///
/// # Panics
///
/// Panics if splits are empty or dimensions disagree (see
/// [`Classifier::fit`]).
pub fn train_test_evaluate<C: Classifier + ?Sized>(
    clf: &mut C,
    train_x: &[Vec<f64>],
    train_y: &[usize],
    test_x: &[Vec<f64>],
    test_y: &[usize],
    class_names: &[String],
) -> Evaluation {
    clf.fit(train_x, train_y, class_names.len());
    let mut confusion = ConfusionMatrix::new(class_names.to_vec());
    for (xi, &yi) in test_x.iter().zip(test_y) {
        confusion.record(yi, clf.predict(xi));
    }
    Evaluation { accuracy: confusion.accuracy(), confusion }
}

/// Stratified k-fold cross-validation: trains `k` fresh classifiers from
/// `make_clf` and accumulates one confusion matrix over all folds (the
/// paper's 10-fold protocol, used for Figure 6b).
///
/// Folds are trained **in parallel** (`emoleak_exec`, `EMOLEAK_THREADS`
/// workers). The fold assignment is drawn sequentially up front, each fold
/// trains on its own data copies, and the per-fold confusion matrices are
/// merged in fold order — integer counts whose merge is order-independent
/// anyway, so the worker count cannot affect the result. Per-sample
/// *gradient* accumulation inside a classifier is never parallelized: see
/// `gradient_accumulation_order_is_part_of_the_contract` below for why.
///
/// # Panics
///
/// Panics if `k < 2` or the dataset is smaller than `k`.
pub fn cross_validate<C: Classifier + Send>(
    make_clf: impl Fn() -> C + Sync,
    x: &[Vec<f64>],
    y: &[usize],
    class_names: &[String],
    k: usize,
    seed: u64,
) -> Evaluation {
    assert!(k >= 2, "need at least 2 folds");
    assert!(x.len() >= k, "dataset smaller than fold count");
    // Stratified fold assignment: sequential, before any parallelism.
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut fold_of = vec![0usize; x.len()];
    for class in 0..class_names.len() {
        let mut idx: Vec<usize> = (0..x.len()).filter(|&i| y[i] == class).collect();
        idx.shuffle(&mut rng);
        for (pos, i) in idx.into_iter().enumerate() {
            fold_of[i] = pos % k;
        }
    }
    let folds: Vec<usize> = (0..k).collect();
    let per_fold: Vec<Option<ConfusionMatrix>> =
        emoleak_exec::par_map_indexed(&folds, |_, &fold| {
            let (mut tx, mut ty, mut vx, mut vy) =
                (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            for i in 0..x.len() {
                if fold_of[i] == fold {
                    vx.push(x[i].clone());
                    vy.push(y[i]);
                } else {
                    tx.push(x[i].clone());
                    ty.push(y[i]);
                }
            }
            if vx.is_empty() || tx.is_empty() {
                return None;
            }
            let mut clf = make_clf();
            clf.fit(&tx, &ty, class_names.len());
            let mut confusion = ConfusionMatrix::new(class_names.to_vec());
            for (xi, &yi) in vx.iter().zip(&vy) {
                confusion.record(yi, clf.predict(xi));
            }
            Some(confusion)
        });
    let mut confusion = ConfusionMatrix::new(class_names.to_vec());
    for fold_cm in per_fold.into_iter().flatten() {
        confusion.merge(&fold_cm);
    }
    Evaluation { accuracy: confusion.accuracy(), confusion }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::Logistic;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let j = (i % 8) as f64 * 0.05;
            x.push(vec![0.0 + j, j]);
            y.push(0);
            x.push(vec![4.0 - j, 4.0 + j]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn confusion_matrix_basics() {
        let mut cm = ConfusionMatrix::new(vec!["a".into(), "b".into()]);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        assert_eq!(cm.total(), 3);
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        let recalls = cm.recalls();
        assert!((recalls[0] - 0.5).abs() < 1e-12);
        assert!((recalls[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_accuracy_is_nan() {
        let cm = ConfusionMatrix::new(vec!["a".into()]);
        assert!(cm.accuracy().is_nan());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix::new(vec!["a".into(), "b".into()]);
        a.record(0, 0);
        let mut b = ConfusionMatrix::new(vec!["a".into(), "b".into()]);
        b.record(1, 0);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.counts()[1][0], 1);
    }

    #[test]
    fn render_contains_all_classes() {
        let mut cm = ConfusionMatrix::new(vec!["anger".into(), "sad".into()]);
        cm.record(0, 1);
        let s = cm.render();
        assert!(s.contains("anger") && s.contains("sad"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn holdout_evaluation_on_separable_data() {
        let (x, y) = blobs();
        let (tx, ty) = (x[..60].to_vec(), y[..60].to_vec());
        let (vx, vy) = (x[60..].to_vec(), y[60..].to_vec());
        let mut clf = Logistic::default();
        let names = vec!["a".to_string(), "b".to_string()];
        let ev = train_test_evaluate(&mut clf, &tx, &ty, &vx, &vy, &names);
        assert!(ev.accuracy > 0.95, "accuracy {}", ev.accuracy);
        assert_eq!(ev.confusion.total(), 20);
    }

    #[test]
    fn cross_validation_covers_every_sample_once() {
        let (x, y) = blobs();
        let names = vec!["a".to_string(), "b".to_string()];
        let ev = cross_validate(Logistic::default, &x, &y, &names, 10, 1);
        assert_eq!(ev.confusion.total(), x.len());
        assert!(ev.accuracy > 0.95);
    }

    #[test]
    fn cross_validation_is_deterministic() {
        let (x, y) = blobs();
        let names = vec!["a".to_string(), "b".to_string()];
        let a = cross_validate(Logistic::default, &x, &y, &names, 5, 3);
        let b = cross_validate(Logistic::default, &x, &y, &names, 5, 3);
        assert_eq!(a.confusion.counts(), b.confusion.counts());
    }

    #[test]
    #[should_panic(expected = "folds")]
    fn one_fold_is_rejected() {
        let (x, y) = blobs();
        cross_validate(Logistic::default, &x, &y, &["a".into(), "b".into()], 1, 0);
    }

    #[test]
    fn cross_validation_is_worker_count_invariant() {
        let (x, y) = blobs();
        let names = vec!["a".to_string(), "b".to_string()];
        let baseline = emoleak_exec::with_threads(1, || {
            cross_validate(Logistic::default, &x, &y, &names, 5, 7)
        });
        for n in [2, 8] {
            let ev = emoleak_exec::with_threads(n, || {
                cross_validate(Logistic::default, &x, &y, &names, 5, 7)
            });
            assert_eq!(ev.confusion.counts(), baseline.confusion.counts(), "{n} workers");
            assert_eq!(ev.accuracy.to_bits(), baseline.accuracy.to_bits(), "{n} workers");
        }
    }

    /// Why per-sample gradient accumulation is never parallelized.
    ///
    /// IEEE-754 addition is not associative, so a parallel (or merely
    /// reordered) reduction over per-sample gradient contributions produces
    /// a bitwise-different sum, which after thousands of gradient steps
    /// amplifies into different logistic-regression weights and eventually
    /// different predictions near the decision boundary. The fix used
    /// throughout this workspace is `emoleak_exec::sum_ordered`: combine
    /// parallel partial results *sequentially in index order*, which is
    /// bit-identical to the serial loop regardless of worker count.
    #[test]
    fn gradient_accumulation_order_is_part_of_the_contract() {
        // A logistic-gradient-shaped accumulation: residual * feature terms
        // of wildly mixed magnitude, as produced by unnormalized features
        // (clip energy ~1e4 next to spectral flatness ~1e-3).
        let contributions: Vec<f64> = (0..64)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                sign * (10f64).powi(i % 9 - 4) * (1.0 + i as f64 * 0.01)
            })
            .collect();
        let forward = emoleak_exec::sum_ordered(contributions.iter().copied());
        let reversed = emoleak_exec::sum_ordered(contributions.iter().rev().copied());
        // Same real-number sum, different float: the hazard is real on this
        // data, so any reduction that lets worker scheduling pick the order
        // would make training results depend on EMOLEAK_THREADS.
        assert_ne!(
            forward.to_bits(),
            reversed.to_bits(),
            "expected order-sensitive data; weaken the magnitudes if this fails"
        );
        // And the index-ordered fold is exactly the serial loop.
        let mut serial = 0.0;
        for c in &contributions {
            serial += c;
        }
        assert_eq!(forward.to_bits(), serial.to_bits());
    }
}
