//! Logistic model tree — Weka's "trees.LMT" (simplified).
//!
//! A shallow partition tree whose leaves hold multinomial logistic models
//! trained on the samples that reach them. Unlike a plain info-gain tree,
//! split candidates are scored by *how well logistic models fit the
//! resulting children* — the property that makes LMT effective on
//! piecewise-linear class structure. This captures LMT's essential
//! behaviour without Weka's LogitBoost inner loop.

use crate::logistic::Logistic;
use crate::{linalg::argmax, validate_fit_inputs, Classifier};
use serde::{Deserialize, Serialize};

/// A logistic model tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lmt {
    /// Maximum depth of the partition tree (LMT trees are shallow).
    pub tree_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
    /// Iterations for each final leaf logistic model.
    pub logistic_iter: usize,
    root: Option<Node>,
    num_classes: usize,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf(LeafModel),
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum LeafModel {
    Logistic(Logistic),
    Prior(Vec<f64>),
}

impl Default for Lmt {
    fn default() -> Self {
        Lmt { tree_depth: 2, min_leaf: 15, logistic_iter: 250, root: None, num_classes: 0 }
    }
}

impl Lmt {
    /// Creates an LMT with explicit structure parameters.
    pub fn new(tree_depth: usize, min_leaf: usize, logistic_iter: usize) -> Self {
        Lmt { tree_depth, min_leaf, logistic_iter, ..Default::default() }
    }

    /// Class probabilities for one sample.
    ///
    /// # Panics
    ///
    /// Panics if called before fitting.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut node = self.root.as_ref().expect("LMT is not fitted");
        loop {
            match node {
                Node::Leaf(LeafModel::Logistic(m)) => return m.predict_proba(x),
                Node::Leaf(LeafModel::Prior(d)) => return d.clone(),
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    fn make_leaf(&self, x: &[Vec<f64>], y: &[usize], idx: &[usize]) -> Node {
        let classes: std::collections::HashSet<usize> = idx.iter().map(|&i| y[i]).collect();
        if idx.len() >= self.min_leaf.max(4) && classes.len() >= 2 {
            let lx: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
            let ly: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
            let mut model = Logistic::new(1e-4, self.logistic_iter, 0.5);
            model.fit(&lx, &ly, self.num_classes);
            Node::Leaf(LeafModel::Logistic(model))
        } else {
            let mut dist = vec![0.0; self.num_classes];
            for &i in idx {
                dist[y[i]] += 1.0;
            }
            let total: f64 = dist.iter().sum::<f64>().max(1.0);
            for d in dist.iter_mut() {
                *d /= total;
            }
            Node::Leaf(LeafModel::Prior(dist))
        }
    }

    /// Training accuracy of a quick logistic fit on a subset (split scoring).
    fn quick_fit_accuracy(&self, x: &[Vec<f64>], y: &[usize], idx: &[usize]) -> f64 {
        let classes: std::collections::HashSet<usize> = idx.iter().map(|&i| y[i]).collect();
        if classes.len() < 2 {
            return 1.0; // pure child: perfectly modeled by its prior
        }
        let lx: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
        let ly: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
        let mut m = Logistic::new(1e-4, 60, 0.5);
        m.fit(&lx, &ly, self.num_classes);
        let hits = lx.iter().zip(&ly).filter(|(xi, &yi)| m.predict(xi) == yi).count();
        hits as f64 / lx.len() as f64
    }

    fn grow(&self, x: &[Vec<f64>], y: &[usize], idx: &[usize], depth: usize) -> Node {
        if depth >= self.tree_depth || idx.len() < 2 * self.min_leaf {
            return self.make_leaf(x, y, idx);
        }
        let baseline = self.quick_fit_accuracy(x, y, idx);
        let dim = x[0].len();
        let mut best: Option<(f64, usize, f64)> = None;
        for f in 0..dim {
            let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            let thr = vals[vals.len() / 2];
            let (li, ri): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| x[i][f] <= thr);
            if li.len() < self.min_leaf || ri.len() < self.min_leaf {
                continue;
            }
            let acc_l = self.quick_fit_accuracy(x, y, &li);
            let acc_r = self.quick_fit_accuracy(x, y, &ri);
            let score = (acc_l * li.len() as f64 + acc_r * ri.len() as f64) / idx.len() as f64;
            if best.is_none_or(|(s, _, _)| score > s) {
                best = Some((score, f, thr));
            }
        }
        match best {
            Some((score, feature, threshold)) if score > baseline + 0.01 => {
                let (li, ri): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| x[i][feature] <= threshold);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(self.grow(x, y, &li, depth + 1)),
                    right: Box::new(self.grow(x, y, &ri, depth + 1)),
                }
            }
            _ => self.make_leaf(x, y, idx),
        }
    }
}

impl Classifier for Lmt {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], num_classes: usize) {
        validate_fit_inputs(x, y, num_classes);
        self.num_classes = num_classes;
        let idx: Vec<usize> = (0..x.len()).collect();
        self.root = Some(self.grow(x, y, &idx, 0));
    }

    fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.predict_proba(x))
    }

    fn name(&self) -> &'static str {
        "trees.LMT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Label flips with the sign of feature 0: pure logistic fails, a stump
    /// with leaf logistic models succeeds.
    fn piecewise_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut state = 17u64;
        let mut unit = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        for _ in 0..160 {
            let a = unit() * 4.0;
            let b = unit() * 4.0;
            let label = if a < 0.0 { usize::from(b > 0.0) } else { usize::from(b < 0.0) };
            x.push(vec![a, b]);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn beats_plain_logistic_on_piecewise_data() {
        let (x, y) = piecewise_data();
        let acc = |preds: Vec<usize>| {
            preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64
        };
        let mut lmt = Lmt::new(2, 15, 250);
        lmt.fit(&x, &y, 2);
        let lmt_acc = acc(lmt.predict_batch(&x));
        let mut logi = Logistic::default();
        logi.fit(&x, &y, 2);
        let logi_acc = acc(logi.predict_batch(&x));
        assert!(lmt_acc > 0.9, "LMT accuracy {lmt_acc}");
        assert!(lmt_acc > logi_acc + 0.2, "LMT {lmt_acc} vs logistic {logi_acc}");
    }

    #[test]
    fn probabilities_are_valid() {
        let (x, y) = piecewise_data();
        let mut lmt = Lmt::default();
        lmt.fit(&x, &y, 2);
        let p = lmt.predict_proba(&[1.0, 1.0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_dataset_falls_back_to_prior() {
        // min_leaf larger than the dataset → a single prior leaf predicting
        // the majority class everywhere.
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1, 0];
        let mut lmt = Lmt::new(1, 100, 50);
        lmt.fit(&x, &y, 2);
        assert_eq!(lmt.predict(&[0.1]), 1);
        assert_eq!(lmt.predict(&[2.9]), 1);
    }

    #[test]
    fn linearly_separable_data_needs_no_split() {
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64 / 10.0, -(i as f64) / 20.0])
            .collect();
        let y: Vec<usize> = (0..60).map(|i| usize::from(i >= 30)).collect();
        let mut lmt = Lmt::new(3, 10, 250);
        lmt.fit(&x, &y, 2);
        // A single logistic leaf suffices — structure aside, accuracy must
        // be perfect.
        let acc = x.iter().zip(&y).filter(|(xi, &yi)| lmt.predict(xi) == yi).count();
        assert_eq!(acc, 60);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_panics() {
        Lmt::default().predict(&[0.0]);
    }
}
