//! A small pure-Rust neural-network library.
//!
//! Implements exactly what the paper's two Keras models need (§IV-C.2 and
//! §IV-D.2): dense and convolutional layers (1-D and 2-D), ReLU, max
//! pooling, dropout, batch normalization, a softmax cross-entropy head, and
//! SGD/Adam optimizers, trained sample-by-sample with gradient accumulation
//! over mini-batches. Per-epoch train/validation loss and accuracy are
//! recorded for the Figure 7 training curves.
//!
//! # Example
//!
//! ```
//! use emoleak_ml::nn::{layers::{Dense, Relu}, Sequential, Tensor, TrainConfig};
//!
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(2, 8, 1)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(8, 2, 2)),
//! ]);
//! let x = vec![
//!     Tensor::from_vec(vec![0.0, 0.0]),
//!     Tensor::from_vec(vec![1.0, 1.0]),
//! ];
//! let y = vec![0, 1];
//! let history = net.fit(&x, &y, &x, &y, &TrainConfig { epochs: 50, ..Default::default() });
//! assert_eq!(history.epochs(), 50);
//! ```

pub mod architectures;
pub mod layers;
pub mod optimizer;
pub mod quant;
pub mod tensor;

pub use architectures::{feature_cnn, feature_cnn_scaled, spectrogram_cnn, spectrogram_cnn_scaled, CnnClassifier};
pub use layers::ShapeError;
pub use optimizer::{Adam, Optimizer, Sgd};
pub use quant::QuantizedCnn;
pub use tensor::Tensor;

use crate::linalg::{argmax, softmax_inplace};
use layers::Layer;
use serde::{Deserialize, Serialize};

/// Per-epoch training/validation metrics (Figure 7 curves).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Mean training cross-entropy per epoch.
    pub train_loss: Vec<f64>,
    /// Training accuracy per epoch.
    pub train_accuracy: Vec<f64>,
    /// Validation cross-entropy per epoch.
    pub val_loss: Vec<f64>,
    /// Validation accuracy per epoch.
    pub val_accuracy: Vec<f64>,
}

impl TrainingHistory {
    /// Number of recorded epochs.
    pub fn epochs(&self) -> usize {
        self.train_loss.len()
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Gradient-accumulation batch size.
    pub batch_size: usize,
    /// Learning rate for the Adam optimizer.
    pub learning_rate: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 40, batch_size: 16, learning_rate: 1e-3, seed: 0xAD4A }
    }
}

/// A feed-forward stack of layers with a softmax cross-entropy head.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential").field("layers", &names).finish()
    }
}

impl Sequential {
    /// Creates a network from a layer stack. The final layer must output the
    /// class-logit vector.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Forward pass producing logits.
    pub fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, training);
        }
        x
    }

    /// Shape-checked forward pass producing logits, reporting a typed
    /// [`ShapeError`] instead of panicking when a layer rejects its input.
    pub fn try_forward(
        &mut self,
        input: &Tensor,
        training: bool,
    ) -> Result<Tensor, ShapeError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.try_forward(&x, training)?;
        }
        Ok(x)
    }

    /// Predicted class for one input.
    pub fn predict(&mut self, input: &Tensor) -> usize {
        let logits = self.forward(input, false);
        argmax(&logits.data)
    }

    /// Shape-checked [`Sequential::predict`].
    pub fn try_predict(&mut self, input: &Tensor) -> Result<usize, ShapeError> {
        Ok(argmax(&self.try_forward(input, false)?.data))
    }

    /// Softmax class probabilities for one input.
    pub fn predict_proba(&mut self, input: &Tensor) -> Vec<f64> {
        let mut logits = self.forward(input, false).data;
        softmax_inplace(&mut logits);
        logits
    }

    /// Cross-entropy loss and accuracy over a labeled set (no learning).
    pub fn evaluate(&mut self, xs: &[Tensor], ys: &[usize]) -> (f64, f64) {
        assert_eq!(xs.len(), ys.len(), "sample/label count mismatch");
        if xs.is_empty() {
            return (f64::NAN, f64::NAN);
        }
        let mut loss = 0.0;
        let mut correct = 0usize;
        for (x, &y) in xs.iter().zip(ys) {
            let mut p = self.forward(x, false).data;
            softmax_inplace(&mut p);
            loss += -(p[y].max(1e-12)).ln();
            if argmax(&p) == y {
                correct += 1;
            }
        }
        (loss / xs.len() as f64, correct as f64 / xs.len() as f64)
    }

    /// Trains with Adam and records per-epoch history on both splits.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or lengths mismatch.
    pub fn fit(
        &mut self,
        train_x: &[Tensor],
        train_y: &[usize],
        val_x: &[Tensor],
        val_y: &[usize],
        config: &TrainConfig,
    ) -> TrainingHistory {
        assert!(!train_x.is_empty(), "training set must be non-empty");
        assert_eq!(train_x.len(), train_y.len(), "sample/label count mismatch");
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let mut opt = Adam::new(config.learning_rate);
        let mut history = TrainingHistory::default();
        let mut order: Vec<usize> = (0..train_x.len()).collect();
        for _epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut correct = 0usize;
            for batch in order.chunks(config.batch_size.max(1)) {
                for layer in &mut self.layers {
                    layer.zero_grad();
                }
                for &i in batch {
                    let (loss, hit) = self.backprop_one(&train_x[i], train_y[i]);
                    epoch_loss += loss;
                    correct += usize::from(hit);
                }
                let scale = 1.0 / batch.len() as f64;
                opt.begin_step();
                for layer in &mut self.layers {
                    layer.visit_params(&mut |param, grad| {
                        opt.update(param, grad, scale);
                    });
                }
            }
            let train_loss = epoch_loss / train_x.len() as f64;
            let train_acc = correct as f64 / train_x.len() as f64;
            let (val_loss, val_acc) = if val_x.is_empty() {
                (f64::NAN, f64::NAN)
            } else {
                self.evaluate(val_x, val_y)
            };
            history.train_loss.push(train_loss);
            history.train_accuracy.push(train_acc);
            history.val_loss.push(val_loss);
            history.val_accuracy.push(val_acc);
        }
        history
    }

    /// Forward + backward for one sample; accumulates parameter gradients.
    /// Returns (loss, correct?).
    fn backprop_one(&mut self, x: &Tensor, y: usize) -> (f64, bool) {
        let logits = self.forward(x, true);
        let mut probs = logits.data.clone();
        softmax_inplace(&mut probs);
        let loss = -(probs[y].max(1e-12)).ln();
        let hit = argmax(&probs) == y;
        // dL/dlogits = softmax - onehot.
        let mut grad = Tensor { shape: logits.shape.clone(), data: probs };
        grad.data[y] -= 1.0;
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        (loss, hit)
    }
}

#[cfg(test)]
mod tests {
    use super::layers::{Dense, Dropout, Relu};
    use super::*;

    fn xor_tensors() -> (Vec<Tensor>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for rep in 0..8 {
            let j = rep as f64 * 0.01;
            for &(a, b) in &[(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                xs.push(Tensor::from_vec(vec![a + j, b - j]));
                ys.push(usize::from((a > 0.5) != (b > 0.5)));
            }
        }
        (xs, ys)
    }

    #[test]
    fn mlp_learns_xor() {
        let (xs, ys) = xor_tensors();
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 16, 1)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 2, 2)),
        ]);
        let cfg = TrainConfig { epochs: 200, batch_size: 8, learning_rate: 5e-3, seed: 3 };
        let history = net.fit(&xs, &ys, &xs, &ys, &cfg);
        let final_acc = *history.train_accuracy.last().unwrap();
        assert!(final_acc > 0.95, "final accuracy {final_acc}");
        // Loss decreased substantially.
        assert!(history.train_loss.last().unwrap() < &(history.train_loss[0] * 0.5));
    }

    #[test]
    fn history_has_all_series() {
        let (xs, ys) = xor_tensors();
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 4, 7)),
            Box::new(Relu::new()),
            Box::new(Dense::new(4, 2, 8)),
        ]);
        let cfg = TrainConfig { epochs: 5, ..Default::default() };
        let h = net.fit(&xs, &ys, &xs, &ys, &cfg);
        assert_eq!(h.epochs(), 5);
        assert_eq!(h.val_loss.len(), 5);
        assert!(h.val_accuracy.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn dropout_trains_and_infers() {
        let (xs, ys) = xor_tensors();
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 32, 9)),
            Box::new(Relu::new()),
            Box::new(Dropout::new(0.2, 10)),
            Box::new(Dense::new(32, 2, 11)),
        ]);
        let cfg = TrainConfig { epochs: 150, batch_size: 8, learning_rate: 5e-3, seed: 5 };
        let h = net.fit(&xs, &ys, &xs, &ys, &cfg);
        assert!(*h.val_accuracy.last().unwrap() > 0.9);
        // Inference is deterministic (dropout disabled).
        let a = net.predict(&xs[0]);
        let b = net.predict(&xs[0]);
        assert_eq!(a, b);
    }

    #[test]
    fn probabilities_normalize() {
        let (xs, ys) = xor_tensors();
        let mut net = Sequential::new(vec![Box::new(Dense::new(2, 2, 1))]);
        let cfg = TrainConfig { epochs: 2, ..Default::default() };
        net.fit(&xs, &ys, &[], &[], &cfg);
        let p = net.predict_proba(&xs[0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_panics() {
        let mut net = Sequential::new(vec![Box::new(Dense::new(2, 2, 1))]);
        net.fit(&[], &[], &[], &[], &TrainConfig::default());
    }
}
