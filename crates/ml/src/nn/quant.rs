//! Int8 quantized CNN inference — the `cnn-int8` degradation rung.
//!
//! [`QuantizedCnn`] lowers a trained [`Sequential`] into a stack of
//! symmetric-int8 layers: weights are quantized once per layer at build
//! time, activations are quantized per tensor at inference time, and the
//! matmuls run through `emoleak_kernels::int8::gemm_i8` with exact i32
//! accumulation. ReLU is fused into the preceding convolution or dense
//! layer; dropout disappears (inference identity); pooling and flatten run
//! in f64 on the dequantized activations.
//!
//! The quantized path is deliberately *lossy* relative to the f64 model —
//! it is a distinct [`InferenceLevel`] rung the streaming service opts into
//! under load, never a silent substitute — but it is deterministic: integer
//! arithmetic is exact, so the same input always yields the same verdict.
//!
//! [`InferenceLevel`]: https://docs.rs/emoleak-core

use super::layers::ShapeError;
use super::{Sequential, Tensor};
use crate::linalg::argmax;
use emoleak_kernels::conv::{im2col_1d, im2col_2d};
use emoleak_kernels::int8::{gemm_i8, quantize_symmetric};

/// An inference-relevant description of one trained layer, exported by
/// [`super::layers::Layer::quant_spec`] so [`QuantizedCnn::from_sequential`]
/// can lower a network without downcasting.
#[derive(Debug, Clone)]
pub enum LayerSpec {
    /// Stride-1 "same"-padded 2-D convolution with trained weights/bias.
    Conv2d {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Weights, `[out][in][kh][kw]`.
        w: Vec<f64>,
        /// Per-output-channel bias.
        b: Vec<f64>,
    },
    /// Stride-1 "same"-padded 1-D convolution.
    Conv1d {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Kernel length.
        k: usize,
        /// Weights, `[out][in][k]`.
        w: Vec<f64>,
        /// Per-output-channel bias.
        b: Vec<f64>,
    },
    /// Fully connected layer.
    Dense {
        /// Input dimension.
        in_dim: usize,
        /// Output dimension.
        out_dim: usize,
        /// Weights, `out × in` row-major.
        w: Vec<f64>,
        /// Bias.
        b: Vec<f64>,
    },
    /// ReLU — fused into the preceding matmul layer at lowering time.
    Relu,
    /// Inference-time identity (dropout).
    Identity,
    /// 2-D max pooling, kernel = stride.
    MaxPool2d {
        /// Pool size.
        pool: usize,
    },
    /// 1-D max pooling, kernel = stride.
    MaxPool1d {
        /// Pool size.
        pool: usize,
    },
    /// Flatten to 1-D.
    Flatten,
}

/// One lowered layer of a [`QuantizedCnn`].
#[derive(Debug, Clone)]
enum QLayer {
    Conv2d {
        in_ch: usize,
        out_ch: usize,
        kh: usize,
        kw: usize,
        wq: Vec<i8>,
        wscale: f64,
        b: Vec<f64>,
        relu: bool,
    },
    Conv1d {
        in_ch: usize,
        out_ch: usize,
        k: usize,
        wq: Vec<i8>,
        wscale: f64,
        b: Vec<f64>,
        relu: bool,
    },
    Dense {
        in_dim: usize,
        out_dim: usize,
        wq: Vec<i8>,
        wscale: f64,
        b: Vec<f64>,
        relu: bool,
    },
    MaxPool2d { pool: usize },
    MaxPool1d { pool: usize },
    Flatten,
}

/// An immutable int8-quantized inference network lowered from a trained
/// [`Sequential`]. Unlike `Sequential`, prediction takes `&self` (no layer
/// caches), so it needs no lock to share across worker threads.
#[derive(Debug, Clone)]
pub struct QuantizedCnn {
    layers: Vec<QLayer>,
}

impl QuantizedCnn {
    /// Lowers a trained network to int8. Returns `None` if any layer has
    /// no quantized representation (e.g. batch normalization) or a ReLU
    /// does not directly follow a convolution/dense layer — callers then
    /// keep the rung absent and the degradation ladder skips it.
    pub fn from_sequential(net: &Sequential) -> Option<QuantizedCnn> {
        let mut layers: Vec<QLayer> = Vec::new();
        for layer in &net.layers {
            match layer.quant_spec()? {
                LayerSpec::Conv2d { in_ch, out_ch, kh, kw, w, b } => {
                    let (wq, wscale) = quantize_symmetric(&w);
                    layers.push(QLayer::Conv2d {
                        in_ch,
                        out_ch,
                        kh,
                        kw,
                        wq,
                        wscale,
                        b,
                        relu: false,
                    });
                }
                LayerSpec::Conv1d { in_ch, out_ch, k, w, b } => {
                    let (wq, wscale) = quantize_symmetric(&w);
                    layers.push(QLayer::Conv1d { in_ch, out_ch, k, wq, wscale, b, relu: false });
                }
                LayerSpec::Dense { in_dim, out_dim, w, b } => {
                    let (wq, wscale) = quantize_symmetric(&w);
                    layers.push(QLayer::Dense { in_dim, out_dim, wq, wscale, b, relu: false });
                }
                LayerSpec::Relu => match layers.last_mut() {
                    Some(
                        QLayer::Conv2d { relu, .. }
                        | QLayer::Conv1d { relu, .. }
                        | QLayer::Dense { relu, .. },
                    ) => *relu = true,
                    _ => return None,
                },
                LayerSpec::Identity => {}
                LayerSpec::MaxPool2d { pool } => layers.push(QLayer::MaxPool2d { pool }),
                LayerSpec::MaxPool1d { pool } => layers.push(QLayer::MaxPool1d { pool }),
                LayerSpec::Flatten => layers.push(QLayer::Flatten),
            }
        }
        if layers.is_empty() {
            return None;
        }
        Some(QuantizedCnn { layers })
    }

    /// Predicted class for one input, or a typed error on a shape mismatch.
    pub fn try_predict(&self, input: &Tensor) -> Result<usize, ShapeError> {
        let mut shape = input.shape.clone();
        let mut data = input.data.clone();
        for layer in &self.layers {
            match layer {
                QLayer::Conv2d { in_ch, out_ch, kh, kw, wq, wscale, b, relu } => {
                    if shape.len() != 3 || shape[0] != *in_ch {
                        return Err(ShapeError {
                            layer: "QuantizedConv2d",
                            expected: format!("[{in_ch}, H, W]"),
                            got: shape,
                        });
                    }
                    let (h, w) = (shape[1], shape[2]);
                    let n = h * w;
                    let mut cols = Vec::new();
                    im2col_2d(&data, *in_ch, h, w, *kh, *kw, &mut cols);
                    data = matmul_q8(*out_ch, in_ch * kh * kw, n, wq, *wscale, &cols, b, *relu);
                    shape = vec![*out_ch, h, w];
                }
                QLayer::Conv1d { in_ch, out_ch, k, wq, wscale, b, relu } => {
                    if shape.len() != 2 || shape[0] != *in_ch {
                        return Err(ShapeError {
                            layer: "QuantizedConv1d",
                            expected: format!("[{in_ch}, L]"),
                            got: shape,
                        });
                    }
                    let l = shape[1];
                    let mut cols = Vec::new();
                    im2col_1d(&data, *in_ch, l, *k, &mut cols);
                    data = matmul_q8(*out_ch, in_ch * k, l, wq, *wscale, &cols, b, *relu);
                    shape = vec![*out_ch, l];
                }
                QLayer::Dense { in_dim, out_dim, wq, wscale, b, relu } => {
                    if data.len() != *in_dim {
                        return Err(ShapeError {
                            layer: "QuantizedDense",
                            expected: format!("[{in_dim}]"),
                            got: shape,
                        });
                    }
                    data = matmul_q8(*out_dim, *in_dim, 1, wq, *wscale, &data, b, *relu);
                    shape = vec![*out_dim];
                }
                QLayer::MaxPool2d { pool } => {
                    if shape.len() != 3 {
                        return Err(ShapeError {
                            layer: "QuantizedMaxPool2d",
                            expected: "[C, H, W]".into(),
                            got: shape,
                        });
                    }
                    let (c, h, w) = (shape[0], shape[1], shape[2]);
                    let (oh, ow) = ((h / pool).max(1), (w / pool).max(1));
                    let mut out = vec![f64::NEG_INFINITY; c * oh * ow];
                    for ch in 0..c {
                        for y in 0..oh {
                            for x in 0..ow {
                                let mut best = f64::NEG_INFINITY;
                                for dy in 0..*pool {
                                    let iy = y * pool + dy;
                                    if iy >= h {
                                        break;
                                    }
                                    for dx in 0..*pool {
                                        let ix = x * pool + dx;
                                        if ix >= w {
                                            break;
                                        }
                                        best = best.max(data[(ch * h + iy) * w + ix]);
                                    }
                                }
                                out[(ch * oh + y) * ow + x] = best;
                            }
                        }
                    }
                    data = out;
                    shape = vec![c, oh, ow];
                }
                QLayer::MaxPool1d { pool } => {
                    if shape.len() != 2 {
                        return Err(ShapeError {
                            layer: "QuantizedMaxPool1d",
                            expected: "[C, L]".into(),
                            got: shape,
                        });
                    }
                    let (c, l) = (shape[0], shape[1]);
                    let ol = (l / pool).max(1);
                    let mut out = vec![f64::NEG_INFINITY; c * ol];
                    for ch in 0..c {
                        for t in 0..ol {
                            let mut best = f64::NEG_INFINITY;
                            for d in 0..*pool {
                                let it = t * pool + d;
                                if it >= l {
                                    break;
                                }
                                best = best.max(data[ch * l + it]);
                            }
                            out[ch * ol + t] = best;
                        }
                    }
                    data = out;
                    shape = vec![c, ol];
                }
                QLayer::Flatten => {
                    shape = vec![data.len()];
                }
            }
        }
        Ok(argmax(&data))
    }

    /// Predicted class for one input.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch; use [`QuantizedCnn::try_predict`] to
    /// handle it as a value.
    pub fn predict(&self, input: &Tensor) -> usize {
        self.try_predict(input).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Quantizes the f64 activation matrix per tensor, multiplies int8 weights
/// (m×k) by activations (k×n) with i32 accumulation, then dequantizes and
/// applies bias (+ optional fused ReLU) per output row.
#[allow(clippy::too_many_arguments)]
fn matmul_q8(
    m: usize,
    k: usize,
    n: usize,
    wq: &[i8],
    wscale: f64,
    x: &[f64],
    bias: &[f64],
    relu: bool,
) -> Vec<f64> {
    let (xq, xscale) = quantize_symmetric(x);
    let mut acc = vec![0i32; m * n];
    gemm_i8(m, k, n, wq, &xq, &mut acc);
    let s = wscale * xscale;
    acc.iter()
        .enumerate()
        .map(|(i, &v)| {
            let y = f64::from(v) * s + bias[i / n];
            if relu {
                y.max(0.0)
            } else {
                y
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::architectures::{feature_cnn, spectrogram_cnn_scaled};
    use super::super::layers::{Conv2d, Flatten, Layer, MaxPool2d, Relu};
    use super::*;

    #[test]
    fn spectrogram_cnn_lowers_and_predicts_in_range() {
        let mut net = spectrogram_cnn_scaled(7, 3, 8);
        let q = QuantizedCnn::from_sequential(&net).expect("spectrogram CNN must lower");
        let input = Tensor::from_shape(
            &[1, 32, 32],
            (0..32 * 32).map(|i| ((i as f64) * 0.37).sin()).collect(),
        );
        let class = q.predict(&input);
        assert!(class < 7);
        // Deterministic: integer arithmetic has no run-to-run variance.
        assert_eq!(class, q.predict(&input));
        // The f64 network still runs on the same input.
        let _ = net.predict(&input);
    }

    #[test]
    fn feature_cnn_with_batchnorm_does_not_lower() {
        let net = feature_cnn(24, 7, 1);
        assert!(QuantizedCnn::from_sequential(&net).is_none());
    }

    #[test]
    fn grid_aligned_weights_make_quantized_forward_exact() {
        // Weights and input activations in {-1, 0, 1}: scale = 1/127 and
        // quantized values ±127, both exactly representable, so the first
        // (and only) matmul is exact integer arithmetic and the quantized
        // network must agree with the f64 network. (A second matmul would
        // re-quantize intermediate activations off-grid, which is the
        // rung's deliberate lossiness.)
        let mut conv = Conv2d::new(1, 3, (3, 3), 1);
        let mut first = true;
        conv.visit_params(&mut |p, _| {
            if first {
                for (i, v) in p.iter_mut().enumerate() {
                    *v = match i % 3 {
                        0 => 1.0,
                        1 => -1.0,
                        _ => 0.0,
                    };
                }
                first = false;
            } else {
                p.iter_mut().for_each(|v| *v = 0.25);
            }
        });
        let mut net = Sequential::new(vec![
            Box::new(conv),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Flatten::new()),
        ]);
        let q = QuantizedCnn::from_sequential(&net).unwrap();
        let input = Tensor::from_shape(
            &[1, 4, 4],
            (0..16).map(|i| f64::from([1i8, -1, 0, 1][i % 4])).collect(),
        );
        assert_eq!(q.predict(&input), net.predict(&input));
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let net = spectrogram_cnn_scaled(7, 3, 8);
        let q = QuantizedCnn::from_sequential(&net).unwrap();
        let err = q.try_predict(&Tensor::from_shape(&[2, 8, 8], vec![0.0; 128])).unwrap_err();
        assert_eq!(err.layer, "QuantizedConv2d");
        assert_eq!(err.got, vec![2, 8, 8]);
    }
}
