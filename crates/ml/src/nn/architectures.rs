//! The paper's two Keras architectures, reproduced layer for layer.

use super::layers::{
    BatchNorm1d, Conv1d, Conv2d, Dense, Dropout, Flatten, MaxPool1d, MaxPool2d, Relu,
};
use super::{Sequential, Tensor, TrainConfig};
use crate::{validate_fit_inputs, Classifier};

/// The spectrogram image classifier of §IV-C.2.
///
/// Input `[1, 32, 32]`. Three convolutional layers (128 filters with a
/// (1,1) kernel, 128 and 64 with (3,3)), each followed by ReLU, dropout 0.2
/// and (2,2) max pooling; then two fully connected layers of 32 neurons
/// (dropout 0.25 on the second) and the softmax output layer.
pub fn spectrogram_cnn(num_classes: usize, seed: u64) -> Sequential {
    spectrogram_cnn_scaled(num_classes, seed, 1)
}

/// [`spectrogram_cnn`] with every channel count divided by `width_divisor`
/// (structure unchanged). Divisor 1 is the paper-exact model; larger
/// divisors trade width for single-core runtime and are used by the default
/// table runs (`EMOLEAK_CNN_DIV`).
///
/// # Panics
///
/// Panics if `width_divisor` is zero.
pub fn spectrogram_cnn_scaled(num_classes: usize, seed: u64, width_divisor: usize) -> Sequential {
    assert!(width_divisor > 0, "width divisor must be positive");
    let ch = |c: usize| (c / width_divisor).max(4);
    Sequential::new(vec![
        Box::new(Conv2d::new(1, ch(128), (1, 1), seed ^ 0x1)),
        Box::new(Relu::new()),
        Box::new(Dropout::new(0.2, seed ^ 0x2)),
        Box::new(MaxPool2d::new(2)), // -> [128, 16, 16]
        Box::new(Conv2d::new(ch(128), ch(128), (3, 3), seed ^ 0x3)),
        Box::new(Relu::new()),
        Box::new(Dropout::new(0.2, seed ^ 0x4)),
        Box::new(MaxPool2d::new(2)), // -> [128, 8, 8]
        Box::new(Conv2d::new(ch(128), ch(64), (3, 3), seed ^ 0x5)),
        Box::new(Relu::new()),
        Box::new(Dropout::new(0.2, seed ^ 0x6)),
        Box::new(MaxPool2d::new(2)), // -> [64, 4, 4]
        Box::new(Flatten::new()),
        Box::new(Dense::new(ch(64) * 4 * 4, 32, seed ^ 0x7)),
        Box::new(Relu::new()),
        Box::new(Dense::new(32, 32, seed ^ 0x8)),
        Box::new(Relu::new()),
        Box::new(Dropout::new(0.25, seed ^ 0x9)),
        Box::new(Dense::new(32, num_classes, seed ^ 0xA)),
    ])
}

/// The time–frequency-feature classifier of §IV-D.2.
///
/// Input `[1, dim]` (dim = 24 Table II features). Five convolutional
/// layers — 256, 256 (then dropout 0.25 + pool 2), 128 with batch
/// normalization (then dropout 0.25 + pool 8), 64, 64 — all ReLU with zero
/// padding, then flatten and the softmax output layer.
pub fn feature_cnn(input_dim: usize, num_classes: usize, seed: u64) -> Sequential {
    feature_cnn_scaled(input_dim, num_classes, seed, 1)
}

/// [`feature_cnn`] with channel counts divided by `width_divisor`
/// (structure unchanged); divisor 1 is paper-exact.
///
/// # Panics
///
/// Panics if `width_divisor` is zero.
pub fn feature_cnn_scaled(
    input_dim: usize,
    num_classes: usize,
    seed: u64,
    width_divisor: usize,
) -> Sequential {
    assert!(width_divisor > 0, "width divisor must be positive");
    let ch = |c: usize| (c / width_divisor).max(4);
    let after_pool2 = (input_dim / 2).max(1);
    let after_pool8 = (after_pool2 / 8).max(1);
    Sequential::new(vec![
        Box::new(Conv1d::new(1, ch(256), 3, seed ^ 0x11)),
        Box::new(Relu::new()),
        Box::new(Conv1d::new(ch(256), ch(256), 3, seed ^ 0x12)),
        Box::new(Relu::new()),
        Box::new(Dropout::new(0.25, seed ^ 0x13)),
        Box::new(MaxPool1d::new(2)), // -> [256, dim/2]
        Box::new(Conv1d::new(ch(256), ch(128), 3, seed ^ 0x14)),
        Box::new(BatchNorm1d::new(ch(128))),
        Box::new(Relu::new()),
        Box::new(Dropout::new(0.25, seed ^ 0x15)),
        Box::new(MaxPool1d::new(8)), // -> [128, dim/16]
        Box::new(Conv1d::new(ch(128), ch(64), 3, seed ^ 0x16)),
        Box::new(Relu::new()),
        Box::new(Conv1d::new(ch(64), ch(64), 3, seed ^ 0x17)),
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(ch(64) * after_pool8, num_classes, seed ^ 0x18)),
    ])
}

/// A [`Classifier`] adapter running the feature CNN on flat feature vectors,
/// so the evaluation harness can sweep it next to the Weka-style models.
///
/// The network sits behind a mutex because forward passes update layer
/// caches (`&mut self`) while [`Classifier::predict`] takes `&self`.
pub struct CnnClassifier {
    /// Training configuration.
    pub config: TrainConfig,
    /// Channel-width divisor (1 = paper-exact).
    pub width_divisor: usize,
    seed: u64,
    net: Option<parking_lot::Mutex<Sequential>>,
    history: Option<super::TrainingHistory>,
}

impl std::fmt::Debug for CnnClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CnnClassifier")
            .field("config", &self.config)
            .field("fitted", &self.net.is_some())
            .finish()
    }
}

impl CnnClassifier {
    /// Creates an (unfitted) feature-CNN classifier with the paper-exact
    /// width.
    pub fn new(config: TrainConfig, seed: u64) -> Self {
        CnnClassifier { config, width_divisor: 1, seed, net: None, history: None }
    }

    /// Sets the channel-width divisor (see [`feature_cnn_scaled`]).
    #[must_use]
    pub fn with_width_divisor(mut self, width_divisor: usize) -> Self {
        assert!(width_divisor > 0, "width divisor must be positive");
        self.width_divisor = width_divisor;
        self
    }

    /// The training history of the last [`Classifier::fit`] call (Figure 7).
    pub fn history(&self) -> Option<&super::TrainingHistory> {
        self.history.as_ref()
    }

    fn to_tensor(row: &[f64]) -> Tensor {
        Tensor::from_shape(&[1, row.len()], row.to_vec())
    }
}

impl Classifier for CnnClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], num_classes: usize) {
        validate_fit_inputs(x, y, num_classes);
        let dim = x[0].len();
        let mut net = feature_cnn_scaled(dim, num_classes, self.seed, self.width_divisor);
        let tensors: Vec<Tensor> = x.iter().map(|r| Self::to_tensor(r)).collect();
        // Hold out 10 % as the validation series for the history curves.
        let n_val = (tensors.len() / 10).max(1).min(tensors.len() - 1);
        let (vx, tx) = tensors.split_at(n_val);
        let (vy, ty) = y.split_at(n_val);
        let history = net.fit(tx, ty, vx, vy, &self.config);
        self.history = Some(history);
        self.net = Some(parking_lot::Mutex::new(net));
    }

    fn predict(&self, x: &[f64]) -> usize {
        let net = self.net.as_ref().expect("CNN is not fitted");
        net.lock().predict(&Self::to_tensor(x))
    }

    fn name(&self) -> &str {
        "CNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrogram_cnn_shapes_flow() {
        let mut net = spectrogram_cnn(7, 1);
        let input = Tensor::zeros(&[1, 32, 32]);
        let out = net.forward(&input, false);
        assert_eq!(out.shape, vec![7]);
    }

    #[test]
    fn feature_cnn_shapes_flow() {
        let mut net = feature_cnn(24, 7, 1);
        let input = Tensor::zeros(&[1, 24]);
        let out = net.forward(&input, false);
        assert_eq!(out.shape, vec![7]);
    }
}
