//! Neural-network layers with full forward/backward passes.
//!
//! Shape conventions (no batch dimension — training accumulates gradients
//! sample by sample):
//! - dense vectors: `[N]`
//! - 1-D feature maps: `[C, L]`
//! - 2-D feature maps: `[C, H, W]`
//!
//! Convolutions are stride-1 with "same" zero padding (§IV-D.2: *"zero
//! padding is applied to all inputs in the convolutional layers"*).

use super::quant::LayerSpec;
use super::tensor::Tensor;
use emoleak_kernels::{conv, Activation, Conv1dScratch, Conv2dScratch, KernelMode};
use rand::{Rng, SeedableRng};

/// A typed input-shape mismatch reported by [`Layer::try_forward`].
///
/// Carries the rejecting layer's name, what it expected, and the shape it
/// was handed, so callers can degrade gracefully (the streaming service
/// falls back a rung) instead of unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Display name of the layer that rejected the input.
    pub layer: &'static str,
    /// Human-readable description of the expected shape.
    pub expected: String,
    /// The offending input shape.
    pub got: Vec<usize>,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} expects {}, got shape {:?}",
            self.layer, self.expected, self.got
        )
    }
}

impl std::error::Error for ShapeError {}

/// A differentiable layer.
///
/// `Send` is a supertrait so networks can move across `emoleak_exec`
/// workers (parallel k-fold trains one CNN per fold on its own thread).
pub trait Layer: Send {
    /// Forward pass. `training` toggles dropout/batch-norm behaviour.
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor;

    /// Shape-checked forward pass. Layers that validate their input
    /// override this to report a typed [`ShapeError`] (and implement
    /// [`Layer::forward`] on top of it); the default delegates to
    /// `forward` for layers with no checked failure mode.
    fn try_forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor, ShapeError> {
        Ok(self.forward(input, training))
    }

    /// Backward pass: consumes `dL/d(output)`, accumulates parameter
    /// gradients, returns `dL/d(input)`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Clears accumulated parameter gradients.
    fn zero_grad(&mut self) {}

    /// Visits `(parameters, gradients)` pairs for the optimizer.
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f64], &mut [f64])) {}

    /// Describes this layer for int8 lowering ([`super::quant`]); `None`
    /// marks a layer the quantized inference path cannot represent.
    fn quant_spec(&self) -> Option<LayerSpec> {
        None
    }

    /// Layer display name.
    fn name(&self) -> &'static str;
}

fn he_init(rng: &mut rand::rngs::StdRng, fan_in: usize, n: usize) -> Vec<f64> {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    (0..n)
        .map(|_| {
            // Box–Muller.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen();
            std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

/// Fully connected layer `y = W·x + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    w: Vec<f64>, // out × in
    b: Vec<f64>,
    gw: Vec<f64>,
    gb: Vec<f64>,
    cached_input: Vec<f64>,
}

impl Dense {
    /// Creates a dense layer with He-initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Dense {
            in_dim,
            out_dim,
            w: he_init(&mut rng, in_dim, in_dim * out_dim),
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
            cached_input: Vec::new(),
        }
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        assert_eq!(input.len(), self.in_dim, "dense input dimension mismatch");
        self.cached_input = input.data.clone();
        let mut out = self.b.clone();
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            *out_v += crate::linalg::dot(row, &input.data);
        }
        Tensor::from_vec(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.out_dim, "dense grad dimension mismatch");
        let mut grad_in = vec![0.0; self.in_dim];
        for o in 0..self.out_dim {
            let g = grad_out.data[o];
            self.gb[o] += g;
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut self.gw[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += g * self.cached_input[i];
                grad_in[i] += g * row[i];
            }
        }
        Tensor::from_vec(grad_in)
    }

    fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn quant_spec(&self) -> Option<LayerSpec> {
        Some(LayerSpec::Dense {
            in_dim: self.in_dim,
            out_dim: self.out_dim,
            w: self.w.clone(),
            b: self.b.clone(),
        })
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        self.mask = input.data.iter().map(|&v| v > 0.0).collect();
        Tensor {
            shape: input.shape.clone(),
            data: input.data.iter().map(|&v| v.max(0.0)).collect(),
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        Tensor {
            shape: grad_out.shape.clone(),
            data: grad_out
                .data
                .iter()
                .zip(&self.mask)
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
        }
    }

    fn quant_spec(&self) -> Option<LayerSpec> {
        Some(LayerSpec::Relu)
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

/// Inverted dropout: active only in training mode.
#[derive(Debug, Clone)]
pub struct Dropout {
    rate: f64,
    rng: rand::rngs::StdRng,
    mask: Vec<f64>,
}

impl Dropout {
    /// Creates a dropout layer dropping activations with probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        Dropout { rate, rng: rand::rngs::StdRng::seed_from_u64(seed), mask: Vec::new() }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        if !training || self.rate == 0.0 {
            self.mask = vec![1.0; input.len()];
            return input.clone();
        }
        let keep = 1.0 - self.rate;
        self.mask = (0..input.len())
            .map(|_| if self.rng.gen::<f64>() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        Tensor {
            shape: input.shape.clone(),
            data: input.data.iter().zip(&self.mask).map(|(v, m)| v * m).collect(),
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        Tensor {
            shape: grad_out.shape.clone(),
            data: grad_out.data.iter().zip(&self.mask).map(|(g, m)| g * m).collect(),
        }
    }

    fn quant_spec(&self) -> Option<LayerSpec> {
        // Identity at inference time.
        Some(LayerSpec::Identity)
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

// ---------------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------------

/// Flattens any shape to 1-D.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        self.cached_shape = input.shape.clone();
        Tensor::from_vec(input.data.clone())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        Tensor { shape: self.cached_shape.clone(), data: grad_out.data.clone() }
    }

    fn quant_spec(&self) -> Option<LayerSpec> {
        Some(LayerSpec::Flatten)
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution, stride 1, "same" zero padding. Input `[C_in, H, W]`,
/// output `[C_out, H, W]`.
///
/// The forward pass dispatches on [`KernelMode`]: `reference` runs the
/// scalar loops, `fast` the im2col + cache-blocked GEMM kernel. Both are
/// bit-identical (see `emoleak_kernels::conv`); the backward pass is
/// mode-independent.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    kh: usize,
    kw: usize,
    w: Vec<f64>, // [out][in][kh][kw]
    b: Vec<f64>,
    gw: Vec<f64>,
    gb: Vec<f64>,
    cached_input: Tensor,
    scratch: Conv2dScratch,
}

impl Conv2d {
    /// Creates a Conv2d layer with He-initialized kernels.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(in_ch: usize, out_ch: usize, kernel: (usize, usize), seed: u64) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && kernel.0 > 0 && kernel.1 > 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = out_ch * in_ch * kernel.0 * kernel.1;
        Conv2d {
            in_ch,
            out_ch,
            kh: kernel.0,
            kw: kernel.1,
            w: he_init(&mut rng, in_ch * kernel.0 * kernel.1, n),
            b: vec![0.0; out_ch],
            gw: vec![0.0; n],
            gb: vec![0.0; out_ch],
            cached_input: Tensor::default(),
            scratch: Conv2dScratch::default(),
        }
    }

    #[inline]
    fn widx(&self, o: usize, c: usize, ky: usize, kx: usize) -> usize {
        ((o * self.in_ch + c) * self.kh + ky) * self.kw + kx
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        self.try_forward(input, training).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor, ShapeError> {
        if input.shape.len() != 3 || input.shape[0] != self.in_ch {
            return Err(ShapeError {
                layer: "Conv2d",
                expected: format!("[{}, H, W]", self.in_ch),
                got: input.shape.clone(),
            });
        }
        let (h, w) = (input.shape[1], input.shape[2]);
        self.cached_input = input.clone();
        let mut out = Tensor::zeros(&[self.out_ch, h, w]);
        match KernelMode::current() {
            KernelMode::Reference => conv::conv2d_ref(
                &input.data,
                self.in_ch,
                h,
                w,
                self.out_ch,
                self.kh,
                self.kw,
                &self.w,
                &self.b,
                Activation::Identity,
                &mut out.data,
            ),
            KernelMode::Fast => conv::conv2d_fast(
                &input.data,
                self.in_ch,
                h,
                w,
                self.out_ch,
                self.kh,
                self.kw,
                &self.w,
                &self.b,
                Activation::Identity,
                &mut self.scratch,
                &mut out.data,
            ),
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = &self.cached_input;
        let (h, w) = (input.shape[1], input.shape[2]);
        let (ph, pw) = (self.kh / 2, self.kw / 2);
        let mut grad_in = Tensor::zeros(&input.shape);
        for o in 0..self.out_ch {
            for y in 0..h {
                for x in 0..w {
                    let g = grad_out.data[(o * h + y) * w + x];
                    if g == 0.0 {
                        continue;
                    }
                    self.gb[o] += g;
                    for c in 0..self.in_ch {
                        for ky in 0..self.kh {
                            let iy = (y + ky).wrapping_sub(ph);
                            if iy >= h {
                                continue;
                            }
                            for kx in 0..self.kw {
                                let ix = (x + kx).wrapping_sub(pw);
                                if ix >= w {
                                    continue;
                                }
                                let ii = (c * h + iy) * w + ix;
                                let wi = self.widx(o, c, ky, kx);
                                self.gw[wi] += g * input.data[ii];
                                grad_in.data[ii] += g * self.w[wi];
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn quant_spec(&self) -> Option<LayerSpec> {
        Some(LayerSpec::Conv2d {
            in_ch: self.in_ch,
            out_ch: self.out_ch,
            kh: self.kh,
            kw: self.kw,
            w: self.w.clone(),
            b: self.b.clone(),
        })
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

// ---------------------------------------------------------------------------
// Conv1d
// ---------------------------------------------------------------------------

/// 1-D convolution, stride 1, "same" zero padding. Input `[C_in, L]`,
/// output `[C_out, L]`.
///
/// Forward dispatches on [`KernelMode`] like [`Conv2d`].
#[derive(Debug, Clone)]
pub struct Conv1d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    w: Vec<f64>, // [out][in][k]
    b: Vec<f64>,
    gw: Vec<f64>,
    gb: Vec<f64>,
    cached_input: Tensor,
    scratch: Conv1dScratch,
}

impl Conv1d {
    /// Creates a Conv1d layer with He-initialized kernels.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(in_ch: usize, out_ch: usize, kernel: usize, seed: u64) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && kernel > 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = out_ch * in_ch * kernel;
        Conv1d {
            in_ch,
            out_ch,
            k: kernel,
            w: he_init(&mut rng, in_ch * kernel, n),
            b: vec![0.0; out_ch],
            gw: vec![0.0; n],
            gb: vec![0.0; out_ch],
            cached_input: Tensor::default(),
            scratch: Conv1dScratch::default(),
        }
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        self.try_forward(input, training).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor, ShapeError> {
        if input.shape.len() != 2 || input.shape[0] != self.in_ch {
            return Err(ShapeError {
                layer: "Conv1d",
                expected: format!("[{}, L]", self.in_ch),
                got: input.shape.clone(),
            });
        }
        let l = input.shape[1];
        self.cached_input = input.clone();
        let mut out = Tensor::zeros(&[self.out_ch, l]);
        match KernelMode::current() {
            KernelMode::Reference => conv::conv1d_ref(
                &input.data,
                self.in_ch,
                l,
                self.out_ch,
                self.k,
                &self.w,
                &self.b,
                Activation::Identity,
                &mut out.data,
            ),
            KernelMode::Fast => conv::conv1d_fast(
                &input.data,
                self.in_ch,
                l,
                self.out_ch,
                self.k,
                &self.w,
                &self.b,
                Activation::Identity,
                &mut self.scratch,
                &mut out.data,
            ),
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = &self.cached_input;
        let l = input.shape[1];
        let p = self.k / 2;
        let mut grad_in = Tensor::zeros(&input.shape);
        for o in 0..self.out_ch {
            for t in 0..l {
                let g = grad_out.data[o * l + t];
                if g == 0.0 {
                    continue;
                }
                self.gb[o] += g;
                for c in 0..self.in_ch {
                    for kk in 0..self.k {
                        let it = (t + kk).wrapping_sub(p);
                        if it >= l {
                            continue;
                        }
                        let wi = (o * self.in_ch + c) * self.k + kk;
                        self.gw[wi] += g * input.data[c * l + it];
                        grad_in.data[c * l + it] += g * self.w[wi];
                    }
                }
            }
        }
        grad_in
    }

    fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn quant_spec(&self) -> Option<LayerSpec> {
        Some(LayerSpec::Conv1d {
            in_ch: self.in_ch,
            out_ch: self.out_ch,
            k: self.k,
            w: self.w.clone(),
            b: self.b.clone(),
        })
    }

    fn name(&self) -> &'static str {
        "Conv1d"
    }
}

// ---------------------------------------------------------------------------
// MaxPool
// ---------------------------------------------------------------------------

/// 2-D max pooling with square kernel = stride. Input `[C, H, W]`.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    pool: usize,
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a pool of size `pool × pool`.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is zero.
    pub fn new(pool: usize) -> Self {
        assert!(pool > 0, "pool size must be positive");
        MaxPool2d { pool, argmax: Vec::new(), in_shape: Vec::new() }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        assert_eq!(input.shape.len(), 3, "maxpool2d expects [C, H, W]");
        let (c, h, w) = (input.shape[0], input.shape[1], input.shape[2]);
        let (oh, ow) = ((h / self.pool).max(1), (w / self.pool).max(1));
        self.in_shape = input.shape.clone();
        self.argmax = vec![0; c * oh * ow];
        let mut out = Tensor::zeros(&[c, oh, ow]);
        for ch in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let mut best = f64::NEG_INFINITY;
                    let mut best_i = 0;
                    for dy in 0..self.pool.min(h - y * self.pool.min(h)) {
                        let iy = y * self.pool + dy;
                        if iy >= h {
                            break;
                        }
                        for dx in 0..self.pool {
                            let ix = x * self.pool + dx;
                            if ix >= w {
                                break;
                            }
                            let i = (ch * h + iy) * w + ix;
                            if input.data[i] > best {
                                best = input.data[i];
                                best_i = i;
                            }
                        }
                    }
                    let oi = (ch * oh + y) * ow + x;
                    out.data[oi] = best;
                    self.argmax[oi] = best_i;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(&self.in_shape);
        for (oi, &ii) in self.argmax.iter().enumerate() {
            grad_in.data[ii] += grad_out.data[oi];
        }
        grad_in
    }

    fn quant_spec(&self) -> Option<LayerSpec> {
        Some(LayerSpec::MaxPool2d { pool: self.pool })
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

/// 1-D max pooling with kernel = stride. Input `[C, L]`.
#[derive(Debug, Clone)]
pub struct MaxPool1d {
    pool: usize,
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool1d {
    /// Creates a pool of size `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is zero.
    pub fn new(pool: usize) -> Self {
        assert!(pool > 0, "pool size must be positive");
        MaxPool1d { pool, argmax: Vec::new(), in_shape: Vec::new() }
    }
}

impl Layer for MaxPool1d {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        assert_eq!(input.shape.len(), 2, "maxpool1d expects [C, L]");
        let (c, l) = (input.shape[0], input.shape[1]);
        let ol = (l / self.pool).max(1);
        self.in_shape = input.shape.clone();
        self.argmax = vec![0; c * ol];
        let mut out = Tensor::zeros(&[c, ol]);
        for ch in 0..c {
            for t in 0..ol {
                let mut best = f64::NEG_INFINITY;
                let mut best_i = 0;
                for d in 0..self.pool {
                    let it = t * self.pool + d;
                    if it >= l {
                        break;
                    }
                    let i = ch * l + it;
                    if input.data[i] > best {
                        best = input.data[i];
                        best_i = i;
                    }
                }
                let oi = ch * ol + t;
                out.data[oi] = best;
                self.argmax[oi] = best_i;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(&self.in_shape);
        for (oi, &ii) in self.argmax.iter().enumerate() {
            grad_in.data[ii] += grad_out.data[oi];
        }
        grad_in
    }

    fn quant_spec(&self) -> Option<LayerSpec> {
        Some(LayerSpec::MaxPool1d { pool: self.pool })
    }

    fn name(&self) -> &'static str {
        "MaxPool1d"
    }
}

// ---------------------------------------------------------------------------
// BatchNorm1d
// ---------------------------------------------------------------------------

/// Per-channel normalization over the length axis of a `[C, L]` map, with
/// learnable scale/shift and running statistics for inference.
///
/// With single-sample training there is no batch axis, so this is instance
/// normalization — the standard substitution, documented in DESIGN.md; the
/// gradient is the exact instance-norm gradient.
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    channels: usize,
    eps: f64,
    gamma: Vec<f64>,
    beta: Vec<f64>,
    ggamma: Vec<f64>,
    gbeta: Vec<f64>,
    running_mean: Vec<f64>,
    running_var: Vec<f64>,
    momentum: f64,
    // Cached per-forward state for the backward pass.
    cached_xhat: Vec<f64>,
    cached_inv_std: Vec<f64>,
    cached_len: usize,
    cached_training: bool,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer for `channels` feature channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channels must be positive");
        BatchNorm1d {
            channels,
            eps: 1e-5,
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            ggamma: vec![0.0; channels],
            gbeta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            cached_xhat: Vec::new(),
            cached_inv_std: Vec::new(),
            cached_len: 0,
            cached_training: false,
        }
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        assert_eq!(input.shape.len(), 2, "batchnorm1d expects [C, L]");
        assert_eq!(input.shape[0], self.channels, "batchnorm channel mismatch");
        let l = input.shape[1];
        self.cached_len = l;
        self.cached_training = training && l > 1;
        let mut out = Tensor::zeros(&input.shape);
        self.cached_xhat = vec![0.0; input.len()];
        self.cached_inv_std = vec![0.0; self.channels];
        for c in 0..self.channels {
            let xs = &input.data[c * l..(c + 1) * l];
            // Normalize with the *pre-update* running statistics (so the
            // output does not depend on the current sample's own stats —
            // this keeps per-sample magnitude, which carries vocal effort,
            // and makes the backward pass an exact plain scale), then fold
            // the sample into the running estimate.
            let (mean, var) = (self.running_mean[c], self.running_var[c]);
            if self.cached_training {
                let smean = xs.iter().sum::<f64>() / l as f64;
                let svar =
                    xs.iter().map(|v| (v - smean) * (v - smean)).sum::<f64>() / l as f64;
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * smean;
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * svar;
            }
            let inv_std = 1.0 / (var + self.eps).sqrt();
            self.cached_inv_std[c] = inv_std;
            for (i, &x) in xs.iter().enumerate() {
                let xhat = (x - mean) * inv_std;
                self.cached_xhat[c * l + i] = xhat;
                out.data[c * l + i] = self.gamma[c] * xhat + self.beta[c];
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let l = self.cached_len;
        let mut grad_in = Tensor::zeros(&grad_out.shape);
        for c in 0..self.channels {
            let g = &grad_out.data[c * l..(c + 1) * l];
            let xhat = &self.cached_xhat[c * l..(c + 1) * l];
            let dgamma: f64 = g.iter().zip(xhat).map(|(a, b)| a * b).sum();
            let dbeta: f64 = g.iter().sum();
            self.ggamma[c] += dgamma;
            self.gbeta[c] += dbeta;
            // Mean/var are (near-)constants w.r.t. this sample (running
            // statistics), so the gradient is a plain scale.
            let scale = self.gamma[c] * self.cached_inv_std[c];
            for (gi, &go) in grad_in.data[c * l..(c + 1) * l].iter_mut().zip(g) {
                *gi = scale * go;
            }
        }
        grad_in
    }

    fn zero_grad(&mut self) {
        self.ggamma.iter_mut().for_each(|g| *g = 0.0);
        self.gbeta.iter_mut().for_each(|g| *g = 0.0);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.gamma, &mut self.ggamma);
        f(&mut self.beta, &mut self.gbeta);
    }

    fn name(&self) -> &'static str {
        "BatchNorm1d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical gradient check: loss = Σ coef · output.
    fn check_input_gradient(layer: &mut dyn Layer, input: &Tensor, tol: f64) {
        let out = layer.forward(input, true);
        let coefs: Vec<f64> = (0..out.len()).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let grad_out = Tensor { shape: out.shape.clone(), data: coefs.clone() };
        layer.zero_grad();
        let analytic = layer.backward(&grad_out);
        let eps = 1e-6;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data[i] += eps;
            let mut minus = input.clone();
            minus.data[i] -= eps;
            let lp: f64 = layer
                .forward(&plus, true)
                .data
                .iter()
                .zip(&coefs)
                .map(|(o, c)| o * c)
                .sum();
            let lm: f64 = layer
                .forward(&minus, true)
                .data
                .iter()
                .zip(&coefs)
                .map(|(o, c)| o * c)
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.data[i]).abs() < tol * (1.0 + numeric.abs()),
                "input grad mismatch at {i}: numeric {numeric}, analytic {}",
                analytic.data[i]
            );
        }
    }

    fn ramp(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_shape(shape, (0..n).map(|i| (i as f64 * 0.13).sin()).collect())
    }

    #[test]
    fn dense_gradient_check() {
        let mut layer = Dense::new(5, 3, 42);
        check_input_gradient(&mut layer, &ramp(&[5]), 1e-5);
    }

    #[test]
    fn dense_weight_gradient_check() {
        let mut layer = Dense::new(3, 2, 7);
        let input = ramp(&[3]);
        let out = layer.forward(&input, true);
        let coefs: Vec<f64> = vec![1.0, -2.0];
        layer.zero_grad();
        layer.backward(&Tensor { shape: out.shape.clone(), data: coefs.clone() });
        // Collect analytic weight grads.
        let mut grads: Vec<Vec<f64>> = Vec::new();
        layer.visit_params(&mut |_p, g| grads.push(g.to_vec()));
        let analytic_w = grads[0].clone();
        // Numerical check on each weight (test module can touch private
        // fields directly).
        let eps = 1e-6;
        for (wi, &analytic) in analytic_w.iter().enumerate() {
            let probe = |delta: f64| -> f64 {
                let mut l = layer.clone();
                l.w[wi] += delta;
                let o = l.forward(&input, true);
                o.data.iter().zip(&coefs).map(|(a, b)| a * b).sum()
            };
            let numeric = (probe(eps) - probe(-eps)) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 1e-5 * (1.0 + numeric.abs()),
                "weight grad mismatch at {wi}"
            );
        }
    }

    #[test]
    fn conv2d_gradient_check() {
        let mut layer = Conv2d::new(2, 3, (3, 3), 1);
        check_input_gradient(&mut layer, &ramp(&[2, 5, 4]), 1e-5);
    }

    #[test]
    fn conv2d_1x1_kernel_gradient_check() {
        // The paper's first spectrogram-CNN layer uses a (1,1) kernel.
        let mut layer = Conv2d::new(1, 4, (1, 1), 2);
        check_input_gradient(&mut layer, &ramp(&[1, 4, 4]), 1e-5);
    }

    #[test]
    fn conv1d_gradient_check() {
        let mut layer = Conv1d::new(2, 3, 3, 3);
        check_input_gradient(&mut layer, &ramp(&[2, 7]), 1e-5);
    }

    #[test]
    fn batchnorm_gradient_check() {
        // BatchNorm mutates its running statistics on every training
        // forward, so each numerical probe needs a pristine clone.
        let proto = BatchNorm1d::new(2);
        let input = ramp(&[2, 6]);
        let mut layer = proto.clone();
        let out = layer.forward(&input, true);
        let coefs: Vec<f64> = (0..out.len()).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        layer.zero_grad();
        let analytic = layer.backward(&Tensor { shape: out.shape.clone(), data: coefs.clone() });
        let eps = 1e-6;
        for i in 0..input.len() {
            let probe = |delta: f64| -> f64 {
                let mut l = proto.clone();
                let mut x = input.clone();
                x.data[i] += delta;
                l.forward(&x, true)
                    .data
                    .iter()
                    .zip(&coefs)
                    .map(|(o, c)| o * c)
                    .sum()
            };
            let numeric = (probe(eps) - probe(-eps)) / (2.0 * eps);
            assert!(
                (numeric - analytic.data[i]).abs() < 1e-4 * (1.0 + numeric.abs()),
                "bn grad mismatch at {i}: numeric {numeric}, analytic {}",
                analytic.data[i]
            );
        }
    }

    #[test]
    fn relu_masks_negative() {
        let mut relu = Relu::new();
        let out = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0, -3.0]), true);
        assert_eq!(out.data, vec![0.0, 2.0, 0.0]);
        let grad = relu.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0]));
        assert_eq!(grad.data, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn maxpool2d_selects_and_routes() {
        let mut pool = MaxPool2d::new(2);
        let input = Tensor::from_shape(
            &[1, 2, 4],
            vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 1.0, 6.0],
        );
        let out = pool.forward(&input, true);
        assert_eq!(out.shape, vec![1, 1, 2]);
        assert_eq!(out.data, vec![5.0, 6.0]);
        let grad = pool.backward(&Tensor::from_shape(&[1, 1, 2], vec![1.0, 2.0]));
        assert_eq!(grad.data[1], 1.0); // routed to the 5.0 position
        assert_eq!(grad.data[7], 2.0); // routed to the 6.0 position
        assert_eq!(grad.data.iter().sum::<f64>(), 3.0);
    }

    #[test]
    fn maxpool1d_handles_non_divisible_length() {
        let mut pool = MaxPool1d::new(2);
        let input = Tensor::from_shape(&[1, 5], vec![1.0, 3.0, 2.0, 0.0, 9.0]);
        let out = pool.forward(&input, true);
        assert_eq!(out.shape, vec![1, 2]);
        assert_eq!(out.data, vec![3.0, 2.0]);
    }

    #[test]
    fn dropout_scales_in_training_only() {
        let mut d = Dropout::new(0.5, 3);
        let input = Tensor::from_vec(vec![1.0; 1000]);
        let train = d.forward(&input, true);
        let kept: Vec<f64> = train.data.iter().filter(|&&v| v > 0.0).cloned().collect();
        // Inverted dropout: kept activations are scaled by 1/keep = 2.
        assert!(kept.iter().all(|&v| (v - 2.0).abs() < 1e-12));
        let frac = kept.len() as f64 / 1000.0;
        assert!((frac - 0.5).abs() < 0.08, "keep fraction {frac}");
        // Inference: identity.
        let inference = d.forward(&input, false);
        assert_eq!(inference.data, input.data);
    }

    #[test]
    fn batchnorm_running_stats_converge_to_normalization() {
        let mut bn = BatchNorm1d::new(1);
        let input = Tensor::from_shape(&[1, 4], vec![10.0, 12.0, 14.0, 16.0]);
        // Repeated exposure lets the running statistics converge; the
        // normalized output then has ~zero mean and ~unit variance.
        for _ in 0..400 {
            bn.forward(&input, true);
        }
        let out = bn.forward(&input, false);
        let mean = out.data.iter().sum::<f64>() / 4.0;
        let var = out.data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn flatten_round_trips_shape() {
        let mut f = Flatten::new();
        let input = ramp(&[2, 3, 4]);
        let out = f.forward(&input, true);
        assert_eq!(out.shape, vec![24]);
        let back = f.backward(&out);
        assert_eq!(back.shape, vec![2, 3, 4]);
    }
}
