//! Optimizers: SGD with momentum and Adam.
//!
//! Both are *visit-order keyed*: parameter state is allocated lazily in the
//! order parameters are visited each step, which is stable because the layer
//! stack is fixed.

/// A first-order optimizer updating parameters from accumulated gradients.
pub trait Optimizer {
    /// Marks the start of an update step (resets the visit cursor).
    fn begin_step(&mut self);

    /// Updates `param` in place from `grad`, where the effective gradient is
    /// `grad * scale` (the caller passes `1/batch_size` as `scale`).
    fn update(&mut self, param: &mut [f64], grad: &[f64], scale: f64);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    velocities: Vec<Vec<f64>>,
    cursor: usize,
}

impl Sgd {
    /// Creates SGD with the given learning rate and 0.9 momentum.
    pub fn new(learning_rate: f64) -> Self {
        Sgd { learning_rate, momentum: 0.9, velocities: Vec::new(), cursor: 0 }
    }
}

impl Optimizer for Sgd {
    fn begin_step(&mut self) {
        self.cursor = 0;
    }

    fn update(&mut self, param: &mut [f64], grad: &[f64], scale: f64) {
        if self.cursor == self.velocities.len() {
            self.velocities.push(vec![0.0; param.len()]);
        }
        let v = &mut self.velocities[self.cursor];
        self.cursor += 1;
        for ((p, g), vel) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
            *vel = self.momentum * *vel - self.learning_rate * g * scale;
            *p += *vel;
        }
    }
}

/// The Adam optimizer (Kingma & Ba) with standard defaults.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
    cursor: usize,
}

impl Adam {
    /// Creates Adam with β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            cursor: 0,
        }
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.cursor = 0;
        self.t += 1;
    }

    fn update(&mut self, param: &mut [f64], grad: &[f64], scale: f64) {
        if self.cursor == self.m.len() {
            self.m.push(vec![0.0; param.len()]);
            self.v.push(vec![0.0; param.len()]);
        }
        let (m, v) = (&mut self.m[self.cursor], &mut self.v[self.cursor]);
        self.cursor += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..param.len() {
            let g = grad[i] * scale;
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            param[i] -= self.learning_rate * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(p) = (p - 3)² with each optimizer.
    fn minimize<O: Optimizer>(mut opt: O, steps: usize) -> f64 {
        let mut p = vec![0.0];
        for _ in 0..steps {
            let grad = vec![2.0 * (p[0] - 3.0)];
            opt.begin_step();
            opt.update(&mut p, &grad, 1.0);
        }
        p[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = minimize(Sgd::new(0.05), 200);
        assert!((p - 3.0).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = minimize(Adam::new(0.1), 500);
        assert!((p - 3.0).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn scale_acts_like_batch_averaging() {
        // Two half-scaled updates ≈ one full update for plain SGD (no
        // momentum interference on the first step).
        let mut a = Sgd::new(0.1);
        a.momentum = 0.0;
        let mut pa = vec![1.0];
        a.begin_step();
        a.update(&mut pa, &[2.0], 0.5);
        let mut b = Sgd::new(0.1);
        b.momentum = 0.0;
        let mut pb = vec![1.0];
        b.begin_step();
        b.update(&mut pb, &[1.0], 1.0);
        assert!((pa[0] - pb[0]).abs() < 1e-12);
    }

    #[test]
    fn multiple_params_tracked_independently() {
        let mut opt = Adam::new(0.1);
        let mut p1 = vec![0.0];
        let mut p2 = vec![0.0, 0.0];
        for _ in 0..100 {
            opt.begin_step();
            let g1 = vec![2.0 * (p1[0] - 1.0)];
            opt.update(&mut p1, &g1, 1.0);
            let g2 = vec![2.0 * (p2[0] + 2.0), 2.0 * (p2[1] - 5.0)];
            opt.update(&mut p2, &g2, 1.0);
        }
        assert!((p1[0] - 1.0).abs() < 0.05);
        assert!((p2[0] + 2.0).abs() < 0.05);
        assert!((p2[1] - 5.0).abs() < 0.2);
    }
}
