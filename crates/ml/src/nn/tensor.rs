//! A minimal dense tensor: shape + row-major data.

use serde::{Deserialize, Serialize};

/// A dense row-major tensor of `f64`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tensor {
    /// Dimension sizes (e.g. `[channels, height, width]`).
    pub shape: Vec<usize>,
    /// Row-major contents; `data.len() == shape.iter().product()`.
    pub data: Vec<f64>,
}

impl Tensor {
    /// Creates a zero tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// Wraps a flat vector as a 1-D tensor.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Tensor { shape: vec![data.len()], data }
    }

    /// Wraps data with an explicit shape.
    ///
    /// # Panics
    ///
    /// Panics if the element count does not match the shape.
    pub fn from_shape(shape: &[usize], data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length does not match shape"
        );
        Tensor { shape: shape.to_vec(), data }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reshapes in place (same element count).
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshape(&mut self, shape: &[usize]) {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "reshape changes element count"
        );
        self.shape = shape.to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape_checks() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.len(), 6);
        let v = Tensor::from_vec(vec![1.0, 2.0]);
        assert_eq!(v.shape, vec![2]);
        let s = Tensor::from_shape(&[2, 2], vec![1.0; 4]);
        assert_eq!(s.shape, vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_shape_panics() {
        Tensor::from_shape(&[2, 2], vec![1.0; 3]);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        t.reshape(&[2, 2]);
        assert_eq!(t.shape, vec![2, 2]);
        assert_eq!(t.data, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "element count")]
    fn reshape_rejects_size_change() {
        let mut t = Tensor::from_vec(vec![1.0; 4]);
        t.reshape(&[3]);
    }
}
