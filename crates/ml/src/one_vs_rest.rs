//! One-vs-rest meta classifier — Weka's "MultiClassClassifier".
//!
//! Trains one binary ridge-logistic model per class against all others and
//! predicts the class whose model outputs the highest probability.

use crate::linalg::{argmax, dot, sigmoid};
use crate::{validate_fit_inputs, Classifier};
use serde::{Deserialize, Serialize};

/// One-vs-rest ensemble of binary logistic regressors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OneVsRest {
    /// Ridge penalty for each binary model.
    pub ridge: f64,
    /// Gradient-descent iterations per binary model.
    pub max_iter: usize,
    /// Learning rate.
    pub learning_rate: f64,
    models: Vec<Vec<f64>>, // per class: dim + 1 weights (bias last)
}

impl Default for OneVsRest {
    fn default() -> Self {
        OneVsRest { ridge: 1e-4, max_iter: 300, learning_rate: 0.5, models: Vec::new() }
    }
}

impl OneVsRest {
    /// Per-class (uncalibrated) positive-class probabilities.
    ///
    /// # Panics
    ///
    /// Panics if called before fitting.
    pub fn scores(&self, x: &[f64]) -> Vec<f64> {
        assert!(!self.models.is_empty(), "classifier is not fitted");
        self.models
            .iter()
            .map(|w| sigmoid(dot(&w[..w.len() - 1], x) + w[w.len() - 1]))
            .collect()
    }

    fn fit_binary(&self, x: &[Vec<f64>], targets: &[f64]) -> Vec<f64> {
        let n = x.len();
        let dim = x[0].len();
        let mut w = vec![0.0; dim + 1];
        let mut velocity = vec![0.0; dim + 1];
        let momentum = 0.9;
        let lr = self.learning_rate / n as f64;
        for _ in 0..self.max_iter {
            let mut grad = vec![0.0; dim + 1];
            for (xi, &t) in x.iter().zip(targets) {
                let p = sigmoid(dot(&w[..dim], xi) + w[dim]);
                let err = p - t;
                for (gj, xj) in grad[..dim].iter_mut().zip(xi) {
                    *gj += err * xj;
                }
                grad[dim] += err;
            }
            for j in 0..=dim {
                let reg = if j < dim { self.ridge * w[j] * n as f64 } else { 0.0 };
                velocity[j] = momentum * velocity[j] - lr * (grad[j] + reg);
                w[j] += velocity[j];
            }
        }
        w
    }
}

impl Classifier for OneVsRest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], num_classes: usize) {
        validate_fit_inputs(x, y, num_classes);
        self.models = (0..num_classes)
            .map(|c| {
                let targets: Vec<f64> =
                    y.iter().map(|&l| if l == c { 1.0 } else { 0.0 }).collect();
                self.fit_binary(x, &targets)
            })
            .collect();
    }

    fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.scores(x))
    }

    fn name(&self) -> &str {
        "MultiClassClassifier"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_classes() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Three well-separated clusters.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f64 * 0.1;
            x.push(vec![0.0 + j, 0.0 + j]);
            y.push(0);
            x.push(vec![5.0 + j, 0.0 - j]);
            y.push(1);
            x.push(vec![2.5 - j, 5.0 + j]);
            y.push(2);
        }
        (x, y)
    }

    #[test]
    fn learns_three_clusters() {
        let (x, y) = grid_classes();
        let mut clf = OneVsRest::default();
        clf.fit(&x, &y, 3);
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| clf.predict(xi) == yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn scores_are_probabilities_per_model() {
        let (x, y) = grid_classes();
        let mut clf = OneVsRest::default();
        clf.fit(&x, &y, 3);
        let s = clf.scores(&[0.0, 0.0]);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|p| (0.0..=1.0).contains(p)));
        assert_eq!(crate::linalg::argmax(&s), 0);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_predict_panics() {
        OneVsRest::default().predict(&[0.0]);
    }
}
