//! Random forest: bagged information-gain trees with per-split feature
//! subsampling (Weka's "RandomForest", used in the Table VI ear-speaker
//! results).

use crate::tree::{DecisionTree, TreeConfig};
use crate::{linalg::argmax, validate_fit_inputs, Classifier};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A random forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    /// Number of trees.
    pub num_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Ensemble seed.
    pub seed: u64,
    trees: Vec<DecisionTree>,
    num_classes: usize,
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest { num_trees: 60, max_depth: 14, seed: 0xF0_4E57, trees: Vec::new(), num_classes: 0 }
    }
}

impl RandomForest {
    /// Creates a forest with explicit size/depth/seed.
    pub fn new(num_trees: usize, max_depth: usize, seed: u64) -> Self {
        RandomForest { num_trees, max_depth, seed, ..Default::default() }
    }

    /// Averaged class-probability distribution over all trees.
    ///
    /// # Panics
    ///
    /// Panics if called before fitting.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "forest is not fitted");
        let mut acc = vec![0.0; self.num_classes];
        for t in &self.trees {
            for (a, p) in acc.iter_mut().zip(t.predict_dist(x)) {
                *a += p;
            }
        }
        for a in acc.iter_mut() {
            *a /= self.trees.len() as f64;
        }
        acc
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], num_classes: usize) {
        validate_fit_inputs(x, y, num_classes);
        self.num_classes = num_classes;
        let n = x.len();
        let dim = x[0].len();
        // √dim features per split, the standard heuristic.
        let k = (dim as f64).sqrt().round().max(1.0) as usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        self.trees = (0..self.num_trees)
            .map(|t| {
                // Bootstrap sample.
                let bx: Vec<Vec<f64>>;
                let by: Vec<usize>;
                {
                    let mut xs = Vec::with_capacity(n);
                    let mut ys = Vec::with_capacity(n);
                    for _ in 0..n {
                        let i = rng.gen_range(0..n);
                        xs.push(x[i].clone());
                        ys.push(y[i]);
                    }
                    bx = xs;
                    by = ys;
                }
                let cfg = TreeConfig {
                    max_depth: self.max_depth,
                    min_split: 2,
                    features_per_split: Some(k),
                };
                let mut tree = DecisionTree::new(cfg, self.seed ^ (t as u64) << 17);
                tree.fit(&bx, &by, num_classes);
                tree
            })
            .collect();
    }

    fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.predict_proba(x))
    }

    fn name(&self) -> &str {
        "RandomForest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_rings() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Class 0 inside the unit circle, class 1 outside — nonlinear.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut state = 99u64;
        let mut unit = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        for _ in 0..200 {
            let (a, b) = (unit() * 4.0, unit() * 4.0);
            x.push(vec![a, b]);
            y.push(usize::from(a * a + b * b > 1.0));
        }
        (x, y)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let (x, y) = noisy_rings();
        let mut rf = RandomForest::new(40, 10, 1);
        rf.fit(&x, &y, 2);
        let acc = x.iter().zip(&y).filter(|(xi, &yi)| rf.predict(xi) == yi).count() as f64
            / x.len() as f64;
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_normalized() {
        let (x, y) = noisy_rings();
        let mut rf = RandomForest::new(10, 6, 2);
        rf.fit(&x, &y, 2);
        let p = rf.predict_proba(&[0.0, 0.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = noisy_rings();
        let fit = |seed: u64| {
            let mut rf = RandomForest::new(10, 8, seed);
            rf.fit(&x, &y, 2);
            (0..20)
                .map(|i| rf.predict(&[i as f64 * 0.1 - 1.0, 0.3]))
                .collect::<Vec<_>>()
        };
        assert_eq!(fit(5), fit(5));
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_panics() {
        RandomForest::default().predict(&[0.0]);
    }
}
