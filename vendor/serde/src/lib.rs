//! Offline marker-only stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but has
//! no serializer backend dependency, so the traits are only ever used as
//! markers. This stub keeps the annotations compiling without network access;
//! swapping back to real serde requires no source change outside `vendor/`.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
