//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! provides exactly the surface the workspace uses: the [`Rng`] /
//! [`SeedableRng`] traits, [`rngs::StdRng`] (implemented as xoshiro256++
//! seeded via SplitMix64), uniform `gen` / `gen_range` sampling for the
//! float and integer types the pipeline needs, and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Determinism contract: for a given seed the sample stream is stable across
//! runs and platforms, which the repo's reproducibility tests rely on. The
//! stream is *not* identical to upstream `rand`'s — only statistically
//! equivalent (full-period xoshiro256++, passes the repo's noise-floor and
//! distribution tests).

/// A source of randomness: the core sampling trait.
///
/// Mirrors the subset of `rand::Rng` the workspace uses. Generic methods
/// keep working through `&mut R` and unsized `R` exactly like upstream.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open, like upstream).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution (`rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample (`rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($t:ty) => {
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                a + (b - a) * u
            }
        }
    };
}

impl_float_range!(f64);
impl_float_range!(f32);

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Widening-multiply rejection-free mapping (Lemire); the tiny
                // modulo bias (< 2^-64 * span) is irrelevant for simulation.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "cannot sample empty range");
                if a == <$t>::MIN && b == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (b as u128).wrapping_sub(a as u128) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                a.wrapping_add(hi as $t)
            }
        }
    };
}

impl_int_range!(usize);
impl_int_range!(u64);
impl_int_range!(u32);
impl_int_range!(i64);
impl_int_range!(i32);

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array upstream; mirrored here).
    type Seed;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs by expanding a `u64` seed (SplitMix64, as upstream does
    /// for non-crypto RNGs).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard RNG: xoshiro256++ (upstream uses ChaCha12; this stub
    /// trades crypto strength for zero dependencies — fine for simulation).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn next(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // xoshiro must not be seeded all-zero.
                s = [0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 1];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    /// A small fast RNG; alias of [`StdRng`] in this stub.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u64;
                let j = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                return None;
            }
            let span = self.len() as u64;
            let i = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
            self.get(i)
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_standard_is_unit_interval_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
