//! Offline minimal stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use: `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! warmup + timed-batch loop reporting mean wall-clock time per iteration —
//! no statistics, HTML reports, or comparison against saved baselines.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion's own is a re-export too).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies a benchmark within a group by function name and parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id labeled `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, running a small warmup then `samples` measured
    /// iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            std_black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            std_black_box(routine());
        }
        let elapsed = start.elapsed();
        self.last_ns_per_iter = elapsed.as_nanos() as f64 / self.samples as f64;
    }
}

fn report(name: &str, ns: f64) {
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{name:<44} {value:>10.3} {unit}/iter");
}

/// The benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Sets the number of measured iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this stub keys measurement off
    /// `sample_size` only.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, last_ns_per_iter: f64::NAN };
        f(&mut b);
        report(name, b.last_ns_per_iter);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.criterion.sample_size, last_ns_per_iter: f64::NAN };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.last_ns_per_iter);
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.criterion.sample_size, last_ns_per_iter: f64::NAN };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.last_ns_per_iter);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group runner (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = trivial
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
