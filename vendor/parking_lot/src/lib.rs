//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API the workspace uses: non-poisoning `lock()`
//! returning the guard directly. Poisoned std locks are recovered (the data
//! is still accessible), mirroring parking_lot's no-poisoning semantics.

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard};

/// A mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, returning the guard directly (no poison errors).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock with parking_lot's non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
