//! Offline miniature property-testing framework.
//!
//! Implements the subset of the `proptest` API this workspace uses: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, range and tuple
//! strategies, and `prop::collection::vec`. Generation is deterministic per
//! test (seeded from the test name), there is **no shrinking** — a failing
//! case is reported with its generated inputs instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A deterministic RNG handed to strategies during generation.
pub type TestRng = StdRng;

/// Creates the per-test RNG, seeded from the test's name so different
/// properties explore different streams but each run is reproducible.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator (mirrors `proptest::strategy::Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, f32, usize, u64, u32, i64, i32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// A strategy always yielding a clone of one value (mirrors `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy namespace (mirrors the `prop` module re-exported by the
/// upstream prelude).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Size specifications accepted by [`vec`]: a fixed length or a
        /// half-open range of lengths.
        pub trait IntoSizeRange {
            /// Draws a length.
            fn pick_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn pick_len(&self, rng: &mut TestRng) -> usize {
                if self.start >= self.end {
                    self.start
                } else {
                    rng.gen_range(self.clone())
                }
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn pick_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// A strategy generating `Vec`s of values from an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.pick_len(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)` — vectors of generated
        /// elements with a fixed or ranged length.
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a proptest file usually imports.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just,
        ProptestConfig, Strategy};
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// (with its inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} at {}:{}",
                ::core::stringify!($cond),
                ::core::file!(),
                ::core::line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} ({}) at {}:{}",
                ::core::stringify!($cond),
                ::std::format!($($fmt)+),
                ::core::file!(),
                ::core::line!()
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                l,
                r,
                ::core::file!(),
                ::core::line!()
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both: {:?}) at {}:{}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                l,
                ::core::file!(),
                ::core::line!()
            ));
        }
    }};
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// Each `fn name(arg in strategy, ...) { body }` expands to a `#[test]`
/// function running `cases` generated inputs; `prop_assert*` failures report
/// the generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(::core::stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = ::std::format!(
                        ::core::concat!($(::core::stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        ::core::panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1, config.cases, msg, inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u32..5, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_compose(pair in (0usize..4, 1usize..3)) {
            let (a, b) = pair;
            prop_assert!(a < 4 && (1..3).contains(&b));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            #[allow(dead_code)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
