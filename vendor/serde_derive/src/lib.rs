//! No-op `#[derive(Serialize, Deserialize)]` macros.
//!
//! The workspace annotates its data types with serde derives but ships no
//! serializer backend (there is no `serde_json`/`bincode` dependency), so in
//! this offline build the derives only need to *exist* and accept the
//! `#[serde(...)]` helper attribute. They expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
